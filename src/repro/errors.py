"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the major
subsystems: graphs, DSL/compiler, runtime execution, performance model
and the statistical analysis core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Malformed graph data or an unsupported graph operation."""


class GraphFormatError(GraphError):
    """A graph file could not be parsed."""


class DSLError(ReproError):
    """A DSL program is structurally invalid."""


class CompileError(ReproError):
    """The compiler could not apply the requested optimisations."""


class InvalidConfigError(CompileError):
    """An optimisation configuration violates a legality constraint.

    For example enabling both ``fg1`` and ``fg8``, or requesting a
    workgroup size the target chip cannot launch.
    """


class ExecutionError(ReproError):
    """The functional executor encountered an inconsistent state."""


class ForwardProgressError(ExecutionError):
    """A blocking synchronisation idiom would hang on the target chip.

    Raised when a program requires more concurrently-resident workgroups
    than the occupancy-bound execution model guarantees (Section IV of
    the paper): e.g. a global barrier launched with more workgroups than
    can be co-resident.
    """


class ChipError(ReproError):
    """An unknown chip was requested or a chip parameter is invalid."""


class DatasetError(ReproError):
    """A performance dataset is missing, malformed or inconsistent."""


class AuditError(DatasetError):
    """A dataset failed its audit in ``strict`` mode.

    Raised by :func:`repro.study.audit.audit_dataset` when
    ``strict=True`` and any cell would be quarantined (non-finite or
    non-positive timings, wrong repetition count), and when an
    ``audit-v1`` artifact is truncated or fails its checksum.  The
    default (non-strict) audit quarantines bad cells instead of
    raising, so degraded datasets still analyse.
    """


class CheckpointError(DatasetError):
    """A study checkpoint cannot be resumed.

    Raised when ``--resume`` finds a checkpoint directory whose
    manifest fingerprint does not match the requested study — merging
    shards priced under a different configuration, seed or engine would
    silently corrupt the dataset, so stale checkpoints are rejected.
    """


class ReportError(DatasetError):
    """A run-report artifact is missing, malformed or corrupt.

    Raised by :class:`repro.obs.report.RunReport` when loading a
    metrics artifact whose JSON is truncated or whose checksum does not
    match — an observability report that cannot be trusted must be
    rejected, not summarised.
    """


class InjectedFault(ReproError):
    """A deliberately injected fault (testing only).

    Raised by :class:`repro.faults.FaultPlan` at armed fault points to
    drive the study pipeline's recovery paths deterministically.  Never
    raised in production runs (a ``None`` fault plan injects nothing).
    """


class AnalysisError(ReproError):
    """The statistical analysis was asked an unanswerable question."""


class InsufficientDataError(AnalysisError):
    """Not enough significant samples to run a statistical test.

    Mirrors the paper's Table IX case where ``fg8`` on MALI has too few
    statistically-significant measurements to make a recommendation.
    """


class SearchError(AnalysisError):
    """A budgeted search strategy was misused or misconfigured.

    Raised by :mod:`repro.core.search` for invalid budgets, an empty
    candidate pool, or protocol violations (observing a result no
    proposal asked for, proposing again before observing the pending
    proposal).
    """


class InsufficientCoverageError(AnalysisError):
    """A dataset's cell coverage is below the requested floor.

    Raised by :func:`repro.study.audit.require_coverage` (and the
    ``report --min-coverage`` CLI) when the fraction of present
    (test, configuration) cells falls below the floor — the message
    names the worst holes so the user knows which shards to re-price
    with ``--resume``.  Above the floor, degraded datasets analyse
    normally with coverage footnotes instead of refusing.
    """


class ServeError(ReproError):
    """The serving layer was misconfigured or fed a bad artifact."""


class StrategyIndexError(ServeError):
    """A strategy-index artifact is missing, malformed or corrupt.

    Raised by :class:`repro.serve.index.StrategyIndex` when loading a
    ``strategy-index-v1`` file whose JSON is truncated, whose format
    tag is unrecognised or whose checksum does not match — an advisor
    must refuse to serve recommendations it cannot trust.
    """


class PredictionError(ServeError):
    """An online prediction request cannot be priced.

    Raised by :class:`repro.serve.predict.Predictor` for queries naming
    an unknown chip, application or input, or an application/input pair
    the study itself skips (a weight-requiring application on an
    unweighted graph).  The server maps this onto a 400 response.
    """


class FlushTimeoutError(PredictionError):
    """A coalesced predict batch blew its flush deadline.

    Raised (as a per-item future exception) by
    :class:`repro.serve.server.PredictCoalescer` when one slow or
    oversized batch exceeds its hard flush deadline — every waiter in
    the batch gets this instead of stalling past the request timeout.
    The server maps it onto a per-item 503, counts
    ``serve.predict.flush_timeouts`` and feeds the predict circuit
    breaker.
    """
