"""Deterministic fault injection for the study pipeline.

The fault-tolerant sweep (:mod:`repro.study.runner`) has recovery
paths — worker-death requeue, bounded retries, in-process fallback,
checkpoint resume, corrupted-write detection — that only execute when
something goes wrong.  :class:`FaultPlan` makes "something goes wrong"
a deterministic, test-drivable event: faults are *armed* at named
points and *fire* exactly as many times as they were armed, no matter
how many processes race to trigger them.

A plan is backed by a spool directory of token files; arming a fault
creates tokens, firing one atomically consumes a token (``os.unlink``
— only one process can win the race) before the fault acts.  The plan
object itself holds nothing but the directory path, so it pickles
cheaply into worker processes and can be handed to a subprocess via
``python -m repro study --faults DIR``.

Fault kinds:

``crash``
    Hard worker death (``os._exit``) — the process disappears without
    unwinding, exactly like an OOM kill or segfault.
``error``
    Raises :class:`~repro.errors.InjectedFault` — an exception that
    propagates out of the shard like any pricing bug would.
``interrupt``
    Raises :class:`KeyboardInterrupt` — models ``^C`` in the parent's
    merge loop, the canonical way to kill a sweep partway.
``slow``
    Sleeps for the armed delay — a straggling shard.
``corrupt``
    Performs nothing itself; :meth:`FaultPlan.fire` returns ``True``
    and the caller (``PerfDataset.save``) garbles its own write,
    modelling a disk/filesystem failure.

The serving layer (``repro serve --faults DIR``) arms the same tokens
at its own named points — :data:`SERVE_WORKER_CRASH` (hard worker
death mid-dispatch), :data:`SERVE_HANDLER_SLOW` (a handler stalled for
the armed ``param`` seconds, consumed via :meth:`FaultPlan.consume` so
the event loop sleeps asynchronously instead of blocking), and
:data:`SERVE_RELOAD_CORRUPT` (the hot-reload candidate index garbled
before validation, driving the rollback path).  The chaos harness
(``benchmarks/bench_serve.py --chaos``) and the supervisor tests arm
these to prove the fleet self-heals under deterministic failure
schedules.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Iterable, List, Optional, Tuple
from urllib.parse import quote, unquote

from .errors import InjectedFault

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedFault",
    "SERVE_HANDLER_SLOW",
    "SERVE_RELOAD_CORRUPT",
    "SERVE_WORKER_CRASH",
]

#: The fault vocabulary, in severity order.
FAULT_KINDS = ("crash", "error", "interrupt", "slow", "corrupt")

#: Exit status of a ``crash``-faulted worker (distinctive in waitpid logs).
CRASH_EXIT_CODE = 86

#: Serve-path fault points (see module docstring).
SERVE_WORKER_CRASH = "serve.worker"
SERVE_HANDLER_SLOW = "serve.handler"
SERVE_RELOAD_CORRUPT = "serve.reload"


class FaultPlan:
    """A spool directory of armed faults, fired at named points.

    ``FaultPlan(directory)`` attaches to (and creates) the spool;
    :meth:`arm` plants ``count`` tokens for a ``(kind, key)`` point and
    :meth:`fire` consumes one and performs the fault.  A point with no
    remaining tokens is a no-op, so production code can call ``fire``
    unconditionally when handed a plan — and skips even that when the
    plan is ``None``.
    """

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)

    # -- token bookkeeping -------------------------------------------------

    def _token_prefix(self, kind: str, key: str) -> str:
        return f"{kind}@{quote(str(key), safe='')}#"

    def arm(
        self, kind: str, key: str, count: int = 1, param: float = 0.0
    ) -> None:
        """Plant ``count`` tokens for the fault ``kind`` at point ``key``."""
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        if count < 1:
            raise ValueError("count must be positive")
        prefix = self._token_prefix(kind, key)
        existing = sum(
            1 for name in os.listdir(self.directory) if name.startswith(prefix)
        )
        for i in range(existing, existing + count):
            path = os.path.join(self.directory, f"{prefix}{i:04d}")
            with open(path, "w") as f:
                json.dump({"param": param}, f)

    def _consume(self, kind: str, key: str) -> Optional[dict]:
        """Atomically claim one token, or ``None`` if none remain."""
        prefix = self._token_prefix(kind, key)
        try:
            names = sorted(
                n for n in os.listdir(self.directory) if n.startswith(prefix)
            )
        except FileNotFoundError:  # pragma: no cover - spool removed
            return None
        for name in names:
            path = os.path.join(self.directory, name)
            try:
                with open(path) as f:
                    payload = json.load(f)
                os.unlink(path)  # atomic claim: one process wins
            except (FileNotFoundError, json.JSONDecodeError):
                continue  # lost the race (or mid-write token): try next
            return payload
        return None

    def armed(self) -> List[Tuple[str, str]]:
        """The ``(kind, key)`` of every remaining token, sorted."""
        out = []
        for name in sorted(os.listdir(self.directory)):
            kind, _, rest = name.partition("@")
            key, _, _ = rest.rpartition("#")
            out.append((kind, unquote(key)))
        return out

    def consume(self, kind: str, key: str) -> Optional[dict]:
        """Claim one token *without* performing the fault.

        For callers that must act themselves: an asyncio handler
        cannot use :meth:`fire`'s blocking ``time.sleep`` for a
        ``slow`` fault, and ``corrupt`` always leaves the acting to
        the caller.  Returns the token payload (``{"param": ...}``) or
        ``None`` when nothing is armed.
        """
        return self._consume(kind, key)

    # -- firing ------------------------------------------------------------

    def fire(self, kind: str, key: str) -> bool:
        """Fire the fault ``kind`` at point ``key`` if a token remains.

        Returns whether a token was consumed; for ``crash``, ``error``
        and ``interrupt`` control does not return when it was.
        """
        token = self._consume(kind, key)
        if token is None:
            return False
        if kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if kind == "error":
            raise InjectedFault(f"injected error at {key}")
        if kind == "interrupt":
            raise KeyboardInterrupt(f"injected interrupt at {key}")
        if kind == "slow":
            time.sleep(float(token.get("param", 0.0)))
        return True  # "slow" (already slept) and "corrupt" (caller acts)

    # -- seeded construction -----------------------------------------------

    @classmethod
    def seeded(
        cls,
        directory: str,
        seed: int,
        keys: Iterable[str],
        kind: str = "error",
        rate: float = 0.1,
        count: int = 1,
        param: float = 0.0,
    ) -> "FaultPlan":
        """Arm ``kind`` at a pseudo-random ``rate`` fraction of ``keys``.

        The selection depends only on ``seed`` and the key order, so a
        test (or a soak harness) can reproduce an exact fault schedule
        from one integer.
        """
        plan = cls(directory)
        rng = random.Random(seed)
        for key in keys:
            if rng.random() < rate:
                plan.arm(kind, key, count=count, param=param)
        return plan

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({self.directory!r}, armed={len(self.armed())})"
