"""Compressed sparse row (CSR) graph representation.

All applications in the study consume graphs in CSR form, the same
layout the IrGL runtime uses on GPUs: an ``n_nodes + 1`` row-pointer
array and a column-index array holding the destination of each directed
edge, plus an optional parallel array of edge weights.

The representation is immutable after construction; algorithms that
mutate graph structure (e.g. Boruvka's MST contraction) build new
arrays rather than editing in place.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..errors import GraphError

__all__ = ["CSRGraph"]


class CSRGraph:
    """A directed graph in compressed sparse row format.

    Parameters
    ----------
    row_ptr:
        ``int64`` array of length ``n_nodes + 1``; out-edges of node
        ``v`` occupy ``col_idx[row_ptr[v]:row_ptr[v + 1]]``.
    col_idx:
        ``int32``/``int64`` array of edge destinations.
    weights:
        Optional array of per-edge weights (parallel to ``col_idx``).
    name:
        Human-readable identifier used in datasets and reports.
    """

    def __init__(
        self,
        row_ptr: np.ndarray,
        col_idx: np.ndarray,
        weights: Optional[np.ndarray] = None,
        name: str = "graph",
    ) -> None:
        row_ptr = np.asarray(row_ptr, dtype=np.int64)
        col_idx = np.asarray(col_idx, dtype=np.int64)
        if row_ptr.ndim != 1 or col_idx.ndim != 1:
            raise GraphError("row_ptr and col_idx must be 1-D arrays")
        if row_ptr.size == 0:
            raise GraphError("row_ptr must have at least one entry")
        if row_ptr[0] != 0:
            raise GraphError("row_ptr must start at 0")
        if row_ptr[-1] != col_idx.size:
            raise GraphError(
                "row_ptr must end at the number of edges "
                f"({row_ptr[-1]} != {col_idx.size})"
            )
        if np.any(np.diff(row_ptr) < 0):
            raise GraphError("row_ptr must be non-decreasing")
        n_nodes = row_ptr.size - 1
        if col_idx.size and (col_idx.min() < 0 or col_idx.max() >= n_nodes):
            raise GraphError("col_idx contains out-of-range node ids")
        if weights is not None:
            weights = np.asarray(weights)
            if weights.shape != col_idx.shape:
                raise GraphError("weights must be parallel to col_idx")
        self._row_ptr = row_ptr
        self._col_idx = col_idx
        self._weights = weights
        self.name = name
        self._row_ptr.setflags(write=False)
        self._col_idx.setflags(write=False)
        if self._weights is not None:
            self._weights.setflags(write=False)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n_nodes: int,
        edges: Sequence[Tuple[int, int]] | np.ndarray,
        weights: Optional[Sequence[float]] = None,
        name: str = "graph",
    ) -> "CSRGraph":
        """Build a CSR graph from an edge list.

        Edges are sorted by source (stable, so parallel weights follow
        their edge).  Self-loops and duplicate edges are preserved; use
        :meth:`deduplicated` to drop them.
        """
        if n_nodes < 0:
            raise GraphError("n_nodes must be non-negative")
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise GraphError("edges must be an (m, 2) array")
        src, dst = edges[:, 0], edges[:, 1]
        if edges.shape[0] and (
            src.min() < 0 or src.max() >= n_nodes or dst.min() < 0 or dst.max() >= n_nodes
        ):
            raise GraphError("edge endpoints out of range")
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        w = None
        if weights is not None:
            w = np.asarray(weights)
            if w.shape != (edges.shape[0],):
                raise GraphError(
                    f"weights must be parallel to edges "
                    f"({w.shape} vs {edges.shape[0]} edges)"
                )
            w = w[order]
        row_ptr = np.zeros(n_nodes + 1, dtype=np.int64)
        np.add.at(row_ptr, src + 1, 1)
        np.cumsum(row_ptr, out=row_ptr)
        return cls(row_ptr, dst, w, name=name)

    def deduplicated(self) -> "CSRGraph":
        """Return a copy with self-loops and duplicate edges removed.

        When duplicate edges carry weights, the minimum weight is kept
        (the convention used by shortest-path inputs).
        """
        src = self.edge_sources()
        dst = self._col_idx
        keep = src != dst
        src, dst = src[keep], dst[keep]
        w = self._weights[keep] if self._weights is not None else None
        key = src * self.n_nodes + dst
        if w is None:
            uniq = np.unique(key)
            usrc, udst = uniq // self.n_nodes, uniq % self.n_nodes
            return CSRGraph.from_edges(
                self.n_nodes, np.column_stack([usrc, udst]), name=self.name
            )
        order = np.lexsort((w, key))
        key, src, dst, w = key[order], src[order], dst[order], w[order]
        first = np.ones(key.size, dtype=bool)
        first[1:] = key[1:] != key[:-1]
        return CSRGraph.from_edges(
            self.n_nodes,
            np.column_stack([src[first], dst[first]]),
            w[first],
            name=self.name,
        )

    def symmetrized(self) -> "CSRGraph":
        """Return the graph with every edge mirrored (and deduplicated)."""
        src = self.edge_sources()
        dst = self._col_idx
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        w = None
        if self._weights is not None:
            w = np.concatenate([self._weights, self._weights])
        g = CSRGraph.from_edges(
            self.n_nodes, np.column_stack([all_src, all_dst]), w, name=self.name
        )
        return g.deduplicated()

    def reversed(self) -> "CSRGraph":
        """Return the transpose graph (all edges flipped)."""
        src = self.edge_sources()
        return CSRGraph.from_edges(
            self.n_nodes,
            np.column_stack([self._col_idx, src]),
            self._weights,
            name=self.name,
        )

    # -- accessors -------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self._row_ptr.size - 1

    @property
    def n_edges(self) -> int:
        return self._col_idx.size

    @property
    def row_ptr(self) -> np.ndarray:
        return self._row_ptr

    @property
    def col_idx(self) -> np.ndarray:
        return self._col_idx

    @property
    def weights(self) -> Optional[np.ndarray]:
        return self._weights

    @property
    def has_weights(self) -> bool:
        return self._weights is not None

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an ``int64`` array."""
        return np.diff(self._row_ptr)

    def out_degree(self, v: int) -> int:
        self._check_node(v)
        return int(self._row_ptr[v + 1] - self._row_ptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        """Destinations of the out-edges of ``v`` (a read-only view)."""
        self._check_node(v)
        return self._col_idx[self._row_ptr[v] : self._row_ptr[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        if self._weights is None:
            raise GraphError(f"graph {self.name!r} is unweighted")
        self._check_node(v)
        return self._weights[self._row_ptr[v] : self._row_ptr[v + 1]]

    def edge_sources(self) -> np.ndarray:
        """Source node of every edge, i.e. CSR expanded back to COO."""
        return np.repeat(np.arange(self.n_nodes, dtype=np.int64), self.out_degrees())

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over (source, destination) pairs."""
        src = self.edge_sources()
        for s, d in zip(src, self._col_idx):
            yield int(s), int(d)

    def is_symmetric(self) -> bool:
        """True when for every edge (u, v) the edge (v, u) also exists."""
        fwd = set(map(tuple, np.column_stack([self.edge_sources(), self._col_idx])))
        return all((d, s) in fwd for s, d in fwd)

    def with_unit_weights(self) -> "CSRGraph":
        """Return a weighted copy with every edge weight set to 1."""
        return CSRGraph(
            self._row_ptr,
            self._col_idx,
            np.ones(self.n_edges, dtype=np.float64),
            name=self.name,
        )

    def _check_node(self, v: int) -> None:
        if not 0 <= v < self.n_nodes:
            raise GraphError(f"node {v} out of range [0, {self.n_nodes})")

    # -- dunder ----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        w = "weighted" if self.has_weights else "unweighted"
        return (
            f"CSRGraph(name={self.name!r}, nodes={self.n_nodes}, "
            f"edges={self.n_edges}, {w})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if not (
            np.array_equal(self._row_ptr, other._row_ptr)
            and np.array_equal(self._col_idx, other._col_idx)
        ):
            return False
        if (self._weights is None) != (other._weights is None):
            return False
        if self._weights is not None:
            return bool(np.allclose(self._weights, other._weights))
        return True

    def __hash__(self) -> int:
        return hash((self.name, self.n_nodes, self.n_edges))
