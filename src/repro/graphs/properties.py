"""Structural property analysis for study inputs.

The paper's performance narrative hinges on a few structural features
of the input graph: diameter (number of data-dependent kernel
iterations, which drives ``oitergb``), degree distribution skew (load
imbalance, which drives the nested-parallelism schemes) and average
degree.  This module computes those features so that the synthetic
inputs can be validated against the classes they stand in for
(Table VIII).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util import expand_segments
from .csr import CSRGraph

__all__ = [
    "GraphProperties",
    "analyze",
    "bfs_levels",
    "estimate_diameter",
    "degree_cv",
    "degree_gini",
]


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Return the BFS level of every node from ``source`` (-1: unreached).

    Vectorised frontier-at-a-time BFS; this is the reference CPU
    implementation reused by the application validators.
    """
    levels = np.full(graph.n_nodes, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    row_ptr, col_idx = graph.row_ptr, graph.col_idx
    while frontier.size:
        starts = row_ptr[frontier]
        counts = row_ptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Gather all out-neighbours of the frontier in one shot.
        neighbours = col_idx[expand_segments(starts, counts)]
        fresh = np.unique(neighbours[levels[neighbours] < 0])
        level += 1
        levels[fresh] = level
        frontier = fresh
    return levels


def estimate_diameter(graph: CSRGraph, n_samples: int = 4, seed: int = 0) -> int:
    """Estimate graph (pseudo-)diameter by repeated farthest-node BFS.

    Starts from a random node, runs BFS, hops to the farthest reached
    node and repeats — the classic double-sweep lower bound.  Exact for
    trees; a tight lower bound in practice for road networks.
    """
    if graph.n_nodes == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    start = int(rng.integers(graph.n_nodes))
    for _ in range(max(1, n_samples)):
        levels = bfs_levels(graph, start)
        reached = levels >= 0
        ecc = int(levels[reached].max()) if reached.any() else 0
        if ecc <= best and _ > 0:
            break
        best = max(best, ecc)
        farthest = np.flatnonzero(levels == ecc)
        start = int(farthest[0]) if farthest.size else int(rng.integers(graph.n_nodes))
    return best


def degree_cv(graph: CSRGraph) -> float:
    """Coefficient of variation of the out-degree distribution.

    Near 0 for road/uniform graphs; well above 1 for power-law graphs.
    This is the load-imbalance signal the nested-parallelism
    optimisations respond to.
    """
    deg = graph.out_degrees().astype(np.float64)
    mean = deg.mean() if deg.size else 0.0
    if mean == 0:
        return 0.0
    return float(deg.std() / mean)


def degree_gini(graph: CSRGraph) -> float:
    """Gini coefficient of the out-degree distribution in [0, 1]."""
    deg = np.sort(graph.out_degrees().astype(np.float64))
    n = deg.size
    total = deg.sum()
    if n == 0 or total == 0:
        return 0.0
    cum = np.cumsum(deg)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


@dataclass(frozen=True)
class GraphProperties:
    """Summary of the structural features relevant to the study."""

    name: str
    n_nodes: int
    n_edges: int
    avg_degree: float
    max_degree: int
    degree_cv: float
    degree_gini: float
    est_diameter: int

    @property
    def is_high_diameter(self) -> bool:
        """True for road-network-like inputs (diameter >> log n)."""
        return self.est_diameter > 4 * max(1.0, np.log2(max(self.n_nodes, 2)))

    @property
    def is_power_law(self) -> bool:
        """True for social-network-like inputs (heavy degree skew)."""
        return self.degree_cv > 1.0

    def classify(self) -> str:
        """Classify into the paper's three input classes."""
        if self.is_high_diameter:
            return "road"
        if self.is_power_law:
            return "social"
        return "random"


def analyze(graph: CSRGraph, seed: int = 0) -> GraphProperties:
    """Compute the :class:`GraphProperties` summary of ``graph``."""
    deg = graph.out_degrees()
    return GraphProperties(
        name=graph.name,
        n_nodes=graph.n_nodes,
        n_edges=graph.n_edges,
        avg_degree=float(deg.mean()) if deg.size else 0.0,
        max_degree=int(deg.max()) if deg.size else 0,
        degree_cv=degree_cv(graph),
        degree_gini=degree_gini(graph),
        est_diameter=estimate_diameter(graph, seed=seed),
    )
