"""Graph substrate: CSR graphs, generators, I/O and the study inputs."""

from .csr import CSRGraph
from .generators import rmat_graph, road_network, uniform_random_graph
from .inputs import INPUT_NAMES, StudyInput, get_input, study_inputs
from .io import load_dimacs, load_edge_list, load_graph, save_dimacs, save_edge_list
from .properties import (
    GraphProperties,
    analyze,
    bfs_levels,
    degree_cv,
    degree_gini,
    estimate_diameter,
)

__all__ = [
    "CSRGraph",
    "road_network",
    "rmat_graph",
    "uniform_random_graph",
    "StudyInput",
    "study_inputs",
    "get_input",
    "INPUT_NAMES",
    "load_dimacs",
    "save_dimacs",
    "load_edge_list",
    "save_edge_list",
    "load_graph",
    "GraphProperties",
    "analyze",
    "bfs_levels",
    "estimate_diameter",
    "degree_cv",
    "degree_gini",
]
