"""The three study inputs (paper Table VIII), synthesised.

Each :class:`StudyInput` names one of the paper's input classes and
lazily constructs (and caches) a synthetic graph whose structural
signature matches that class:

* ``usa-ny-sim``  — road network: huge diameter, degree ≈ 2–4;
* ``rmat-sim``    — social network: power-law degrees, tiny diameter;
* ``uniform-sim`` — uniform random: narrow degrees, tiny diameter.

Sizes default to laptop scale; pass ``scale`` to
:func:`study_inputs` to grow them uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from .csr import CSRGraph
from .generators import rmat_graph, road_network, uniform_random_graph

__all__ = ["StudyInput", "study_inputs", "get_input", "INPUT_NAMES"]

INPUT_NAMES: Tuple[str, ...] = ("usa-ny-sim", "rmat-sim", "uniform-sim")


@dataclass
class StudyInput:
    """A named, lazily-built graph input of the study."""

    name: str
    input_class: str  # "road" | "social" | "random"
    description: str
    _builder: Callable[[], CSRGraph]
    _graph: Optional[CSRGraph] = field(default=None, repr=False)

    @property
    def graph(self) -> CSRGraph:
        """The graph, built on first access and cached."""
        if self._graph is None:
            self._graph = self._builder()
        return self._graph


def study_inputs(scale: float = 1.0, seed: int = 7) -> Dict[str, StudyInput]:
    """Build the study's three inputs at a given size multiplier.

    ``scale=1`` yields ~10⁴-node graphs (seconds to trace);
    ``scale=10`` approaches the published input sizes.
    """
    side = max(8, int(round(140 * scale ** 0.5)))
    rmat_scale = max(8, int(round(14 + math.log2(max(scale, 1e-9)))))
    n_uniform = max(64, int(round(20_000 * scale)))

    return {
        "usa-ny-sim": StudyInput(
            name="usa-ny-sim",
            input_class="road",
            description=(
                "Synthetic New-York-style road network (jittered grid, "
                f"{side}x{side}); stands in for DIMACS usa.ny"
            ),
            _builder=lambda: road_network(side, side, seed=seed, name="usa-ny-sim"),
        ),
        "rmat-sim": StudyInput(
            name="rmat-sim",
            input_class="social",
            description=(
                f"Synthetic RMAT power-law graph (scale {rmat_scale}, "
                "Graph500 parameters); stands in for rmat22"
            ),
            _builder=lambda: rmat_graph(
                rmat_scale, edge_factor=16, seed=seed, name="rmat-sim"
            ),
        ),
        "uniform-sim": StudyInput(
            name="uniform-sim",
            input_class="random",
            description=(
                f"Uniform random graph ({n_uniform} nodes, avg degree 8); "
                "stands in for a uniform-degree random input"
            ),
            _builder=lambda: uniform_random_graph(
                n_uniform, avg_degree=8.0, seed=seed, name="uniform-sim"
            ),
        ),
    }


_DEFAULT_INPUTS: Optional[Dict[str, StudyInput]] = None


def get_input(name: str) -> StudyInput:
    """Return a default-scale study input by name (cached)."""
    global _DEFAULT_INPUTS
    if _DEFAULT_INPUTS is None:
        _DEFAULT_INPUTS = study_inputs()
    try:
        return _DEFAULT_INPUTS[name]
    except KeyError:
        raise KeyError(
            f"unknown input {name!r}; known inputs: {', '.join(INPUT_NAMES)}"
        ) from None
