"""Graph file I/O: DIMACS shortest-path format and plain edge lists.

The study's real-world counterpart input (``usa.ny``) ships in the 9th
DIMACS Implementation Challenge ``.gr`` format; supporting it lets the
library run on the authors' actual inputs when they are available,
while the synthetic generators stand in offline.

Parsing is defensive: every malformed input — non-numeric tokens,
negative or implausibly large vertex ids, endpoints outside the
declared node range, truncated files (mid-line or missing arcs),
binary garbage, empty graphs — raises
:class:`~repro.errors.GraphFormatError` naming the offending path and
line, never a bare ``ValueError``/``IndexError``/``OverflowError``.
"""

from __future__ import annotations

import math
import os
from typing import List, Optional, Tuple

import numpy as np

from ..errors import GraphError, GraphFormatError
from .csr import CSRGraph

__all__ = [
    "load_dimacs",
    "save_dimacs",
    "load_edge_list",
    "save_edge_list",
    "load_graph",
]

#: Vertex ids at or above this bound are rejected as overflow: they
#: cannot index a real CSR array and almost certainly indicate a
#: corrupt file (the largest public graphs have ~10^11 vertices).
MAX_VERTEX_ID = 2**48


def _parse_id(token: str, path: str, lineno: int, what: str) -> int:
    """A non-negative, bounded vertex id, or GraphFormatError."""
    try:
        value = int(token)
    except ValueError:
        raise GraphFormatError(
            f"{path}:{lineno}: {what} {token!r} is not an integer"
        ) from None
    if value < 0:
        raise GraphFormatError(
            f"{path}:{lineno}: negative {what} {value}"
        )
    if value >= MAX_VERTEX_ID:
        raise GraphFormatError(
            f"{path}:{lineno}: {what} {value} overflows the vertex index "
            f"(>= {MAX_VERTEX_ID})"
        )
    return value


def _parse_weight(token: str, path: str, lineno: int) -> float:
    """A finite edge weight, or GraphFormatError."""
    try:
        value = float(token)
    except ValueError:
        raise GraphFormatError(
            f"{path}:{lineno}: weight {token!r} is not a number"
        ) from None
    if not math.isfinite(value):
        raise GraphFormatError(
            f"{path}:{lineno}: non-finite weight {token!r}"
        )
    return value


def _read_lines(path: str):
    """Yield (lineno, stripped line), wrapping I/O and decode errors."""
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                yield lineno, line.strip()
    except UnicodeDecodeError as exc:
        raise GraphFormatError(
            f"{path}: not a text file (binary or truncated data: {exc})"
        ) from exc
    except OSError as exc:
        raise GraphFormatError(f"{path}: unreadable ({exc})") from exc


def load_dimacs(path: str, name: Optional[str] = None) -> CSRGraph:
    """Load a DIMACS ``.gr`` weighted directed graph.

    Format: comment lines start with ``c``; one problem line
    ``p sp <nodes> <edges>``; arc lines ``a <src> <dst> <weight>`` with
    1-based node ids.  A file whose arc count disagrees with the
    problem line is reported as truncated.
    """
    n_nodes = None
    n_declared = None
    edges: List[Tuple[int, int]] = []
    weights: List[float] = []
    for lineno, line in _read_lines(path):
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            if len(parts) != 4 or parts[1] != "sp":
                raise GraphFormatError(
                    f"{path}:{lineno}: malformed problem line {line!r}"
                )
            if n_nodes is not None:
                raise GraphFormatError(
                    f"{path}:{lineno}: duplicate problem line"
                )
            n_nodes = _parse_id(parts[2], path, lineno, "node count")
            n_declared = _parse_id(parts[3], path, lineno, "edge count")
        elif parts[0] == "a":
            if n_nodes is None:
                raise GraphFormatError(
                    f"{path}:{lineno}: arc line before problem line"
                )
            if len(parts) != 4:
                raise GraphFormatError(
                    f"{path}:{lineno}: malformed arc line {line!r}"
                )
            src = _parse_id(parts[1], path, lineno, "source id")
            dst = _parse_id(parts[2], path, lineno, "target id")
            if not (1 <= src <= n_nodes and 1 <= dst <= n_nodes):
                raise GraphFormatError(
                    f"{path}:{lineno}: arc ({src}, {dst}) outside the "
                    f"declared 1..{n_nodes} node range"
                )
            edges.append((src - 1, dst - 1))
            weights.append(_parse_weight(parts[3], path, lineno))
        else:
            raise GraphFormatError(
                f"{path}:{lineno}: unknown record type {parts[0]!r}"
            )
    if n_nodes is None:
        raise GraphFormatError(f"{path}: missing problem line")
    if n_nodes == 0:
        raise GraphFormatError(f"{path}: declares an empty graph (0 nodes)")
    if n_declared is not None and len(edges) != n_declared:
        raise GraphFormatError(
            f"{path}: truncated or padded: problem line declares "
            f"{n_declared} arcs but {len(edges)} were read"
        )
    try:
        return CSRGraph.from_edges(
            n_nodes,
            np.asarray(edges, dtype=np.int64).reshape(len(edges), 2),
            np.asarray(weights),
            name=name or os.path.splitext(os.path.basename(path))[0],
        )
    except GraphError as exc:  # pragma: no cover - ids pre-validated
        raise GraphFormatError(f"{path}: {exc}") from exc


def save_dimacs(graph: CSRGraph, path: str) -> None:
    """Write ``graph`` in DIMACS ``.gr`` format (weights default to 1)."""
    src = graph.edge_sources()
    w = graph.weights if graph.has_weights else np.ones(graph.n_edges)
    with open(path, "w") as f:
        f.write(f"c graph {graph.name}\n")
        f.write(f"p sp {graph.n_nodes} {graph.n_edges}\n")
        for s, d, wt in zip(src, graph.col_idx, w):
            f.write(f"a {s + 1} {d + 1} {int(wt)}\n")


def load_edge_list(
    path: str, weighted: bool = False, name: Optional[str] = None
) -> CSRGraph:
    """Load a whitespace-separated edge list (``src dst [weight]``).

    Lines starting with ``#`` or ``%`` are comments (SNAP/KONECT
    conventions).  Node count is one more than the maximum id seen.
    A file with no edges at all raises
    :class:`~repro.errors.GraphFormatError` — an empty graph is far
    more likely a truncated download than a deliberate input.
    """
    srcs: List[int] = []
    dsts: List[int] = []
    wts: List[float] = []
    for lineno, line in _read_lines(path):
        if not line or line[0] in "#%":
            continue
        parts = line.split()
        if len(parts) < 2 or (weighted and len(parts) < 3):
            raise GraphFormatError(f"{path}:{lineno}: malformed edge {line!r}")
        srcs.append(_parse_id(parts[0], path, lineno, "source id"))
        dsts.append(_parse_id(parts[1], path, lineno, "target id"))
        if weighted:
            wts.append(_parse_weight(parts[2], path, lineno))
    if not srcs:
        raise GraphFormatError(
            f"{path}: no edges (empty or fully commented file)"
        )
    n = max(max(srcs), max(dsts)) + 1
    try:
        return CSRGraph.from_edges(
            n,
            np.column_stack([srcs, dsts]),
            np.asarray(wts) if weighted else None,
            name=name or os.path.splitext(os.path.basename(path))[0],
        )
    except GraphError as exc:  # pragma: no cover - ids pre-validated
        raise GraphFormatError(f"{path}: {exc}") from exc


def save_edge_list(graph: CSRGraph, path: str) -> None:
    """Write ``graph`` as a plain edge list (weights appended if present)."""
    src = graph.edge_sources()
    with open(path, "w") as f:
        f.write(f"# graph {graph.name}: {graph.n_nodes} nodes {graph.n_edges} edges\n")
        if graph.has_weights:
            for s, d, w in zip(src, graph.col_idx, graph.weights):
                f.write(f"{s} {d} {w:g}\n")
        else:
            for s, d in zip(src, graph.col_idx):
                f.write(f"{s} {d}\n")


def load_graph(path: str, **kwargs) -> CSRGraph:
    """Dispatch on file extension: ``.gr`` → DIMACS, otherwise edge list."""
    if path.endswith(".gr"):
        return load_dimacs(path, **kwargs)
    return load_edge_list(path, **kwargs)
