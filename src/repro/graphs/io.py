"""Graph file I/O: DIMACS shortest-path format and plain edge lists.

The study's real-world counterpart input (``usa.ny``) ships in the 9th
DIMACS Implementation Challenge ``.gr`` format; supporting it lets the
library run on the authors' actual inputs when they are available,
while the synthetic generators stand in offline.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph

__all__ = [
    "load_dimacs",
    "save_dimacs",
    "load_edge_list",
    "save_edge_list",
    "load_graph",
]


def load_dimacs(path: str, name: Optional[str] = None) -> CSRGraph:
    """Load a DIMACS ``.gr`` weighted directed graph.

    Format: comment lines start with ``c``; one problem line
    ``p sp <nodes> <edges>``; arc lines ``a <src> <dst> <weight>`` with
    1-based node ids.
    """
    n_nodes = None
    edges: List[Tuple[int, int]] = []
    weights: List[float] = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphFormatError(
                        f"{path}:{lineno}: malformed problem line {line!r}"
                    )
                n_nodes = int(parts[2])
            elif parts[0] == "a":
                if n_nodes is None:
                    raise GraphFormatError(
                        f"{path}:{lineno}: arc line before problem line"
                    )
                if len(parts) != 4:
                    raise GraphFormatError(
                        f"{path}:{lineno}: malformed arc line {line!r}"
                    )
                edges.append((int(parts[1]) - 1, int(parts[2]) - 1))
                weights.append(float(parts[3]))
            else:
                raise GraphFormatError(
                    f"{path}:{lineno}: unknown record type {parts[0]!r}"
                )
    if n_nodes is None:
        raise GraphFormatError(f"{path}: missing problem line")
    return CSRGraph.from_edges(
        n_nodes,
        np.asarray(edges, dtype=np.int64).reshape(len(edges), 2),
        np.asarray(weights),
        name=name or os.path.splitext(os.path.basename(path))[0],
    )


def save_dimacs(graph: CSRGraph, path: str) -> None:
    """Write ``graph`` in DIMACS ``.gr`` format (weights default to 1)."""
    src = graph.edge_sources()
    w = graph.weights if graph.has_weights else np.ones(graph.n_edges)
    with open(path, "w") as f:
        f.write(f"c graph {graph.name}\n")
        f.write(f"p sp {graph.n_nodes} {graph.n_edges}\n")
        for s, d, wt in zip(src, graph.col_idx, w):
            f.write(f"a {s + 1} {d + 1} {int(wt)}\n")


def load_edge_list(
    path: str, weighted: bool = False, name: Optional[str] = None
) -> CSRGraph:
    """Load a whitespace-separated edge list (``src dst [weight]``).

    Lines starting with ``#`` or ``%`` are comments (SNAP/KONECT
    conventions).  Node count is one more than the maximum id seen.
    """
    srcs: List[int] = []
    dsts: List[int] = []
    wts: List[float] = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line[0] in "#%":
                continue
            parts = line.split()
            if len(parts) < 2 or (weighted and len(parts) < 3):
                raise GraphFormatError(f"{path}:{lineno}: malformed edge {line!r}")
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            if weighted:
                wts.append(float(parts[2]))
    n = (max(max(srcs), max(dsts)) + 1) if srcs else 0
    return CSRGraph.from_edges(
        n,
        np.column_stack([srcs, dsts]) if srcs else np.empty((0, 2), dtype=np.int64),
        np.asarray(wts) if weighted else None,
        name=name or os.path.splitext(os.path.basename(path))[0],
    )


def save_edge_list(graph: CSRGraph, path: str) -> None:
    """Write ``graph`` as a plain edge list (weights appended if present)."""
    src = graph.edge_sources()
    with open(path, "w") as f:
        f.write(f"# graph {graph.name}: {graph.n_nodes} nodes {graph.n_edges} edges\n")
        if graph.has_weights:
            for s, d, w in zip(src, graph.col_idx, graph.weights):
                f.write(f"{s} {d} {w:g}\n")
        else:
            for s, d in zip(src, graph.col_idx):
                f.write(f"{s} {d}\n")


def load_graph(path: str, **kwargs) -> CSRGraph:
    """Dispatch on file extension: ``.gr`` → DIMACS, otherwise edge list."""
    if path.endswith(".gr"):
        return load_dimacs(path, **kwargs)
    return load_edge_list(path, **kwargs)
