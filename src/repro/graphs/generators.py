"""Synthetic generators for the study's three graph input classes.

The paper evaluates on three classes of input (Table VIII):

* a road network (``usa.ny``): planar, very large diameter, low and
  nearly-uniform degree;
* a social network (RMAT): tiny diameter, power-law degree
  distribution;
* a uniformly random graph: small diameter, narrow degree distribution.

Real inputs are unavailable offline, so these generators synthesise
graphs with the same structural signatures.  The properties that drive
the paper's performance effects — diameter (iteration count), degree
skew (load imbalance) and density — are validated by tests against
:mod:`repro.graphs.properties`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import GraphError
from .csr import CSRGraph

__all__ = ["road_network", "rmat_graph", "uniform_random_graph"]


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def road_network(
    width: int,
    height: int,
    seed: int = 0,
    drop_fraction: float = 0.08,
    shortcut_fraction: float = 0.02,
    name: str = "road",
) -> CSRGraph:
    """Generate a road-network-like graph on a jittered grid.

    Nodes form a ``width × height`` lattice connected to 4-neighbours,
    with a fraction of edges dropped (dead ends, rivers) and a small
    fraction of local diagonal shortcuts added (highways).  Edge weights
    are integer road lengths in ``[1, 1000]``.  The result is symmetric
    and, like ``usa.ny``, has mean degree ≈ 2–4 and diameter
    ``Θ(width + height)``.
    """
    if width < 2 or height < 2:
        raise GraphError("road network requires at least a 2x2 grid")
    if not 0.0 <= drop_fraction < 1.0:
        raise GraphError("drop_fraction must be in [0, 1)")
    rng = _rng(seed)
    n = width * height

    def node(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return y * width + x

    xs, ys = np.meshgrid(np.arange(width), np.arange(height))
    xs, ys = xs.ravel(), ys.ravel()

    # Horizontal and vertical lattice edges.
    right = (xs < width - 1)
    down = (ys < height - 1)
    src = np.concatenate([node(xs[right], ys[right]), node(xs[down], ys[down])])
    dst = np.concatenate(
        [node(xs[right] + 1, ys[right]), node(xs[down], ys[down] + 1)]
    )

    keep = rng.random(src.size) >= drop_fraction
    src, dst = src[keep], dst[keep]

    # Diagonal shortcuts between nearby intersections.
    n_short = int(shortcut_fraction * src.size)
    if n_short:
        sx = rng.integers(0, width - 1, size=n_short)
        sy = rng.integers(0, height - 1, size=n_short)
        src = np.concatenate([src, node(sx, sy)])
        dst = np.concatenate([dst, node(sx + 1, sy + 1)])

    w = rng.integers(1, 1001, size=src.size).astype(np.float64)
    g = CSRGraph.from_edges(
        n, np.column_stack([src, dst]), w, name=name
    ).symmetrized()
    return CSRGraph(g.row_ptr, g.col_idx, g.weights, name=name)


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weighted: bool = True,
    name: str = "rmat",
) -> CSRGraph:
    """Generate an RMAT (Kronecker) power-law graph.

    ``2**scale`` nodes and approximately ``edge_factor * 2**scale``
    directed edges, placed by the classic recursive-matrix procedure
    with quadrant probabilities ``(a, b, c, d = 1 - a - b - c)``.  The
    Graph500 defaults produce the heavy-tailed degree distribution of a
    social network.  Duplicates and self-loops are removed, so the edge
    count is slightly below the nominal value.
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphError("RMAT quadrant probabilities must be non-negative")
    if scale < 1:
        raise GraphError("scale must be >= 1")
    rng = _rng(seed)
    n = 1 << scale
    m = edge_factor * n

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab = a + b
    a_norm = a / ab if ab else 0.5
    c_norm = c / (c + d) if (c + d) else 0.5
    for level in range(scale):
        go_down = rng.random(m) >= ab
        go_right = np.where(
            go_down, rng.random(m) >= c_norm, rng.random(m) >= a_norm
        )
        bit = 1 << (scale - 1 - level)
        src += bit * go_down
        dst += bit * go_right

    # Random node relabelling removes the correlation between node id
    # and degree that raw RMAT exhibits.
    perm = rng.permutation(n)
    src, dst = perm[src], perm[dst]

    w = rng.integers(1, 1001, size=m).astype(np.float64) if weighted else None
    g = CSRGraph.from_edges(n, np.column_stack([src, dst]), w, name=name)
    return g.deduplicated()


def uniform_random_graph(
    n_nodes: int,
    avg_degree: float = 8.0,
    seed: int = 0,
    weighted: bool = True,
    name: str = "uniform",
) -> CSRGraph:
    """Generate an Erdős–Rényi-style uniform random directed graph.

    Each of ``round(n_nodes * avg_degree)`` edges picks its endpoints
    uniformly at random, giving a binomial (narrow) degree distribution
    and logarithmic diameter: the "no load imbalance" end of the input
    spectrum where nested-parallelism schemes only add overhead.
    """
    if n_nodes < 2:
        raise GraphError("uniform random graph requires >= 2 nodes")
    if avg_degree <= 0:
        raise GraphError("avg_degree must be positive")
    rng = _rng(seed)
    m = int(round(n_nodes * avg_degree))
    src = rng.integers(0, n_nodes, size=m)
    dst = rng.integers(0, n_nodes, size=m)
    w = rng.integers(1, 1001, size=m).astype(np.float64) if weighted else None
    g = CSRGraph.from_edges(n_nodes, np.column_stack([src, dst]), w, name=name)
    return g.deduplicated()
