"""Maximal independent set: priority-based (Luby-style), two strategies.

Each node draws a fixed random priority; an undecided node joins the
set when its priority beats every undecided neighbour's, and its
neighbours are then removed.  With fixed priorities the resulting MIS
is *unique* (the lexicographically-first MIS in priority order), so
the parallel variants can be validated exactly against a sequential
greedy oracle.

* ``mis-topo`` — topology-driven rounds over all nodes;
* ``mis-wl``   — worklist of still-undecided nodes (fastest variant).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl.builder import fixpoint_program, relax_kernel, topology_kernel
from ..graphs.csr import CSRGraph
from ..ocl.memory import AtomicOp
from ..runtime.stats import StepResult, frontier_step_result
from ..runtime.worklist import Worklist
from ..util import stable_hash
from .base import Application, expand_frontier

__all__ = ["MISTopo", "MISWorklist", "mis_priorities"]

_UNDECIDED, _IN_SET, _REMOVED = 0, 1, 2


def mis_priorities(graph: CSRGraph) -> np.ndarray:
    """Deterministic per-node priorities shared by apps and oracle."""
    rng = np.random.default_rng(stable_hash("mis", graph.name, graph.n_nodes))
    return rng.permutation(graph.n_nodes).astype(np.int64)


def _mis_round(und: CSRGraph, status: np.ndarray, priority: np.ndarray,
               frontier: np.ndarray) -> np.ndarray:
    """One parallel MIS round over ``frontier``; returns new members."""
    srcs, dsts, _ = expand_frontier(und, frontier)
    alive_edge = status[dsts] == _UNDECIDED
    min_nb = np.full(und.n_nodes, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(min_nb, srcs[alive_edge], priority[dsts[alive_edge]])
    winners = frontier[
        (status[frontier] == _UNDECIDED)
        & (priority[frontier] < min_nb[frontier])
    ]
    status[winners] = _IN_SET
    # Remove the winners' undecided neighbours.
    _, wdsts, _ = expand_frontier(und, winners)
    removed = wdsts[status[wdsts] == _UNDECIDED]
    status[removed] = _REMOVED
    return winners


class _MISBase(Application):
    problem = "MIS"

    def init_state(self, graph: CSRGraph, source: int) -> Dict:
        und = graph.symmetrized()
        return {
            "und": und,
            "status": np.full(graph.n_nodes, _UNDECIDED, dtype=np.int8),
            "priority": mis_priorities(graph),
            "worklist": Worklist(np.arange(graph.n_nodes, dtype=np.int64)),
        }

    def extract_result(self, state: Dict, graph: CSRGraph) -> np.ndarray:
        return (state["status"] == _IN_SET).astype(np.int64)

    def reference(self, graph: CSRGraph, source: int) -> np.ndarray:
        und = graph.symmetrized()
        priority = mis_priorities(graph)
        order = np.argsort(priority, kind="stable")
        in_set = np.zeros(graph.n_nodes, dtype=bool)
        blocked = np.zeros(graph.n_nodes, dtype=bool)
        for v in order:
            if not blocked[v]:
                in_set[v] = True
                blocked[und.neighbors(v)] = True
                blocked[v] = True
        return in_set.astype(np.int64)


class MISTopo(_MISBase):
    """Topology-driven priority MIS."""

    name = "mis-topo"
    variant = "topology-driven"
    description = "Priority MIS scanning all nodes per round"

    def _build_program(self):
        return fixpoint_program(
            self.name,
            [
                topology_kernel(
                    "mis_topo_step",
                    read_field="priority",
                    write_field="status",
                    atomic=AtomicOp.MIN,
                )
            ],
            convergence="flag",
            description=self.description,
        )

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel != "mis_topo_step":
            raise self._unknown_kernel(kernel)
        und: CSRGraph = state["und"]
        status = state["status"]
        undecided = np.flatnonzero(status == _UNDECIDED).astype(np.int64)
        winners = _mis_round(und, status, state["priority"], undecided)
        srcs, dsts, _ = expand_frontier(und, undecided)
        remaining = int(np.count_nonzero(status == _UNDECIDED))
        return frontier_step_result(
            und,
            undecided,
            active_items=und.n_nodes,
            destinations=dsts,
            uncontended_rmws=int(winners.size),
            contended_rmws=1 if winners.size else 0,
            more_work=remaining > 0,
        )


class MISWorklist(_MISBase):
    """Worklist priority MIS (fastest variant)."""

    name = "mis-wl"
    variant = "worklist"
    fastest_variant = True
    description = "Priority MIS iterating only still-undecided nodes"

    def _build_program(self):
        return fixpoint_program(
            self.name,
            [relax_kernel("mis_wl_step", "status", AtomicOp.MIN)],
            convergence="worklist-empty",
            description=self.description,
        )

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel != "mis_wl_step":
            raise self._unknown_kernel(kernel)
        und: CSRGraph = state["und"]
        status = state["status"]
        wl: Worklist = state["worklist"]
        frontier = wl.items()
        srcs, dsts, _ = expand_frontier(und, frontier)
        winners = _mis_round(und, status, state["priority"], frontier)
        still = frontier[status[frontier] == _UNDECIDED]
        wl.push(still)
        pushes = wl.swap()
        return frontier_step_result(
            und,
            frontier,
            destinations=dsts,
            pushes=pushes,
            uncontended_rmws=int(winners.size),
            more_work=not wl.is_empty,
        )
