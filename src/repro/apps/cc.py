"""Connected components: label propagation, two strategies (Table VII).

Both variants propagate minimum labels over the undirected view of the
input until a fixed point:

* ``cc-topo`` — topology-driven: every iteration relaxes all edges;
* ``cc-wl``   — data-driven: only nodes whose label changed relax
  their neighbourhood (the fastest variant).

Validated against SciPy's connected-components oracle.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl.builder import fixpoint_program, relax_kernel, topology_kernel
from ..graphs.csr import CSRGraph
from ..ocl.memory import AtomicOp
from ..runtime.stats import StepResult, frontier_step_result
from ..runtime.worklist import Worklist
from .base import Application, expand_frontier

__all__ = ["CCTopo", "CCWorklist"]


def _canonical_labels(labels: np.ndarray) -> np.ndarray:
    """Relabel components to the minimum member id (order-independent)."""
    _, inverse = np.unique(labels, return_inverse=True)
    mins = np.full(inverse.max() + 1, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(mins, inverse, np.arange(labels.size, dtype=np.int64))
    return mins[inverse]


class _CCBase(Application):
    problem = "CC"

    def init_state(self, graph: CSRGraph, source: int) -> Dict:
        und = graph.symmetrized()
        labels = np.arange(graph.n_nodes, dtype=np.int64)
        return {
            "und": und,
            "labels": labels,
            "worklist": Worklist(np.arange(graph.n_nodes, dtype=np.int64)),
        }

    def extract_result(self, state: Dict, graph: CSRGraph) -> np.ndarray:
        return _canonical_labels(state["labels"])

    def reference(self, graph: CSRGraph, source: int) -> np.ndarray:
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import connected_components

        und = graph.symmetrized()
        mat = csr_matrix(
            (
                np.ones(und.n_edges, dtype=np.int8),
                und.col_idx,
                und.row_ptr,
            ),
            shape=(und.n_nodes, und.n_nodes),
        )
        _, labels = connected_components(mat, directed=False)
        return _canonical_labels(labels.astype(np.int64))


class CCTopo(_CCBase):
    """Topology-driven label propagation."""

    name = "cc-topo"
    variant = "topology-driven"
    description = "Min-label propagation relaxing every edge per iteration"

    def _build_program(self):
        return fixpoint_program(
            self.name,
            [
                topology_kernel(
                    "cc_topo_step",
                    read_field="label",
                    write_field="label",
                    atomic=AtomicOp.MIN,
                )
            ],
            convergence="flag",
            description=self.description,
        )

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel != "cc_topo_step":
            raise self._unknown_kernel(kernel)
        und: CSRGraph = state["und"]
        labels = state["labels"]
        srcs = und.edge_sources()
        dsts = und.col_idx
        before = labels.copy()
        np.minimum.at(labels, dsts, before[srcs])
        improved = int(np.count_nonzero(labels != before))
        all_nodes = np.arange(und.n_nodes, dtype=np.int64)
        return frontier_step_result(
            und,
            all_nodes,
            active_items=und.n_nodes,
            destinations=dsts,
            uncontended_rmws=improved,
            contended_rmws=1 if improved else 0,
            more_work=bool(improved),
        )


class CCWorklist(_CCBase):
    """Data-driven label propagation (fastest variant)."""

    name = "cc-wl"
    variant = "worklist"
    fastest_variant = True
    description = "Min-label propagation relaxing only changed nodes"

    def _build_program(self):
        return fixpoint_program(
            self.name,
            [relax_kernel("cc_wl_step", "label", AtomicOp.MIN)],
            convergence="worklist-empty",
            description=self.description,
        )

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel != "cc_wl_step":
            raise self._unknown_kernel(kernel)
        und: CSRGraph = state["und"]
        labels = state["labels"]
        wl: Worklist = state["worklist"]
        frontier = wl.items()
        srcs, dsts, _ = expand_frontier(und, frontier)
        before = labels.copy()
        np.minimum.at(labels, dsts, before[srcs])
        improved_nodes = np.unique(dsts[labels[dsts] != before[dsts]])
        attempts = int(np.count_nonzero(before[srcs] < before[dsts]))
        wl.push(improved_nodes)
        pushes = wl.swap()
        return frontier_step_result(
            und,
            frontier,
            destinations=dsts,
            pushes=pushes,
            uncontended_rmws=attempts,
            more_work=not wl.is_empty,
        )
