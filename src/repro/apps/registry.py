"""The study's application suite (paper Table VII).

The IrGL distribution contains 19 applications; the paper uses 17,
dropping DMR and the priority-worklist SSSP (their support libraries
are CUDA-only).  The supplied copy of Table VII is partially garbled,
so the concrete variant list is reconstructed from the paper's
Section VI-B prose: 7 problems — BFS, CC, MIS, MST, PR, SSSP, TRI —
each with the implementation strategies common to the IrGL suite, and
one variant per problem marked (*) as the fastest algorithm.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ReproError
from .base import Application
from .bfs import BFSHybrid, BFSTopo, BFSWorklist, BFSWorklistCautious
from .cc import CCTopo, CCWorklist
from .mis import MISTopo, MISWorklist
from .mst import MSTBoruvka
from .pr import PRPush, PRTopo
from .sssp import SSSPNearFar, SSSPTopo, SSSPWorklist
from .tri import TriEdgeIterator, TriHybrid, TriNodeIterator

__all__ = [
    "APPLICATION_CLASSES",
    "APP_NAMES",
    "PROBLEMS",
    "all_applications",
    "get_application",
    "applications_by_problem",
    "table7_rows",
]

APPLICATION_CLASSES: Tuple[type, ...] = (
    BFSTopo,
    BFSWorklist,
    BFSWorklistCautious,
    BFSHybrid,
    CCTopo,
    CCWorklist,
    MISTopo,
    MISWorklist,
    MSTBoruvka,
    PRTopo,
    PRPush,
    SSSPTopo,
    SSSPWorklist,
    SSSPNearFar,
    TriNodeIterator,
    TriEdgeIterator,
    TriHybrid,
)

APP_NAMES: Tuple[str, ...] = tuple(cls.name for cls in APPLICATION_CLASSES)

PROBLEMS: Tuple[str, ...] = ("BFS", "CC", "MIS", "MST", "PR", "SSSP", "TRI")


def all_applications() -> List[Application]:
    """Fresh instances of all 17 study applications, Table VII order."""
    return [cls() for cls in APPLICATION_CLASSES]


def get_application(name: str) -> Application:
    """Instantiate one study application by name."""
    for cls in APPLICATION_CLASSES:
        if cls.name == name:
            return cls()
    raise ReproError(
        f"unknown application {name!r}; known: {', '.join(APP_NAMES)}"
    )


def applications_by_problem(problem: str) -> List[Application]:
    """All variants of one high-level problem."""
    found = [cls() for cls in APPLICATION_CLASSES if cls.problem == problem]
    if not found:
        raise ReproError(
            f"unknown problem {problem!r}; known: {', '.join(PROBLEMS)}"
        )
    return found


def table7_rows() -> List[Dict[str, str]]:
    """Rows of the Table VII reproduction."""
    rows = []
    for cls in APPLICATION_CLASSES:
        rows.append(
            {
                "problem": cls.problem,
                "application": cls.name,
                "variant": cls.variant + (" (*)" if cls.fastest_variant else ""),
                "description": cls.description,
            }
        )
    return rows
