"""Triangle counting: three strategies (Table VII).

All variants count triangles of the undirected simple view of the
input via intersection of adjacency lists; they differ in how the
intersection work is distributed — the classic regularity trade-off:

* ``tri-nodeiter`` — node-iterator: each node intersects its
  neighbourhood pairs (irregular inner loop, hub-dominated on
  power-law inputs);
* ``tri-edgeiter`` — edge-iterator: one work item per edge (balanced,
  but more total traffic);
* ``tri-hybrid``   — node-iterator for light nodes, edge-iterator for
  hub edges (fastest variant).

Unlike the rest of the suite these programs are single-sweep (no
fixpoint), so iteration outlining has nothing to outline — useful
variety for the specialisation analysis.  The triangle total is
computed on a degree-ordered orientation (each triangle counted
exactly once) and validated against a direct set-intersection oracle.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl.ast import IterationSpace, Kernel, Load, NeighborLoop, Program
from ..dsl.builder import edge_kernel, phased_program
from ..graphs.csr import CSRGraph
from ..ocl.memory import AccessPattern, AtomicOp
from ..runtime.stats import StepResult, access_irregularity, degree_histogram
from .base import Application

__all__ = ["TriNodeIterator", "TriEdgeIterator", "TriHybrid", "triangle_count_oracle"]


def triangle_count_oracle(graph: CSRGraph) -> int:
    """Direct set-intersection triangle count (test oracle).

    O(m · d) with Python sets — intended for the small graphs used in
    tests, not the study inputs.
    """
    und = graph.symmetrized()
    adj = {v: set(map(int, und.neighbors(v))) for v in range(und.n_nodes)}
    total = 0
    for u in range(und.n_nodes):
        for v in adj[u]:
            if u < v:
                total += len(adj[u] & adj[v])
    return total // 3


def _oriented_count(und: CSRGraph) -> int:
    """Triangle count via degree-ordered orientation and sparse matmul."""
    from scipy.sparse import csr_matrix

    deg = und.out_degrees()
    # Total order: by degree, ties by id; orient edges upward.
    rank = np.lexsort((np.arange(und.n_nodes), deg))
    rank_pos = np.empty(und.n_nodes, dtype=np.int64)
    rank_pos[rank] = np.arange(und.n_nodes)
    srcs = und.edge_sources()
    dsts = und.col_idx
    keep = rank_pos[srcs] < rank_pos[dsts]
    d = csr_matrix(
        (np.ones(int(keep.sum()), dtype=np.int64), (srcs[keep], dsts[keep])),
        shape=(und.n_nodes, und.n_nodes),
    )
    return int((d @ d).multiply(d).sum())


class _TriBase(Application):
    problem = "TRI"

    def init_state(self, graph: CSRGraph, source: int) -> Dict:
        und = graph.symmetrized()
        return {"und": und, "count": 0}

    def extract_result(self, state: Dict, graph: CSRGraph) -> np.ndarray:
        return np.array([state["count"]], dtype=np.float64)

    def reference(self, graph: CSRGraph, source: int) -> np.ndarray:
        return np.array([triangle_count_oracle(graph)], dtype=np.float64)

    @staticmethod
    def _merge_work(und: CSRGraph, nodes: np.ndarray) -> int:
        """Total list-merge cost of node-iterating ``nodes``."""
        deg = und.out_degrees()
        starts = und.row_ptr[nodes]
        counts = deg[nodes]
        # Each edge (u, v) costs deg(u) + deg(v) comparisons to merge.
        from ..util import expand_segments

        idx = expand_segments(starts, counts)
        dsts = und.col_idx[idx]
        srcs = np.repeat(nodes, counts)
        return int((deg[srcs] + deg[dsts]).sum())


class TriNodeIterator(_TriBase):
    """Node-iterator triangle counting."""

    name = "tri-nodeiter"
    variant = "node-iterator"
    description = "Each node merges adjacency lists with all its neighbours"

    def _build_program(self) -> Program:
        kernel = Kernel(
            "tri_node_step",
            IterationSpace.ALL_NODES,
            ops=[
                Load("adj", AccessPattern.COALESCED),
                NeighborLoop([Load("adj", AccessPattern.IRREGULAR)]),
            ],
        )
        return phased_program(self.name, [kernel], description=self.description)

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel != "tri_node_step":
            raise self._unknown_kernel(kernel)
        und: CSRGraph = state["und"]
        state["count"] = _oriented_count(und)
        nodes = np.arange(und.n_nodes, dtype=np.int64)
        return StepResult(
            active_items=und.n_nodes,
            expanded_items=und.n_nodes,
            edges=self._merge_work(und, nodes),
            deg_hist=degree_histogram(und.out_degrees() ** 2),
            irregularity=access_irregularity(und.col_idx),
        )


class TriEdgeIterator(_TriBase):
    """Edge-iterator triangle counting."""

    name = "tri-edgeiter"
    variant = "edge-iterator"
    description = "One work item per edge; merges its endpoints' lists"

    def _build_program(self) -> Program:
        kernel = edge_kernel(
            "tri_edge_step",
            read_fields=["adj_u", "adj_v"],
            write_field="count",
            atomic=AtomicOp.ADD,
        )
        return phased_program(self.name, [kernel], description=self.description)

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel != "tri_edge_step":
            raise self._unknown_kernel(kernel)
        und: CSRGraph = state["und"]
        state["count"] = _oriented_count(und)
        nodes = np.arange(und.n_nodes, dtype=np.int64)
        return StepResult(
            active_items=und.n_edges // 2,
            expanded_items=und.n_edges // 2,
            edges=self._merge_work(und, nodes),
            uncontended_rmws=und.n_edges // 2,
            irregularity=access_irregularity(und.col_idx),
        )


class TriHybrid(_TriBase):
    """Hybrid node/edge-iterator triangle counting (fastest variant)."""

    name = "tri-hybrid"
    variant = "hybrid"
    fastest_variant = True
    description = (
        "Node-iterator for light nodes; hub edges handled edge-centric"
    )

    def _build_program(self) -> Program:
        node_kernel = Kernel(
            "tri_light_step",
            IterationSpace.ALL_NODES,
            ops=[
                Load("adj", AccessPattern.COALESCED),
                NeighborLoop([Load("adj", AccessPattern.IRREGULAR)]),
            ],
        )
        hub_kernel = edge_kernel(
            "tri_hub_step",
            read_fields=["adj_u", "adj_v"],
            write_field="count",
            atomic=AtomicOp.ADD,
        )
        return phased_program(
            self.name, [node_kernel, hub_kernel], description=self.description
        )

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        und: CSRGraph = state["und"]
        deg = und.out_degrees()
        threshold = max(8.0, float(np.sqrt(max(1, und.n_edges))))
        if kernel == "tri_light_step":
            state["count"] = _oriented_count(und)
            light = np.flatnonzero(deg <= threshold).astype(np.int64)
            return StepResult(
                active_items=und.n_nodes,
                expanded_items=int(light.size),
                edges=self._merge_work(und, light),
                deg_hist=degree_histogram(deg[light] ** 2),
                irregularity=access_irregularity(und.col_idx),
            )
        if kernel == "tri_hub_step":
            heavy = np.flatnonzero(deg > threshold).astype(np.int64)
            hub_edges = int(deg[heavy].sum())
            return StepResult(
                active_items=hub_edges,
                expanded_items=hub_edges,
                edges=self._merge_work(und, heavy),
                uncontended_rmws=hub_edges,
                irregularity=access_irregularity(und.col_idx),
            )
        raise self._unknown_kernel(kernel)
