"""The 17 study applications over 7 graph problems (paper Table VII)."""

from .base import Application, expand_frontier
from .bfs import BFSHybrid, BFSTopo, BFSWorklist, BFSWorklistCautious
from .cc import CCTopo, CCWorklist
from .mis import MISTopo, MISWorklist, mis_priorities
from .mst import MSTBoruvka, kruskal_weight
from .pr import PRPush, PRTopo, pagerank_reference
from .registry import (
    APP_NAMES,
    APPLICATION_CLASSES,
    PROBLEMS,
    all_applications,
    applications_by_problem,
    get_application,
    table7_rows,
)
from .sssp import SSSPNearFar, SSSPTopo, SSSPWorklist, dijkstra_reference
from .tri import TriEdgeIterator, TriHybrid, TriNodeIterator, triangle_count_oracle

__all__ = [
    "Application",
    "expand_frontier",
    "BFSTopo",
    "BFSWorklist",
    "BFSWorklistCautious",
    "BFSHybrid",
    "CCTopo",
    "CCWorklist",
    "MISTopo",
    "MISWorklist",
    "mis_priorities",
    "MSTBoruvka",
    "kruskal_weight",
    "PRTopo",
    "PRPush",
    "pagerank_reference",
    "SSSPTopo",
    "SSSPWorklist",
    "SSSPNearFar",
    "dijkstra_reference",
    "TriNodeIterator",
    "TriEdgeIterator",
    "TriHybrid",
    "triangle_count_oracle",
    "APP_NAMES",
    "APPLICATION_CLASSES",
    "PROBLEMS",
    "all_applications",
    "applications_by_problem",
    "get_application",
    "table7_rows",
]
