"""Minimum spanning tree/forest: Borůvka's algorithm (Table VII).

Classic GPU Borůvka over the undirected weighted view of the input:
each round, every component selects its cheapest outgoing edge
(edge-centric atomic-min kernel), components are grafted along the
selected edges, and labels are flattened by pointer jumping.  Ties are
broken by canonical edge id, making effective weights distinct — the
standard trick that guarantees Borůvka forms no cycles.

Validated by total forest weight against a sequential Kruskal oracle
(the minimum weight is unique even when the MST itself is not).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl.ast import IterationSpace, Kernel, Load, Store
from ..dsl.builder import edge_kernel, phased_program
from ..graphs.csr import CSRGraph
from ..ocl.memory import AccessPattern, AtomicOp
from ..runtime.stats import StepResult, access_irregularity
from .base import Application

__all__ = ["MSTBoruvka", "kruskal_weight"]


def kruskal_weight(und: CSRGraph) -> float:
    """Sequential Kruskal union-find oracle: total forest weight."""
    srcs = und.edge_sources()
    dsts = und.col_idx
    weights = und.weights
    keep = srcs < dsts  # one direction per undirected edge
    srcs, dsts, weights = srcs[keep], dsts[keep], weights[keep]
    order = np.argsort(weights, kind="stable")

    parent = np.arange(und.n_nodes, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    total = 0.0
    for e in order:
        ru, rv = find(int(srcs[e])), find(int(dsts[e]))
        if ru != rv:
            parent[ru] = rv
            total += float(weights[e])
    return total


class MSTBoruvka(Application):
    """Borůvka MST with edge-centric minimum-edge selection."""

    name = "mst-boruvka"
    problem = "MST"
    variant = "boruvka"
    fastest_variant = True
    requires_weights = True
    description = "Borůvka rounds: min-edge per component, graft, compress"

    def _build_program(self):
        find_min = edge_kernel(
            "mst_find_min",
            read_fields=["component", "weight"],
            write_field="min_edge",
            atomic=AtomicOp.MIN,
        )
        union = Kernel(
            "mst_union",
            IterationSpace.ALL_NODES,
            ops=[
                Load("min_edge", AccessPattern.COALESCED),
                Store("parent", AccessPattern.IRREGULAR),
            ],
        )
        compress = Kernel(
            "mst_compress",
            IterationSpace.ALL_NODES,
            ops=[
                Load("parent", AccessPattern.IRREGULAR),
                Store("component", AccessPattern.COALESCED),
            ],
        )
        return phased_program(
            self.name,
            [([find_min, union, compress], "flag")],
            description=self.description,
        )

    def init_state(self, graph: CSRGraph, source: int) -> Dict:
        und = graph.symmetrized()
        srcs = und.edge_sources()
        dsts = und.col_idx
        canon = np.minimum(srcs, dsts) * und.n_nodes + np.maximum(srcs, dsts)
        return {
            "und": und,
            "srcs": srcs,
            "dsts": dsts,
            "canon": canon,
            "component": np.arange(und.n_nodes, dtype=np.int64),
            "chosen": None,  # per-round selected edge index per component
            "mst_weight": 0.0,
            "round_active_edges": int(und.n_edges),
        }

    # -- kernel steps -------------------------------------------------------

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel == "mst_find_min":
            return self._find_min(state)
        if kernel == "mst_union":
            return self._union(state)
        if kernel == "mst_compress":
            return self._compress(state)
        raise self._unknown_kernel(kernel)

    def _find_min(self, state: Dict) -> StepResult:
        und: CSRGraph = state["und"]
        comp = state["component"]
        comp_s = comp[state["srcs"]]
        comp_d = comp[state["dsts"]]
        external = np.flatnonzero(comp_s != comp_d)
        state["round_active_edges"] = int(external.size)
        if external.size == 0:
            state["chosen"] = np.empty(0, dtype=np.int64)
            return StepResult(active_items=und.n_edges, edges=und.n_edges)
        # Tie-break by canonical edge id so effective weights are unique.
        order = np.lexsort(
            (state["canon"][external], und.weights[external], comp_s[external])
        )
        ordered = external[order]
        first = np.ones(ordered.size, dtype=bool)
        first[1:] = comp_s[ordered[1:]] != comp_s[ordered[:-1]]
        state["chosen"] = ordered[first]
        return StepResult(
            active_items=und.n_edges,
            expanded_items=und.n_edges,
            edges=und.n_edges,
            uncontended_rmws=int(external.size),
            irregularity=access_irregularity(comp[state["dsts"]]),
            more_work=True,
        )

    def _union(self, state: Dict) -> StepResult:
        und: CSRGraph = state["und"]
        comp = state["component"]
        chosen = state["chosen"]
        n_comps = int(np.unique(comp).size)
        if chosen is None or chosen.size == 0:
            return StepResult(active_items=n_comps, more_work=False)
        comp_s = comp[state["srcs"][chosen]]
        comp_d = comp[state["dsts"][chosen]]
        parent = np.arange(und.n_nodes, dtype=np.int64)
        parent[comp_s] = comp_d
        # Break mutual-graft 2-cycles: keep the smaller label as root.
        two_cycle = parent[parent[comp_s]] == comp_s
        roots = comp_s[two_cycle & (comp_s < parent[comp_s])]
        parent[roots] = roots
        state["parent"] = parent
        # Accumulate each selected undirected edge once.
        uniq = np.unique(state["canon"][chosen])
        canon_sorted = np.sort(state["canon"][chosen])
        keep_first = np.ones(canon_sorted.size, dtype=bool)
        keep_first[1:] = canon_sorted[1:] != canon_sorted[:-1]
        chosen_sorted = chosen[np.argsort(state["canon"][chosen], kind="stable")]
        state["mst_weight"] += float(und.weights[chosen_sorted[keep_first]].sum())
        return StepResult(
            active_items=n_comps,
            uncontended_rmws=int(chosen.size),
            more_work=True,
        )

    def _compress(self, state: Dict) -> StepResult:
        und: CSRGraph = state["und"]
        comp = state["component"]
        parent = state.get("parent")
        if parent is None:
            return StepResult(active_items=und.n_nodes, more_work=False)
        # Pointer jumping to a fixed point.
        hops = 0
        while True:
            nxt = parent[parent]
            hops += 1
            if np.array_equal(nxt, parent):
                break
            parent = nxt
        state["component"] = parent[comp]
        state["parent"] = None
        more = state["round_active_edges"] > 0
        return StepResult(
            active_items=und.n_nodes,
            edges=und.n_nodes * hops,
            irregularity=access_irregularity(parent[comp]),
            more_work=more,
        )

    # -- results -----------------------------------------------------------

    def extract_result(self, state: Dict, graph: CSRGraph) -> np.ndarray:
        return np.array([state["mst_weight"]], dtype=np.float64)

    def reference(self, graph: CSRGraph, source: int) -> np.ndarray:
        return np.array([kruskal_weight(graph.symmetrized())], dtype=np.float64)

    def results_match(self, computed: np.ndarray, expected: np.ndarray) -> bool:
        return bool(np.allclose(computed, expected, rtol=1e-9))
