"""Single-source shortest paths: three strategies (Table VII).

* ``sssp-topo`` — topology-driven Bellman-Ford: relax every edge per
  iteration until no distance improves;
* ``sssp-wl``   — worklist Bellman-Ford: relax only out-edges of nodes
  whose distance improved;
* ``sssp-nf``   — near-far work scheduling (fastest variant): improved
  nodes below the current distance threshold are processed immediately
  (*near*), the rest deferred (*far*) until the near pile drains —
  delta-stepping's bucketing specialised to two piles.

The paper's extreme speedups/slowdowns all occur on the road input
(``usa.ny``) where SSSP iteration counts are enormous; these variants
are the main beneficiaries of ``oitergb``.  Validated against SciPy's
Dijkstra oracle.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl.builder import fixpoint_program, relax_kernel, topology_kernel
from ..graphs.csr import CSRGraph
from ..ocl.memory import AtomicOp
from ..runtime.stats import StepResult, frontier_step_result
from ..runtime.worklist import Worklist
from .base import Application, expand_frontier

__all__ = ["SSSPTopo", "SSSPWorklist", "SSSPNearFar", "dijkstra_reference"]


def dijkstra_reference(graph: CSRGraph, source: int) -> np.ndarray:
    """SciPy Dijkstra oracle; unreachable nodes get ``inf``."""
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra

    mat = csr_matrix(
        (graph.weights, graph.col_idx, graph.row_ptr),
        shape=(graph.n_nodes, graph.n_nodes),
    )
    return dijkstra(mat, directed=True, indices=source)


class _SSSPBase(Application):
    problem = "SSSP"
    requires_weights = True

    def init_state(self, graph: CSRGraph, source: int) -> Dict:
        dist = np.full(graph.n_nodes, np.inf)
        dist[source] = 0.0
        return {
            "dist": dist,
            "worklist": Worklist([source]),
            "threshold": 0.0,
            "far": np.empty(0, dtype=np.int64),
        }

    def extract_result(self, state: Dict, graph: CSRGraph) -> np.ndarray:
        return state["dist"]

    def reference(self, graph: CSRGraph, source: int) -> np.ndarray:
        return dijkstra_reference(graph, source)

    def _relax(self, graph: CSRGraph, state: Dict, frontier: np.ndarray):
        """Relax all out-edges of ``frontier``; returns (dsts, improved)."""
        dist = state["dist"]
        srcs, dsts, wts = expand_frontier(graph, frontier, with_weights=True)
        cand = dist[srcs] + wts
        before = dist.copy()
        np.minimum.at(dist, dsts, cand)
        improved = np.unique(dsts[dist[dsts] < before[dsts]])
        attempts = int(np.count_nonzero(cand < before[dsts]))
        return dsts, improved, attempts


class SSSPTopo(_SSSPBase):
    """Topology-driven Bellman-Ford."""

    name = "sssp-topo"
    variant = "topology-driven"
    description = "Bellman-Ford relaxing every settled node per iteration"

    def _build_program(self):
        return fixpoint_program(
            self.name,
            [
                topology_kernel(
                    "sssp_topo_step",
                    read_field="dist",
                    write_field="dist",
                    atomic=AtomicOp.MIN,
                )
            ],
            convergence="flag",
            description=self.description,
        )

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel != "sssp_topo_step":
            raise self._unknown_kernel(kernel)
        reached = np.flatnonzero(np.isfinite(state["dist"])).astype(np.int64)
        dsts, improved, attempts = self._relax(graph, state, reached)
        return frontier_step_result(
            graph,
            reached,
            active_items=graph.n_nodes,
            destinations=dsts,
            uncontended_rmws=attempts,
            contended_rmws=1 if improved.size else 0,
            more_work=bool(improved.size),
        )


class SSSPWorklist(_SSSPBase):
    """Worklist Bellman-Ford."""

    name = "sssp-wl"
    variant = "worklist"
    description = "Bellman-Ford relaxing only improved nodes"

    def _build_program(self):
        return fixpoint_program(
            self.name,
            [relax_kernel("sssp_wl_step", "dist", AtomicOp.MIN, read_weights=True)],
            convergence="worklist-empty",
            description=self.description,
        )

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel != "sssp_wl_step":
            raise self._unknown_kernel(kernel)
        wl: Worklist = state["worklist"]
        frontier = wl.items()
        dsts, improved, attempts = self._relax(graph, state, frontier)
        wl.push(improved)
        pushes = wl.swap()
        return frontier_step_result(
            graph,
            frontier,
            destinations=dsts,
            pushes=pushes,
            uncontended_rmws=attempts,
            more_work=not wl.is_empty,
        )


class SSSPNearFar(_SSSPBase):
    """Near-far work scheduling (fastest variant)."""

    name = "sssp-nf"
    variant = "near-far"
    fastest_variant = True
    description = (
        "Two-pile delta-stepping: near nodes relaxed eagerly, far "
        "nodes deferred until the near pile drains"
    )

    def _build_program(self):
        return fixpoint_program(
            self.name,
            [relax_kernel("sssp_nf_step", "dist", AtomicOp.MIN, read_weights=True)],
            convergence="worklist-empty",
            description=self.description,
        )

    def _delta(self, graph: CSRGraph) -> float:
        return float(graph.weights.mean())

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel != "sssp_nf_step":
            raise self._unknown_kernel(kernel)
        wl: Worklist = state["worklist"]
        dist = state["dist"]
        if state["threshold"] == 0.0:
            state["threshold"] = self._delta(graph)
        frontier = wl.items()

        dsts, improved, attempts = self._relax(graph, state, frontier)
        near = improved[dist[improved] < state["threshold"]]
        far = improved[dist[improved] >= state["threshold"]]
        state["far"] = np.unique(np.concatenate([state["far"], far]))
        # A deferred node that has since improved into the near band is
        # promoted now rather than kept stale in the far pile.
        state["far"] = np.setdiff1d(state["far"], near, assume_unique=True)
        if near.size == 0:
            # Near pile drained: advance the threshold and promote.
            while state["far"].size and near.size == 0:
                state["threshold"] += self._delta(graph)
                fdist = dist[state["far"]]
                near = state["far"][fdist < state["threshold"]]
                state["far"] = state["far"][fdist >= state["threshold"]]
        wl.push(near)
        pushes = wl.swap()
        return frontier_step_result(
            graph,
            frontier,
            destinations=dsts,
            pushes=pushes,
            uncontended_rmws=attempts,
            more_work=not wl.is_empty or bool(state["far"].size),
        )
