"""PageRank: pull- and push-based variants (Table VII).

* ``pr-topo`` — topology-driven pull: every iteration gathers rank
  contributions over all edges until the update norm falls below
  tolerance;
* ``pr-wl``   — residual push (fastest variant): only nodes whose
  accumulated residual exceeds a threshold push it onward.

Both use damping 0.85.  Dangling-node mass is dropped (the usual GPU
convention — both variants and the oracle use the same convention, so
results agree to the push threshold's precision).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl.builder import fixpoint_program, relax_kernel, topology_kernel
from ..graphs.csr import CSRGraph
from ..ocl.memory import AtomicOp
from ..runtime.stats import StepResult, frontier_step_result
from ..runtime.worklist import Worklist
from .base import Application, expand_frontier

__all__ = ["PRTopo", "PRPush", "pagerank_reference"]

DAMPING = 0.85
PULL_TOLERANCE = 1e-9
PUSH_EPSILON = 1e-11


def pagerank_reference(
    graph: CSRGraph, damping: float = DAMPING, tolerance: float = PULL_TOLERANCE
) -> np.ndarray:
    """Power iteration oracle (dangling mass dropped)."""
    n = graph.n_nodes
    deg = graph.out_degrees().astype(np.float64)
    srcs = graph.edge_sources()
    rank = np.full(n, 1.0 / n)
    base = (1.0 - damping) / n
    inv_deg = np.where(deg > 0, 1.0 / np.maximum(deg, 1), 0.0)
    for _ in range(10_000):
        contrib = rank * inv_deg
        incoming = np.bincount(graph.col_idx, weights=contrib[srcs], minlength=n)
        new_rank = base + damping * incoming
        delta = float(np.abs(new_rank - rank).max())
        rank = new_rank
        if delta < tolerance:
            break
    return rank


class _PRBase(Application):
    problem = "PR"

    def reference(self, graph: CSRGraph, source: int) -> np.ndarray:
        return pagerank_reference(graph)

    def results_match(self, computed: np.ndarray, expected: np.ndarray) -> bool:
        return bool(np.allclose(computed, expected, atol=5e-6, rtol=1e-3))


class PRTopo(_PRBase):
    """Pull-based PageRank."""

    name = "pr-topo"
    variant = "pull"
    description = "Pull-based PageRank, full edge sweep per iteration"

    def _build_program(self):
        return fixpoint_program(
            self.name,
            [
                topology_kernel(
                    "pr_pull_step",
                    read_field="rank",
                    write_field="rank",
                    atomic=None,
                )
            ],
            convergence="flag",
            description=self.description,
        )

    def init_state(self, graph: CSRGraph, source: int) -> Dict:
        n = graph.n_nodes
        deg = graph.out_degrees().astype(np.float64)
        return {
            "rank": np.full(n, 1.0 / n),
            "inv_deg": np.where(deg > 0, 1.0 / np.maximum(deg, 1), 0.0),
            "srcs": graph.edge_sources(),
        }

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel != "pr_pull_step":
            raise self._unknown_kernel(kernel)
        n = graph.n_nodes
        rank = state["rank"]
        contrib = rank * state["inv_deg"]
        incoming = np.bincount(
            graph.col_idx, weights=contrib[state["srcs"]], minlength=n
        )
        new_rank = (1.0 - DAMPING) / n + DAMPING * incoming
        delta = float(np.abs(new_rank - rank).max())
        state["rank"] = new_rank
        all_nodes = np.arange(n, dtype=np.int64)
        return frontier_step_result(
            graph,
            all_nodes,
            active_items=n,
            destinations=graph.col_idx,
            contended_rmws=1,
            more_work=delta >= PULL_TOLERANCE,
        )

    def extract_result(self, state: Dict, graph: CSRGraph) -> np.ndarray:
        return state["rank"]


class PRPush(_PRBase):
    """Residual push PageRank (fastest variant)."""

    name = "pr-wl"
    variant = "push-residual"
    fastest_variant = True
    description = "Residual-push PageRank over an active-node worklist"

    def _build_program(self):
        return fixpoint_program(
            self.name,
            [relax_kernel("pr_push_step", "residual", AtomicOp.ADD)],
            convergence="worklist-empty",
            description=self.description,
        )

    def init_state(self, graph: CSRGraph, source: int) -> Dict:
        n = graph.n_nodes
        deg = graph.out_degrees().astype(np.float64)
        return {
            "rank": np.zeros(n),
            "residual": np.full(n, (1.0 - DAMPING) / n),
            "inv_deg": np.where(deg > 0, 1.0 / np.maximum(deg, 1), 0.0),
            "worklist": Worklist(np.arange(n, dtype=np.int64)),
        }

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel != "pr_push_step":
            raise self._unknown_kernel(kernel)
        wl: Worklist = state["worklist"]
        frontier = wl.items()
        residual = state["residual"]
        rank = state["rank"]

        res = residual[frontier].copy()
        rank[frontier] += res
        residual[frontier] = 0.0

        srcs, dsts, _ = expand_frontier(graph, frontier)
        push_amount = DAMPING * res * state["inv_deg"][frontier]
        per_edge = np.repeat(push_amount, graph.out_degrees()[frontier])
        before = residual.copy()
        np.add.at(residual, dsts, per_edge)
        crossed = np.unique(
            dsts[(residual[dsts] > PUSH_EPSILON) & (before[dsts] <= PUSH_EPSILON)]
        )
        wl.push(crossed)
        pushes = wl.swap()
        return frontier_step_result(
            graph,
            frontier,
            destinations=dsts,
            pushes=pushes,
            uncontended_rmws=int(dsts.size),
            more_work=not wl.is_empty,
        )

    def extract_result(self, state: Dict, graph: CSRGraph) -> np.ndarray:
        # Residual below threshold is never applied; fold it in so the
        # result matches the pull oracle to within the push epsilon.
        return state["rank"] + state["residual"]
