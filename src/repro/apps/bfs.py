"""Breadth-first search: four implementation strategies (Table VII).

* ``bfs-topo``   — topology-driven: every iteration scans all nodes and
  expands those on the current level (cheap per iteration bookkeeping,
  wasteful scans on high-diameter inputs);
* ``bfs-wl``     — data-driven worklist with atomic CAS visitation;
* ``bfs-wlc``    — worklist variant exploiting BFS's benign write race:
  plain stores plus a visited-bitmap filter instead of CAS;
* ``bfs-hybrid`` — switches between worklist and topology-driven sweeps
  on frontier density (the fastest variant).

All variants are level-synchronous and produce identical level arrays,
validated against the vectorised CPU BFS oracle.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..dsl.ast import IterationSpace, Kernel, Load, NeighborLoop, Program, Push, Store
from ..dsl.builder import fixpoint_program, relax_kernel, topology_kernel
from ..graphs.csr import CSRGraph
from ..graphs.properties import bfs_levels
from ..ocl.memory import AccessPattern, AtomicOp
from ..runtime.stats import StepResult, frontier_step_result
from ..runtime.worklist import Worklist
from .base import Application, expand_frontier

__all__ = ["BFSTopo", "BFSWorklist", "BFSWorklistCautious", "BFSHybrid"]

_UNREACHED = -1


def _init_kernel(name: str = "bfs_init") -> Kernel:
    return Kernel(
        name,
        IterationSpace.ALL_NODES,
        ops=[Store("level", AccessPattern.COALESCED)],
    )


class _BFSBase(Application):
    """Shared state handling and result extraction for all variants."""

    problem = "BFS"

    def init_state(self, graph: CSRGraph, source: int) -> Dict:
        level = np.full(graph.n_nodes, _UNREACHED, dtype=np.int64)
        level[source] = 0
        return {
            "level": level,
            "current": 0,
            "frontier": np.array([source], dtype=np.int64),
            "worklist": Worklist([source]),
        }

    def extract_result(self, state: Dict, graph: CSRGraph) -> np.ndarray:
        return state["level"]

    def reference(self, graph: CSRGraph, source: int) -> np.ndarray:
        return bfs_levels(graph, source)

    def _init_step(self, state: Dict, graph: CSRGraph) -> StepResult:
        return StepResult(active_items=graph.n_nodes)

    def _expand_level(self, state: Dict, graph: CSRGraph):
        """Expand the current frontier; returns (frontier, dsts, new)."""
        frontier = state["frontier"]
        _, dsts, _ = expand_frontier(graph, frontier)
        level = state["level"]
        candidates = dsts[level[dsts] == _UNREACHED]
        new = np.unique(candidates)
        level[new] = state["current"] + 1
        state["current"] += 1
        state["frontier"] = new
        return frontier, dsts, candidates, new


class BFSTopo(_BFSBase):
    """Topology-driven BFS."""

    name = "bfs-topo"
    variant = "topology-driven"
    description = "Level-synchronous BFS scanning all nodes per iteration"

    def _build_program(self) -> Program:
        return fixpoint_program(
            self.name,
            [
                topology_kernel(
                    "bfs_topo_step",
                    read_field="level",
                    write_field="level",
                    atomic=AtomicOp.MIN,
                )
            ],
            convergence="flag",
            init_kernel=_init_kernel(),
            description=self.description,
        )

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel == "bfs_init":
            return self._init_step(state, graph)
        if kernel != "bfs_topo_step":
            raise self._unknown_kernel(kernel)
        frontier, dsts, candidates, new = self._expand_level(state, graph)
        return frontier_step_result(
            graph,
            frontier,
            active_items=graph.n_nodes,
            destinations=dsts,
            uncontended_rmws=int(candidates.size),
            contended_rmws=1 if new.size else 0,
            more_work=bool(new.size),
        )


class BFSWorklist(_BFSBase):
    """Data-driven BFS with CAS visitation."""

    name = "bfs-wl"
    variant = "worklist"
    description = "Worklist BFS; atomic CAS claims each discovered node"

    def _build_program(self) -> Program:
        return fixpoint_program(
            self.name,
            [relax_kernel("bfs_wl_step", "level", AtomicOp.CAS)],
            convergence="worklist-empty",
            init_kernel=_init_kernel(),
            description=self.description,
        )

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel == "bfs_init":
            return self._init_step(state, graph)
        if kernel != "bfs_wl_step":
            raise self._unknown_kernel(kernel)
        wl: Worklist = state["worklist"]
        frontier = wl.items()
        state["frontier"] = frontier
        frontier_before = frontier
        frontier, dsts, candidates, new = self._expand_level(state, graph)
        wl.push(new)
        pushes = wl.swap()
        return frontier_step_result(
            graph,
            frontier_before,
            destinations=dsts,
            pushes=pushes,
            uncontended_rmws=int(candidates.size),
            more_work=not wl.is_empty,
        )


class BFSWorklistCautious(_BFSBase):
    """Worklist BFS exploiting the benign write race (no CAS)."""

    name = "bfs-wlc"
    variant = "worklist-racy"
    description = (
        "Worklist BFS; plain stores with a visited-bitmap filter "
        "instead of CAS (benign race)"
    )

    def _build_program(self) -> Program:
        kernel = Kernel(
            "bfs_wlc_step",
            IterationSpace.WORKLIST,
            ops=[
                Load("level", AccessPattern.COALESCED),
                NeighborLoop(
                    [
                        Load("visited", AccessPattern.IRREGULAR),
                        Store("level", AccessPattern.IRREGULAR),
                        Push(),
                    ]
                ),
            ],
        )
        return fixpoint_program(
            self.name,
            [kernel],
            convergence="worklist-empty",
            init_kernel=_init_kernel(),
            description=self.description,
        )

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel == "bfs_init":
            return self._init_step(state, graph)
        if kernel != "bfs_wlc_step":
            raise self._unknown_kernel(kernel)
        wl: Worklist = state["worklist"]
        frontier_before = wl.items()
        state["frontier"] = frontier_before
        frontier, dsts, _, new = self._expand_level(state, graph)
        wl.push(new)
        pushes = wl.swap()
        return frontier_step_result(
            graph,
            frontier_before,
            destinations=dsts,
            pushes=pushes,
            uncontended_rmws=0,
            more_work=not wl.is_empty,
        )


class BFSHybrid(_BFSBase):
    """Frontier-density hybrid of worklist and topology-driven sweeps."""

    name = "bfs-hybrid"
    variant = "hybrid"
    fastest_variant = True
    description = (
        "Worklist BFS that falls back to topology-driven sweeps when "
        "the frontier exceeds 5% of the nodes"
    )

    #: Frontier density above which a topology sweep is cheaper.
    DENSE_THRESHOLD = 0.05

    def _build_program(self) -> Program:
        return fixpoint_program(
            self.name,
            [relax_kernel("bfs_hybrid_step", "level", AtomicOp.CAS)],
            convergence="worklist-empty",
            init_kernel=_init_kernel(),
            description=self.description,
        )

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel == "bfs_init":
            return self._init_step(state, graph)
        if kernel != "bfs_hybrid_step":
            raise self._unknown_kernel(kernel)
        wl: Worklist = state["worklist"]
        frontier_before = wl.items()
        state["frontier"] = frontier_before
        dense = frontier_before.size > self.DENSE_THRESHOLD * graph.n_nodes
        frontier, dsts, candidates, new = self._expand_level(state, graph)
        pushes = 0
        if not dense:
            wl.push(new)
            pushes = wl.swap()
        else:
            # Topology sweep: the next frontier is recomputed by
            # scanning levels, not pushed through the worklist.
            wl.push(new)
            wl.swap()
            pushes = 0
        return frontier_step_result(
            graph,
            frontier_before,
            active_items=graph.n_nodes if dense else None,
            destinations=dsts,
            pushes=pushes,
            uncontended_rmws=int(candidates.size),
            more_work=not wl.is_empty,
        )
