"""Application protocol and shared helpers.

An :class:`Application` is one of the study's 17 graph programs: it
owns (1) a DSL :class:`~repro.dsl.ast.Program` describing its kernel
structure — what the compiler optimises and the performance model
prices — and (2) vectorised *step functions*, one per kernel, giving
the kernels' value-level semantics so the functional executor can
compute real results and real workload traces.  Each application also
provides an independent reference implementation used by the test
suite to validate functional execution.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

import numpy as np

from ..dsl.ast import Program
from ..errors import ExecutionError
from ..graphs.csr import CSRGraph
from ..runtime.executor import ExecutionResult, execute
from ..runtime.stats import StepResult
from ..util import expand_segments

__all__ = ["Application", "expand_frontier"]


def expand_frontier(
    graph: CSRGraph, frontier: np.ndarray, with_weights: bool = False
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """All out-edges of a set of nodes: (sources, destinations, weights).

    Vectorised CSR expansion; sources are repeated per their degree so
    the three arrays are parallel.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    starts = graph.row_ptr[frontier]
    counts = graph.row_ptr[frontier + 1] - starts
    idx = expand_segments(starts, counts)
    srcs = np.repeat(frontier, counts)
    dsts = graph.col_idx[idx]
    wts = graph.weights[idx] if with_weights and graph.has_weights else None
    return srcs, dsts, wts


class Application(abc.ABC):
    """Base class for study applications (paper Table VII rows)."""

    #: Short study name, e.g. ``"bfs-wl"``.
    name: str = ""
    #: High-level problem, one of BFS/CC/MIS/MST/PR/SSSP/TRI.
    problem: str = ""
    #: Implementation-strategy label, e.g. ``"worklist"``.
    variant: str = ""
    #: Marks the fastest algorithm per problem (Table VII's ``*``).
    fastest_variant: bool = False
    #: Whether the input graph must carry edge weights.
    requires_weights: bool = False
    description: str = ""

    def __init__(self) -> None:
        self._program: Optional[Program] = None

    # -- protocol ---------------------------------------------------------

    def program(self) -> Program:
        """The application's DSL program (built once, cached)."""
        if self._program is None:
            self._program = self._build_program()
        return self._program

    @abc.abstractmethod
    def _build_program(self) -> Program:
        """Construct the DSL program."""

    @abc.abstractmethod
    def init_state(self, graph: CSRGraph, source: int) -> Dict:
        """Allocate and initialise device state for a run."""

    @abc.abstractmethod
    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        """Execute one launch of ``kernel``, mutating ``state``."""

    @abc.abstractmethod
    def extract_result(self, state: Dict, graph: CSRGraph) -> np.ndarray:
        """The application's output array (levels, distances, ...)."""

    @abc.abstractmethod
    def reference(self, graph: CSRGraph, source: int) -> np.ndarray:
        """Independent CPU oracle for result validation."""

    # -- conveniences -------------------------------------------------------

    def run(self, graph: CSRGraph, source: int = 0) -> ExecutionResult:
        """Execute functionally and return (state, trace)."""
        self._check_input(graph)
        return execute(self, graph, source)

    def validate(self, graph: CSRGraph, source: int = 0) -> bool:
        """Run and compare against the reference oracle.

        Exact comparison by default; applications with approximate
        semantics (PageRank) override :meth:`results_match`.
        """
        result = self.run(graph, source)
        computed = self.extract_result(result.state, graph)
        expected = self.reference(graph, source)
        return self.results_match(computed, expected)

    def results_match(self, computed: np.ndarray, expected: np.ndarray) -> bool:
        computed = np.asarray(computed, dtype=np.float64)
        expected = np.asarray(expected, dtype=np.float64)
        if computed.shape != expected.shape:
            return False
        both_inf = np.isinf(computed) & np.isinf(expected)
        close = np.isclose(computed, expected, rtol=1e-9, atol=1e-9)
        return bool(np.all(both_inf | close))

    def _check_input(self, graph: CSRGraph) -> None:
        if self.requires_weights and not graph.has_weights:
            raise ExecutionError(
                f"application {self.name!r} requires edge weights but "
                f"graph {graph.name!r} is unweighted"
            )

    def _unknown_kernel(self, kernel: str) -> ExecutionError:
        return ExecutionError(
            f"application {self.name!r} has no kernel {kernel!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        star = "*" if self.fastest_variant else ""
        return f"<Application {self.name}{star} ({self.problem}/{self.variant})>"
