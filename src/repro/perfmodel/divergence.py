"""Intra-workgroup memory-divergence model (paper Section VIII-c).

Irregular neighbour gathers touch scattered cache lines; when the
threads of a workgroup drift apart in their loop iterations, the
divergence compounds and effective memory throughput collapses on
sensitive chips.  The paper's ``m-divg`` microbenchmark shows a
*gratuitous* workgroup barrier — semantically unnecessary, but keeping
threads within one iteration of each other — recovers most of the loss,
spectacularly so on MALI (≈ 6.45×).

The model: inner-loop work is inflated by
``1 + sensitivity · irregularity · wg_pressure``, and plans whose inner
loops contain barriers (any nested-parallelism scheme) retain only
``(1 - relief)`` of that penalty.
"""

from __future__ import annotations

from ..chips.model import ChipModel
from ..compiler.plan import KernelPlan

__all__ = ["divergence_factor", "workgroup_pressure"]


def workgroup_pressure(wg_size: int) -> float:
    """How much a workgroup size amplifies divergence exposure.

    Larger workgroups give threads more room to drift apart before the
    implicit reconvergence at the end of a pass; normalised to 1.0 at
    the study's default size of 128.
    """
    return 1.0 + 0.15 * (wg_size / 128.0 - 1.0)


def divergence_factor(
    chip: ChipModel, plan: KernelPlan, irregularity: float
) -> float:
    """Multiplier on inner-loop work due to memory divergence.

    ``irregularity`` is the trace-measured access scatter in [0, 1].
    Inner-loop barriers (from the ``sg``/``wg``/``fg`` schemes) relieve
    a chip-specific fraction of the penalty — the mechanism by which
    ``sg`` speeds up MALI despite its trivial subgroup size.
    """
    if irregularity <= 0.0:
        return 1.0
    penalty = (
        chip.divergence_sensitivity
        * min(1.0, irregularity)
        * workgroup_pressure(plan.wg_size)
    )
    if plan.inserts_inner_barriers:
        penalty *= 1.0 - chip.barrier_divergence_relief
    return 1.0 + penalty
