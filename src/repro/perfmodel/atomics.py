"""Atomic read-modify-write cost model (paper Sections V-A, VIII-b).

Contended RMWs — worklist tail bumps, global flags — serialise at the
memory controller: their cost is count × per-op latency regardless of
how many threads issue them.  Cooperative conversion divides the count
by an achieved *combining factor* (bounded by the subgroup size and by
how many pushes actually co-occur in a subgroup) at the price of
subgroup orchestration.  Some OpenCL JITs (Nvidia, Intel HD5500)
already perform this combining transparently — on those chips the
software transformation gains nothing and only pays its overhead,
which is exactly why the paper's per-chip analysis disables ``coop-cv``
there.
"""

from __future__ import annotations

from ..chips.model import ChipModel
from ..compiler.plan import KernelPlan
from ..runtime.trace import LaunchRecord

__all__ = ["achieved_combine_factor", "atomic_time_us"]

#: Efficiency of software subgroup combining: reduction tree depth and
#: broadcast keep the achieved factor below the subgroup size (the
#: paper observes 22x of a possible 64x on R9, ~8x of 16x on IRIS).
_SW_COMBINE_EFFICIENCY = 0.50

#: Hardware/JIT combining is cheaper but also imperfect.
_JIT_COMBINE_EFFICIENCY = 0.85


def achieved_combine_factor(
    sg_size: int, pushes: int, expanded_items: int, efficiency: float
) -> float:
    """How many contended RMWs collapse into one, on average.

    Combining can only merge pushes that occur in the same subgroup at
    the same time: with ``pushes`` spread over ``expanded_items`` work
    items, a subgroup of ``sg_size`` threads co-issues about
    ``sg_size * pushes / expanded_items`` pushes per round.
    """
    if sg_size <= 1 or pushes == 0:
        return 1.0
    # Wider subgroups need deeper reduction trees and broadcasts, so
    # combining efficiency decays with subgroup size (R9's 64-wide
    # subgroups deliver ~22x of a possible 64x in the paper).
    efficiency = efficiency * (16.0 / sg_size) ** 0.28
    per_sg = sg_size * pushes / max(1, expanded_items)
    return max(1.0, min(sg_size * efficiency, per_sg * efficiency))


def atomic_time_us(
    chip: ChipModel, plan: KernelPlan, record: LaunchRecord
) -> float:
    """Time spent on the launch's atomic operations, in microseconds."""
    atomic_ns = chip.effective_atomic_rmw_ns()
    contended = record.pushes + record.contended_rmws

    # Transparent JIT combining applies with or without coop-cv.
    factor = 1.0
    if chip.jit_coop_cv:
        factor = achieved_combine_factor(
            chip.sg_size, contended, record.expanded_items, _JIT_COMBINE_EFFICIENCY
        )
    orchestration_us = 0.0
    if plan.coop_scope is not None:
        sw_factor = achieved_combine_factor(
            plan.sg_size, contended, record.expanded_items, _SW_COMBINE_EFFICIENCY
        )
        factor = max(factor, sw_factor)
        # Software combining moves every payload through local memory
        # and runs its subgroup barriers; barrier costs are priced with
        # the other barrier events in the kernel cost model, the
        # payload traffic here.  Local memory is CU-private, so the
        # traffic proceeds in parallel across CUs.
        orchestration_us = (
            contended * chip.local_traffic_ns / 1000.0 / max(1, 2 * chip.n_cus)
        )

    contended_us = contended / factor * atomic_ns / 1000.0

    # Uncontended RMWs (per-node distance/label updates) proceed in
    # parallel across memory channels; model them as distributed over
    # the CUs.
    # Atomic channels pipeline independent-address RMWs ~4 deep per CU.
    uncontended_us = (
        record.uncontended_rmws * atomic_ns / 1000.0 / max(1, 4 * chip.n_cus)
    )

    return contended_us + uncontended_us + orchestration_us
