"""Kernel-launch, host-copy and global-barrier overheads (Section V-C).

The host-side cost of a program is what iteration outlining targets:
without ``oitergb`` each kernel launch pays the chip's launch latency,
and each fixpoint iteration additionally pays a device-to-host copy to
check convergence.  With ``oitergb`` the whole fixpoint is one launch
and each iteration instead pays a portable global barrier, whose cost
grows with the number of participating (co-resident) workgroups.
"""

from __future__ import annotations

from ..chips.model import ChipModel
from ..compiler.plan import ExecutablePlan
from ..runtime.trace import Trace

__all__ = ["global_barrier_us", "host_overhead_us"]

#: Program setup/teardown copies (graph upload amortised out; result
#: download and final flag read remain).
_FIXED_COPIES = 2


def global_barrier_us(chip: ChipModel, n_workgroups: int) -> float:
    """One execution of the portable global barrier.

    Master/slave signalling through global memory: a base latency plus
    a per-workgroup term for the gather/release round-trips.
    """
    return chip.global_barrier_base_us + n_workgroups * chip.global_barrier_per_wg_ns / 1000.0


def host_overhead_us(plan: ExecutablePlan, trace: Trace) -> float:
    """Total launch/copy/global-barrier cost of a traced execution."""
    chip = plan.chip
    outside = sum(1 for r in trace.launches if not r.in_fixpoint)
    inside = sum(1 for r in trace.launches if r.in_fixpoint)
    iterations = trace.n_fixpoint_iterations

    total = _FIXED_COPIES * chip.copy_overhead_us
    if plan.outlined and inside:
        # One launch enters the outlined loop; every dependent
        # iteration synchronises via the global barrier on the device.
        total += (outside + 1) * chip.launch_overhead_us
        total += iterations * global_barrier_us(chip, plan.outlined_workgroups)
    else:
        total += (outside + inside) * chip.launch_overhead_us
        total += iterations * chip.copy_overhead_us
    return total
