"""Vectorized batch-pricing engine: all launches of a trace at once.

The scalar model (:mod:`.cost`, :mod:`.simulate`) walks one
:class:`~repro.runtime.trace.LaunchRecord` at a time through Python
arithmetic; a study sweep prices every trace under hundreds of (chip,
configuration) plans, so that walk is the dominant cost of the
data-collection phase.  This module prices *all* launch records of a
trace in whole-array NumPy operations over the structure-of-arrays
:class:`~repro.runtime.trace.TraceArrays` view (built once per trace,
cached on it).

Bit-identical by construction: every expression below mirrors the
scalar model's operation order (floating-point addition is not
associative, so the order matters), accumulations over degree buckets
run in the same bucket order, and reductions over the bucket axis see
exactly the scalar operand lengths because launches are grouped by
(kernel, histogram width) and never padded.  The total of a trace is
accumulated launch-by-launch in trace order, exactly like
:func:`~repro.perfmodel.simulate.estimate_runtime_us`.  The scalar
path remains the reference oracle; the golden equivalence tests
(``tests/test_perfmodel_batch.py``) assert exact float equality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..chips.model import ChipModel
from ..compiler.plan import ExecutablePlan, KernelPlan
from ..errors import ExecutionError
from ..runtime.trace import Trace, TraceArrays, TraceGroup
from .atomics import _JIT_COMBINE_EFFICIENCY, _SW_COMBINE_EFFICIENCY
from .cost import (
    _BARRIER_SIZE_EXP,
    _FG_EDGE_FACTOR,
    _IMBALANCE_CAP,
    _IMBALANCE_COUPLING,
    _KERNEL_FIXED_US,
    _NP_INSPECTOR_UNITS_PER_ITEM,
    _NP_INSPECTOR_UNITS_PER_SCAN,
    _SCAN_UNITS_PER_ITEM,
    _SG_EDGE_FACTOR,
    _WG_EDGE_FACTOR,
)
from .divergence import workgroup_pressure
from .imbalance import bucket_degree
from .launch import _FIXED_COPIES, global_barrier_us
from .noise import measurement_seeds, noise_from_seed

__all__ = [
    "BatchLaunchCosts",
    "estimate_runtime_us_batch",
    "measure_repeats_us_batch",
    "price_trace_batch",
]


@dataclass(frozen=True)
class BatchLaunchCosts:
    """Cost breakdown of every launch of a trace (microseconds).

    Arrays are aligned with ``Trace.launches`` order; ``total_us[i]``
    equals ``launch_cost(plan, kplan, trace.launches[i]).total_us``
    exactly.
    """

    scan_us: np.ndarray
    edge_us: np.ndarray
    barrier_us: np.ndarray
    local_us: np.ndarray
    atomic_us: np.ndarray
    fixed_us: float
    total_us: np.ndarray


def _combine_factor_batch(
    sg_size: int,
    contended: np.ndarray,
    expanded: np.ndarray,
    efficiency: float,
) -> np.ndarray:
    """Vector form of :func:`~repro.perfmodel.atomics.achieved_combine_factor`."""
    if sg_size <= 1:
        return np.ones(contended.shape[0], dtype=np.float64)
    efficiency = efficiency * (16.0 / sg_size) ** 0.28
    per_sg = sg_size * contended / np.maximum(1, expanded)
    achieved = np.maximum(
        1.0, np.minimum(sg_size * efficiency, per_sg * efficiency)
    )
    return np.where(contended == 0, 1.0, achieved)


def _imbalance_factor_batch(
    serial_counts: np.ndarray, degrees: np.ndarray, group_size: int
) -> np.ndarray:
    """Vector form of :func:`~repro.perfmodel.imbalance.imbalance_factor`.

    ``serial_counts`` holds one residual histogram per row; rows are
    reduced over the bucket axis, which NumPy evaluates with the same
    pairwise summation as the scalar 1-D reductions of equal length.
    """
    n = serial_counts.shape[0]
    if group_size <= 1 or serial_counts.shape[1] == 0:
        return np.ones(n, dtype=np.float64)
    total = serial_counts.sum(axis=1)
    weighted = (serial_counts * degrees).sum(axis=1)
    safe_total = np.where(total == 0.0, 1.0, total)
    mean = weighted / safe_total
    safe_mean = np.where(mean == 0.0, 1.0, mean)
    cdf = np.cumsum(serial_counts, axis=1) / safe_total[:, None]
    cdf_prev = np.concatenate(
        [np.zeros((n, 1), dtype=np.float64), cdf[:, :-1]], axis=1
    )
    weights = cdf ** group_size - cdf_prev ** group_size
    emax = (weights * degrees).sum(axis=1)
    raw = np.maximum(1.0, emax / safe_mean)
    return np.where((total == 0.0) | (mean == 0.0), 1.0, raw)


def _partition_batch(group: TraceGroup, kplan: KernelPlan, degrees: np.ndarray):
    """Vector form of :func:`~repro.perfmodel.imbalance.partition_work`.

    The branch a bucket takes depends only on its representative degree
    and the plan, never on the record — so each bucket column is
    processed with one vector operation per record, accumulated in the
    scalar model's bucket order.
    """
    counts = group.deg_hist
    n = counts.shape[0]
    serial = counts.copy()
    sg_e = np.zeros(n, dtype=np.float64)
    wg_e = np.zeros(n, dtype=np.float64)
    fg_e = np.zeros(n, dtype=np.float64)
    n_sg = np.zeros(n, dtype=np.float64)
    n_wg = np.zeros(n, dtype=np.float64)

    for b in range(group.width):
        d = degrees[b]
        c = counts[:, b]
        edges_b = c * d
        if kplan.wg_scheme and d >= kplan.wg_threshold:
            waste = np.ceil(d / kplan.wg_size) * kplan.wg_size / d
            wg_e = wg_e + edges_b * waste
            n_wg = n_wg + c
            serial[:, b] = 0.0
        elif kplan.sg_scheme and kplan.sg_size > 1 and d >= kplan.sg_threshold:
            waste = np.ceil(d / kplan.sg_size) * kplan.sg_size / d
            sg_e = sg_e + edges_b * waste
            n_sg = n_sg + c
            serial[:, b] = 0.0
        elif kplan.fg_edges is not None:
            fg_e = fg_e + edges_b
            serial[:, b] = 0.0

    serial_edges = (serial * degrees).sum(axis=1)
    return serial, serial_edges, sg_e, wg_e, fg_e, n_sg, n_wg


def _geometry_scan(
    plan: ExecutablePlan, kplan: KernelPlan, group: TraceGroup, np_active: bool
):
    """Launch geometry, achievable throughput and outer-loop scan cost."""
    chip: ChipModel = plan.chip
    wg_size = kplan.wg_size
    active = group.active_items
    expanded = group.expanded_items
    edges = group.edges

    from_items = np.maximum(1, np.ceil(active / wg_size).astype(np.int64))
    if plan.outlined:
        launched = np.where(
            group.in_fixpoint, max(1, plan.outlined_workgroups), from_items
        )
    else:
        launched = from_items

    work_width = np.maximum(active, expanded).astype(np.float64)
    if kplan.fg_edges is not None:
        widened = np.maximum(work_width, edges / kplan.fg_edges)
        work_width = np.where(edges > 0, widened, work_width)

    resident = chip.occupancy(wg_size, kplan.local_mem_bytes)
    concurrent = np.maximum(1, np.minimum(resident, launched))
    live_threads = np.minimum(concurrent * wg_size, np.maximum(1.0, work_width))
    occupancy_frac = np.minimum(
        1.0, live_threads / (chip.n_cus * chip.threads_for_peak)
    )
    latency_hiding = 1.0 if resident / chip.n_cus >= 2 else 0.8
    throughput = np.maximum(
        1e-9, chip.peak_edges_per_us * occupancy_frac * latency_hiding
    )

    scan_units = active * _SCAN_UNITS_PER_ITEM * chip.node_cost_factor
    if np_active:
        scan_units = scan_units + (
            active * _NP_INSPECTOR_UNITS_PER_SCAN
            + expanded * _NP_INSPECTOR_UNITS_PER_ITEM
        )
    scan_us = scan_units / throughput
    return throughput, concurrent, scan_us


def _edge_units(kplan: KernelPlan, group: TraceGroup, has_loop: bool):
    """Scheme-partitioned inner-loop work, imbalance-inflated."""
    n = group.n
    wg_size = kplan.wg_size
    if has_loop and group.width > 0:
        degrees = np.array([bucket_degree(b) for b in range(group.width)])
        serial, serial_edges, sg_e, wg_e, fg_e, n_sg, n_wg = _partition_batch(
            group, kplan, degrees
        )
        raw = _imbalance_factor_batch(serial, degrees, kplan.sg_size)
        serial_units = serial_edges * np.minimum(
            _IMBALANCE_CAP, 1.0 + (raw - 1.0) * _IMBALANCE_COUPLING
        )
        fg_factor = _FG_EDGE_FACTOR.get(kplan.fg_edges or 0, 1.0)
        edge_units = (
            serial_units
            + sg_e * _SG_EDGE_FACTOR
            + wg_e * _WG_EDGE_FACTOR
            + fg_e * fg_factor
        )
        if kplan.fg_edges:
            fg_rounds = fg_e / (wg_size * kplan.fg_edges)
        else:
            fg_rounds = np.zeros(n, dtype=np.float64)
    else:
        edge_units = group.edges.astype(np.float64)
        n_sg = n_wg = fg_rounds = np.zeros(n, dtype=np.float64)
    return edge_units, fg_rounds, n_sg, n_wg


def _divergence(chip: ChipModel, kplan: KernelPlan, group: TraceGroup):
    """Per-launch memory-divergence multiplier."""
    penalty = (
        chip.divergence_sensitivity
        * np.minimum(1.0, group.irregularity)
        * workgroup_pressure(kplan.wg_size)
    )
    if kplan.inserts_inner_barriers:
        penalty = penalty * (1.0 - chip.barrier_divergence_relief)
    return np.where(group.irregularity <= 0.0, 1.0, 1.0 + penalty)


def _barrier_events(
    kplan: KernelPlan,
    group: TraceGroup,
    has_loop: bool,
    fg_rounds: np.ndarray,
    n_sg: np.ndarray,
    n_wg: np.ndarray,
):
    """Workgroup/subgroup barrier event counts per launch."""
    n = group.n
    outer_chunks = group.expanded_items / kplan.wg_size  # 0.0 where X == 0
    wg_events = 2.0 * fg_rounds
    sg_events = np.zeros(n, dtype=np.float64)
    if has_loop and kplan.wg_scheme:
        wg_events = wg_events + (2.0 * n_wg + 2.0 * outer_chunks)
    if has_loop and kplan.sg_scheme:
        wg_events = wg_events + 1.0 * outer_chunks
        sg_events = sg_events + 2.0 * n_sg
    if kplan.coop_scope is not None:
        needs_combine = (group.pushes > 0) | (group.contended_rmws > 0)
        sg_events = sg_events + np.where(needs_combine, 2.0 * outer_chunks, 0.0)
    return wg_events, sg_events


def _atomic_us(chip: ChipModel, kplan: KernelPlan, group: TraceGroup):
    """Per-launch atomic RMW cost."""
    n = group.n
    expanded = group.expanded_items
    atomic_ns = chip.effective_atomic_rmw_ns()
    contended = group.pushes + group.contended_rmws
    if chip.jit_coop_cv:
        factor = _combine_factor_batch(
            chip.sg_size, contended, expanded, _JIT_COMBINE_EFFICIENCY
        )
    else:
        factor = np.ones(n, dtype=np.float64)
    if kplan.coop_scope is not None:
        sw_factor = _combine_factor_batch(
            kplan.sg_size, contended, expanded, _SW_COMBINE_EFFICIENCY
        )
        factor = np.maximum(factor, sw_factor)
        orchestration_us = (
            contended * chip.local_traffic_ns / 1000.0 / max(1, 2 * chip.n_cus)
        )
    else:
        orchestration_us = np.zeros(n, dtype=np.float64)
    contended_us = contended / factor * atomic_ns / 1000.0
    uncontended_us = (
        group.uncontended_rmws * atomic_ns / 1000.0 / max(1, 4 * chip.n_cus)
    )
    return contended_us + uncontended_us + orchestration_us


def _group_costs(plan: ExecutablePlan, kplan: KernelPlan, group: TraceGroup):
    """Cost components of every launch in one (kernel, width) group.

    Intermediates are memoised on the group keyed by exactly the plan
    facts they depend on: the 96 study configurations share most of
    those facts, so e.g. the scheme partition is computed once per
    distinct (schemes, thresholds, sizes) combination and the atomics
    once per (chip, coop scope) — identical inputs, identical floats.
    """
    chip: ChipModel = plan.chip
    wg_size = kplan.wg_size
    has_loop = kplan.kernel.has_neighbor_loop
    np_active = has_loop and (
        kplan.wg_scheme or kplan.sg_scheme or kplan.fg_edges is not None
    )

    geom_key = (
        "geom",
        chip.short_name,
        plan.outlined,
        plan.outlined_workgroups,
        wg_size,
        kplan.fg_edges,
        kplan.local_mem_bytes,
        np_active,
    )
    throughput, concurrent, scan_us = group.memo(
        geom_key, lambda: _geometry_scan(plan, kplan, group, np_active)
    )

    part_key = (
        "edge",
        has_loop,
        kplan.wg_scheme,
        kplan.wg_threshold,
        kplan.sg_scheme,
        kplan.sg_threshold,
        kplan.sg_size,
        kplan.fg_edges,
        wg_size,
    )
    edge_units, fg_rounds, n_sg, n_wg = group.memo(
        part_key, lambda: _edge_units(kplan, group, has_loop)
    )

    div = group.memo(
        ("div", chip.short_name, wg_size, kplan.inserts_inner_barriers),
        lambda: _divergence(chip, kplan, group),
    )
    edge_us = (
        edge_units * div * (1.0 + kplan.predication_overhead) / throughput
    )

    wg_events, sg_events = group.memo(
        ("events", part_key, kplan.coop_scope is not None),
        lambda: _barrier_events(kplan, group, has_loop, fg_rounds, n_sg, n_wg),
    )
    size_scale = (wg_size / 128.0) ** _BARRIER_SIZE_EXP
    barrier_us = (
        wg_events * chip.wg_barrier_ns * size_scale
        + sg_events * chip.effective_sg_barrier_ns()
    ) / 1000.0 / concurrent

    local_us = fg_rounds * wg_size * chip.local_traffic_ns / 1000.0 / concurrent

    atomic_us = group.memo(
        ("atomic", chip.short_name, kplan.coop_scope, kplan.sg_size),
        lambda: _atomic_us(chip, kplan, group),
    )

    return scan_us, edge_us, barrier_us, local_us, atomic_us


def _as_arrays(trace: Union[Trace, TraceArrays]) -> TraceArrays:
    if isinstance(trace, TraceArrays):
        return trace
    return trace.arrays()


def price_trace_batch(
    plan: ExecutablePlan, trace: Union[Trace, TraceArrays]
) -> BatchLaunchCosts:
    """Cost every launch record of a trace in whole-array NumPy ops."""
    arrays = _as_arrays(trace)
    n = arrays.n_launches
    scan = np.zeros(n, dtype=np.float64)
    edge = np.zeros(n, dtype=np.float64)
    barrier = np.zeros(n, dtype=np.float64)
    local = np.zeros(n, dtype=np.float64)
    atomic = np.zeros(n, dtype=np.float64)
    for group in arrays.groups:
        kplan = plan.kernel_plan(group.kernel)
        s, e, b, l, a = _group_costs(plan, kplan, group)
        idx = group.indices
        scan[idx] = s
        edge[idx] = e
        barrier[idx] = b
        local[idx] = l
        atomic[idx] = a
    # Same left-associated chain as LaunchCost.total_us.
    total = scan + edge + barrier + local + atomic + _KERNEL_FIXED_US
    return BatchLaunchCosts(
        scan_us=scan,
        edge_us=edge,
        barrier_us=barrier,
        local_us=local,
        atomic_us=atomic,
        fixed_us=_KERNEL_FIXED_US,
        total_us=total,
    )


def _host_overhead_us(plan: ExecutablePlan, arrays: TraceArrays) -> float:
    """:func:`~repro.perfmodel.launch.host_overhead_us` from cached counts."""
    chip = plan.chip
    outside = arrays.n_outside_fixpoint
    inside = arrays.n_inside_fixpoint
    iterations = arrays.n_fixpoint_iterations

    total = _FIXED_COPIES * chip.copy_overhead_us
    if plan.outlined and inside:
        total += (outside + 1) * chip.launch_overhead_us
        total += iterations * global_barrier_us(chip, plan.outlined_workgroups)
    else:
        total += (outside + inside) * chip.launch_overhead_us
        total += iterations * chip.copy_overhead_us
    return total


def estimate_runtime_us_batch(
    plan: ExecutablePlan, trace: Union[Trace, TraceArrays]
) -> float:
    """Batch equivalent of :func:`~repro.perfmodel.simulate.estimate_runtime_us`."""
    arrays = _as_arrays(trace)
    if arrays.program != plan.program.name:
        raise ExecutionError(
            f"trace is for program {arrays.program!r} but plan compiles "
            f"{plan.program.name!r}"
        )
    costs = price_trace_batch(plan, arrays)
    # Accumulate in trace order: bit-identical to the scalar loop.
    total = _host_overhead_us(plan, arrays)
    for launch_us in costs.total_us.tolist():
        total += launch_us
    return total


def measure_repeats_us_batch(
    plan: ExecutablePlan,
    trace: Union[Trace, TraceArrays],
    repetitions: int = 3,
    true_us: Optional[float] = None,
    seeds: Optional[Sequence[int]] = None,
) -> List[float]:
    """Batch equivalent of :func:`~repro.perfmodel.simulate.measure_repeats_us`.

    ``seeds`` (one per repetition, from
    :func:`~repro.perfmodel.noise.measurement_seeds`) lets a sweep
    derive all (configuration × repetition) seeds up front instead of
    re-hashing per call.
    """
    if repetitions < 1:
        raise ValueError("at least one repetition is required")
    arrays = _as_arrays(trace)
    if true_us is None:
        true_us = estimate_runtime_us_batch(plan, arrays)
    if seeds is None:
        seeds = measurement_seeds(
            plan.chip,
            arrays.program,
            arrays.graph,
            plan.config.key(),
            repetitions,
        )
    elif len(seeds) != repetitions:
        raise ValueError(
            f"{len(seeds)} seeds provided for {repetitions} repetitions"
        )
    return [noise_from_seed(true_us, plan.chip, seed) for seed in seeds]
