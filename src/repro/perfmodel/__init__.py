"""Analytical GPU performance model (the hardware substitution).

Prices workload traces on the calibrated chip models.  Components:
load imbalance (:mod:`.imbalance`), memory divergence
(:mod:`.divergence`), atomic RMW throughput with cooperative/JIT
combining (:mod:`.atomics`), host-side overheads and the portable
global barrier (:mod:`.launch`), per-launch composition (:mod:`.cost`)
and the deterministic noise model (:mod:`.noise`).  The vectorized
batch engine (:mod:`.batch`) prices all launches of a trace at once,
bit-identical to the scalar path.
"""

from .atomics import achieved_combine_factor, atomic_time_us
from .batch import (
    BatchLaunchCosts,
    estimate_runtime_us_batch,
    measure_repeats_us_batch,
    price_trace_batch,
)
from .cost import LaunchCost, kernel_time_us, launch_cost
from .divergence import divergence_factor, workgroup_pressure
from .imbalance import (
    SchemeWork,
    bucket_degree,
    expected_max_degree,
    imbalance_factor,
    partition_work,
)
from .launch import global_barrier_us, host_overhead_us
from .noise import (
    measurement_prefix,
    measurement_rng,
    measurement_seeds,
    noise_from_seed,
    noisy_measurement_us,
)
from .simulate import estimate_runtime_us, measure_repeats_us, measure_us

__all__ = [
    "achieved_combine_factor",
    "atomic_time_us",
    "BatchLaunchCosts",
    "estimate_runtime_us_batch",
    "measure_repeats_us_batch",
    "price_trace_batch",
    "LaunchCost",
    "kernel_time_us",
    "launch_cost",
    "divergence_factor",
    "workgroup_pressure",
    "SchemeWork",
    "bucket_degree",
    "expected_max_degree",
    "imbalance_factor",
    "partition_work",
    "global_barrier_us",
    "host_overhead_us",
    "measurement_prefix",
    "measurement_rng",
    "measurement_seeds",
    "noise_from_seed",
    "noisy_measurement_us",
    "estimate_runtime_us",
    "measure_repeats_us",
    "measure_us",
]
