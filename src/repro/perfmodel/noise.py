"""Measurement-noise model.

The paper times each test three times; its statistical machinery (95 %
CI significance filter, Mann-Whitney U) exists *because* measurements
are noisy, and its Table IX records one case (``fg8`` on MALI) where
noise leaves too few significant samples to decide.  We reproduce that
setting with multiplicative log-normal noise — the standard model for
timing measurements — whose magnitude is a per-chip parameter (MALI,
timed via a calibration loop because OpenCL exposes no device timers,
is by far the noisiest), plus a small additive timer-granularity term.

All noise is deterministic given (chip, program, graph, configuration,
repetition): re-running the study bit-reproduces the dataset.
"""

from __future__ import annotations

import numpy as np

from ..chips.model import ChipModel
from ..util import stable_hash

__all__ = ["noisy_measurement_us", "measurement_rng"]

#: Additive timer granularity / scheduling jitter bound (microseconds).
_TIMER_JITTER_US = 1.5


def measurement_rng(
    chip: ChipModel, program: str, graph: str, config_key: str, rep: int
) -> np.random.Generator:
    """Deterministic RNG for one timing measurement."""
    seed = stable_hash(chip.short_name, program, graph, config_key, rep)
    return np.random.default_rng(seed)


def noisy_measurement_us(
    true_us: float,
    chip: ChipModel,
    program: str,
    graph: str,
    config_key: str,
    rep: int,
) -> float:
    """One simulated timing measurement of a run with true cost ``true_us``."""
    if true_us < 0:
        raise ValueError("true runtime must be non-negative")
    rng = measurement_rng(chip, program, graph, config_key, rep)
    multiplicative = float(np.exp(rng.normal(0.0, chip.noise_sigma)))
    jitter = float(rng.uniform(0.0, _TIMER_JITTER_US))
    return true_us * multiplicative + jitter
