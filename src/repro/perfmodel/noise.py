"""Measurement-noise model.

The paper times each test three times; its statistical machinery (95 %
CI significance filter, Mann-Whitney U) exists *because* measurements
are noisy, and its Table IX records one case (``fg8`` on MALI) where
noise leaves too few significant samples to decide.  We reproduce that
setting with multiplicative log-normal noise — the standard model for
timing measurements — whose magnitude is a per-chip parameter (MALI,
timed via a calibration loop because OpenCL exposes no device timers,
is by far the noisiest), plus a small additive timer-granularity term.

All noise is deterministic given (chip, program, graph, configuration,
repetition): re-running the study bit-reproduces the dataset.  The
seed of one measurement is ``stable_hash`` of that tuple; for batch
sweeps the (chip, program, graph) prefix of the FNV-1a stream is
hashed once (:func:`measurement_prefix`) and every (configuration,
repetition) seed is derived from it (:func:`measurement_seeds`) —
identical seeds, without re-hashing the prefix per call.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..chips.model import ChipModel
from ..util import fnv1a_extend, fnv1a_state, stable_hash

__all__ = [
    "measurement_prefix",
    "measurement_rng",
    "measurement_seeds",
    "noise_from_seed",
    "noisy_measurement_us",
]

#: Additive timer granularity / scheduling jitter bound (microseconds).
_TIMER_JITTER_US = 1.5


def measurement_rng(
    chip: ChipModel, program: str, graph: str, config_key: str, rep: int
) -> np.random.Generator:
    """Deterministic RNG for one timing measurement."""
    seed = stable_hash(chip.short_name, program, graph, config_key, rep)
    return np.random.default_rng(seed)


def measurement_prefix(chip: ChipModel, program: str, graph: str) -> int:
    """FNV-1a state over the configuration-independent seed prefix."""
    return fnv1a_state(chip.short_name, program, graph)


def measurement_seeds(
    chip: ChipModel,
    program: str,
    graph: str,
    config_key: str,
    repetitions: int,
    prefix: Optional[int] = None,
) -> List[int]:
    """All repetition seeds of one (chip, program, graph, config) point.

    Identical to ``[stable_hash(chip.short_name, program, graph,
    config_key, rep) for rep in range(repetitions)]``, but the shared
    prefix is hashed once (or passed in precomputed from
    :func:`measurement_prefix`).
    """
    if prefix is None:
        prefix = measurement_prefix(chip, program, graph)
    return [fnv1a_extend(prefix, config_key, rep) for rep in range(repetitions)]


def noise_from_seed(true_us: float, chip: ChipModel, seed: int) -> float:
    """One simulated timing measurement drawn from an explicit seed."""
    if true_us < 0:
        raise ValueError("true runtime must be non-negative")
    # Generator(PCG64(seed)) is default_rng(seed) without the seed-type
    # dispatch — same PCG64 stream, measurably cheaper to construct,
    # which matters at one generator per (config, repetition).
    rng = np.random.Generator(np.random.PCG64(seed))
    multiplicative = float(np.exp(rng.normal(0.0, chip.noise_sigma)))
    jitter = float(rng.uniform(0.0, _TIMER_JITTER_US))
    return true_us * multiplicative + jitter


def noisy_measurement_us(
    true_us: float,
    chip: ChipModel,
    program: str,
    graph: str,
    config_key: str,
    rep: int,
) -> float:
    """One simulated timing measurement of a run with true cost ``true_us``."""
    seed = stable_hash(chip.short_name, program, graph, config_key, rep)
    return noise_from_seed(true_us, chip, seed)
