"""Per-launch kernel cost model.

Prices one traced kernel launch on one chip under one compiled plan.
The model decomposes a launch into the components of the paper's
Table VI: outer-loop scan, inner-loop edge work (inflated by load
imbalance and memory divergence, deflated by occupancy-limited
throughput), barrier orchestration of the active schemes, local-memory
traffic, and atomic RMWs.  All times are in microseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..chips.model import ChipModel
from ..compiler.plan import ExecutablePlan, KernelPlan
from ..runtime.trace import LaunchRecord
from .atomics import atomic_time_us
from .divergence import divergence_factor
from .imbalance import SchemeWork, imbalance_factor, partition_work

__all__ = ["LaunchCost", "launch_cost", "kernel_time_us"]

#: Outer-loop cost of scanning one work item, in edge-work units.
_SCAN_UNITS_PER_ITEM = 0.35
#: Extra inspector work when nested parallelism is on (degree tests,
#: ballots, work-item staging) — the "simply adds overhead" cost on
#: load-balanced inputs (paper Section V-B).  Split between a cheap
#: per-scanned-item degree test and heavier per-expanded-item staging.
_NP_INSPECTOR_UNITS_PER_SCAN = 0.08
_NP_INSPECTOR_UNITS_PER_ITEM = 0.30
#: Per-edge efficiency of each scheme's executor.
_SG_EDGE_FACTOR = 1.10
_WG_EDGE_FACTOR = 1.30
_FG_EDGE_FACTOR = {1: 1.16, 8: 1.07}
#: Fixed pipeline fill/drain per kernel execution.
_KERNEL_FIXED_US = 0.4
#: Barrier latency growth with workgroup size (normalised to 128).
_BARRIER_SIZE_EXP = 1.5
#: Load imbalance softening: the hardware scheduler interleaves other
#: subgroups while a straggler lane finishes, so only part of the
#: worst-lane gap reaches wall time, and reconvergence bounds the rest.
_IMBALANCE_COUPLING = 0.5
_IMBALANCE_CAP = 3.5


def effective_imbalance(raw_factor: float) -> float:
    """Wall-clock imbalance factor from the distributional one."""
    return min(_IMBALANCE_CAP, 1.0 + (raw_factor - 1.0) * _IMBALANCE_COUPLING)


@dataclass(frozen=True)
class LaunchCost:
    """Cost breakdown of one kernel launch (microseconds)."""

    scan_us: float
    edge_us: float
    barrier_us: float
    local_us: float
    atomic_us: float
    fixed_us: float

    @property
    def total_us(self) -> float:
        return (
            self.scan_us
            + self.edge_us
            + self.barrier_us
            + self.local_us
            + self.atomic_us
            + self.fixed_us
        )


def _throughput_edges_per_us(
    chip: ChipModel, kplan: KernelPlan, launched_wgs: int, work_width: float
) -> float:
    """Achievable edge-work throughput for this launch shape.

    ``work_width`` caps the useful parallelism: threads beyond the
    number of parallel work items idle regardless of launch geometry
    (a 256-thread workgroup over a 100-node frontier is no faster than
    a 128-thread one).
    """
    resident = chip.occupancy(kplan.wg_size, kplan.local_mem_bytes)
    concurrent = max(1, min(resident, launched_wgs))
    live_threads = min(concurrent * kplan.wg_size, max(1.0, work_width))
    occupancy_frac = min(1.0, live_threads / (chip.n_cus * chip.threads_for_peak))
    # A single resident workgroup per CU cannot hide its own barrier
    # and memory stalls behind another workgroup's work.
    per_cu = resident / chip.n_cus
    latency_hiding = 1.0 if per_cu >= 2 else 0.8
    return max(1e-9, chip.peak_edges_per_us * occupancy_frac * latency_hiding)


def _concurrent_wgs(chip: ChipModel, kplan: KernelPlan, launched_wgs: int) -> int:
    resident = chip.occupancy(kplan.wg_size, kplan.local_mem_bytes)
    return max(1, min(resident, launched_wgs))


def launch_cost(
    plan: ExecutablePlan, kplan: KernelPlan, record: LaunchRecord
) -> LaunchCost:
    """Cost one traced launch under a compiled plan."""
    chip = plan.chip
    wg_size = kplan.wg_size

    if plan.outlined and record.in_fixpoint:
        launched_wgs = max(1, plan.outlined_workgroups)
    else:
        launched_wgs = max(1, math.ceil(record.active_items / wg_size))

    # Useful parallel width: outer items, widened by the fine-grained
    # executor, which re-parallelises the frontier's edges.
    work_width = float(max(record.active_items, record.expanded_items))
    if kplan.fg_edges is not None and record.edges:
        work_width = max(work_width, record.edges / kplan.fg_edges)

    throughput = _throughput_edges_per_us(chip, kplan, launched_wgs, work_width)
    concurrent = _concurrent_wgs(chip, kplan, launched_wgs)

    has_loop = kplan.kernel.has_neighbor_loop
    np_active = has_loop and (
        kplan.wg_scheme or kplan.sg_scheme or kplan.fg_edges is not None
    )

    # -- outer-loop scan ------------------------------------------------
    scan_units = record.active_items * _SCAN_UNITS_PER_ITEM * chip.node_cost_factor
    if np_active:
        # Degree tests run for every scanned item; the heavier staging
        # (ballots, work-item buffering) only for items with real work.
        scan_units += (
            record.active_items * _NP_INSPECTOR_UNITS_PER_SCAN
            + record.expanded_items * _NP_INSPECTOR_UNITS_PER_ITEM
        )
    scan_us = scan_units / throughput

    # -- inner-loop edge work -------------------------------------------
    if has_loop and record.deg_hist:
        work: SchemeWork = partition_work(record.deg_hist, kplan)
        serial_units = work.serial_edges * effective_imbalance(
            imbalance_factor(work.serial_hist, kplan.sg_size)
        )
        fg_factor = _FG_EDGE_FACTOR.get(kplan.fg_edges or 0, 1.0)
        edge_units = (
            serial_units
            + work.sg_edges * _SG_EDGE_FACTOR
            + work.wg_edges * _WG_EDGE_FACTOR
            + work.fg_edges * fg_factor
        )
        n_sg_nodes, n_wg_nodes = work.n_sg_nodes, work.n_wg_nodes
        fg_rounds = (
            work.fg_edges / (wg_size * kplan.fg_edges) if kplan.fg_edges else 0.0
        )
    else:
        # Edge-centric / simple kernels: linear, balanced work.
        edge_units = float(record.edges)
        n_sg_nodes = n_wg_nodes = 0.0
        fg_rounds = 0.0

    div = divergence_factor(chip, kplan, record.irregularity)
    edge_us = edge_units * div * (1.0 + kplan.predication_overhead) / throughput

    # -- barrier orchestration -------------------------------------------
    outer_chunks = record.expanded_items / wg_size if record.expanded_items else 0.0
    wg_events = 2.0 * fg_rounds
    sg_events = 0.0
    if has_loop and kplan.wg_scheme:
        wg_events += 2.0 * n_wg_nodes + 2.0 * outer_chunks
    if has_loop and kplan.sg_scheme:
        wg_events += 1.0 * outer_chunks  # phase-separation barriers
        sg_events += 2.0 * n_sg_nodes
    if kplan.coop_scope is not None and (record.pushes or record.contended_rmws):
        sg_events += 2.0 * outer_chunks  # one combine round per chunk

    size_scale = (wg_size / 128.0) ** _BARRIER_SIZE_EXP
    barrier_us = (
        wg_events * chip.wg_barrier_ns * size_scale
        + sg_events * chip.effective_sg_barrier_ns()
    ) / 1000.0 / concurrent

    # -- local-memory traffic (fg inspector prefix sums) ------------------
    local_us = fg_rounds * wg_size * chip.local_traffic_ns / 1000.0 / concurrent

    # -- atomics -----------------------------------------------------------
    atomic_us = atomic_time_us(chip, kplan, record)

    return LaunchCost(
        scan_us=scan_us,
        edge_us=edge_us,
        barrier_us=barrier_us,
        local_us=local_us,
        atomic_us=atomic_us,
        fixed_us=_KERNEL_FIXED_US,
    )


def kernel_time_us(
    plan: ExecutablePlan, kplan: KernelPlan, record: LaunchRecord
) -> float:
    """Total time of one traced launch, in microseconds."""
    return launch_cost(plan, kplan, record).total_us
