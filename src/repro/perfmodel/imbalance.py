"""Load-imbalance model for irregular inner loops.

When one thread serially walks one node's adjacency list, the threads
co-scheduled with it (its subgroup on SIMD hardware) wait for the
slowest lane — so per-lane time is governed by the *maximum* degree in
the group, not the mean.  Given the power-of-two degree histogram of a
launch's expanded nodes, this module computes the expected worst lane
among ``s`` co-scheduled nodes and how the nested-parallelism schemes
partition nodes among themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..compiler.plan import KernelPlan

__all__ = [
    "bucket_degree",
    "expected_max_degree",
    "imbalance_factor",
    "SchemeWork",
    "partition_work",
]


def bucket_degree(bucket: int) -> float:
    """Representative degree of histogram bucket ``[2^b, 2^(b+1))``."""
    return 1.5 * (1 << bucket)


def _hist_arrays(hist: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
    counts = np.asarray(hist, dtype=np.float64)
    degrees = np.array([bucket_degree(b) for b in range(counts.size)])
    return counts, degrees


def expected_max_degree(hist: Sequence[int], group_size: int) -> float:
    """Expected maximum degree among ``group_size`` iid draws.

    Computed exactly over the bucketed distribution:
    ``E[max] = Σ_b d_b · (F(b)^s − F(b−1)^s)`` with ``F`` the bucket
    CDF.  For ``group_size == 1`` this is the histogram mean.
    """
    counts, degrees = _hist_arrays(hist)
    total = counts.sum()
    if total == 0:
        return 0.0
    if group_size <= 1:
        return float((counts * degrees).sum() / total)
    cdf = np.cumsum(counts) / total
    cdf_prev = np.concatenate([[0.0], cdf[:-1]])
    weights = cdf ** group_size - cdf_prev ** group_size
    return float((weights * degrees).sum())


def imbalance_factor(hist: Sequence[int], group_size: int) -> float:
    """Slowdown of one-node-per-thread execution vs. perfect balance.

    The ratio of the expected worst lane to the mean lane in groups of
    ``group_size`` co-scheduled threads; 1.0 for empty histograms,
    single-thread groups, or uniform degrees.  Heavy-tailed degree
    distributions (social networks) push this well above 2.
    """
    counts, degrees = _hist_arrays(hist)
    total = counts.sum()
    if total == 0 or group_size <= 1:
        return 1.0
    mean = (counts * degrees).sum() / total
    if mean == 0:
        return 1.0
    return max(1.0, expected_max_degree(hist, group_size) / mean)


@dataclass(frozen=True)
class SchemeWork:
    """Inner-loop work split among the nested-parallelism schemes."""

    serial_edges: float  # one node per thread
    sg_edges: float  # subgroup-cooperative nodes
    wg_edges: float  # workgroup-cooperative nodes
    fg_edges: float  # linearised fine-grained executor
    n_sg_nodes: float  # orchestration event counts
    n_wg_nodes: float
    serial_hist: Tuple[int, ...]  # residual histogram for imbalance

    @property
    def total_edges(self) -> float:
        return self.serial_edges + self.sg_edges + self.wg_edges + self.fg_edges


def partition_work(hist: Sequence[int], plan: KernelPlan) -> SchemeWork:
    """Split a launch's inner-loop work according to the plan's schemes.

    Thresholds follow the compiled plan: the ``wg`` scheme takes nodes
    of degree ≥ its threshold, ``sg`` the band between the subgroup
    threshold and the ``wg`` threshold, and the remainder goes to the
    fine-grained executor when present, else stays serial.  A subgroup
    of size 1 (MALI) makes the ``sg`` scheme a semantically valid
    no-op: its nodes are costed as serial work (the paper's Section
    VIII-c observation — only the inserted barriers have an effect).
    """
    counts, degrees = _hist_arrays(hist)
    serial_counts = counts.copy()
    sg_edges = wg_edges = fg_edges = 0.0
    n_sg = n_wg = 0.0

    for b in range(counts.size):
        d, c = degrees[b], counts[b]
        if c == 0:
            continue
        edges = c * d
        if plan.wg_scheme and d >= plan.wg_threshold:
            # Whole-workgroup rounds: a node's last round leaves lanes
            # idle unless its degree is a multiple of the workgroup
            # size — the cooperative schemes' intrinsic lane waste.
            waste = np.ceil(d / plan.wg_size) * plan.wg_size / d
            wg_edges += edges * waste
            n_wg += c
            serial_counts[b] = 0
        elif plan.sg_scheme and plan.sg_size > 1 and d >= plan.sg_threshold:
            waste = np.ceil(d / plan.sg_size) * plan.sg_size / d
            sg_edges += edges * waste
            n_sg += c
            serial_counts[b] = 0
        elif plan.fg_edges is not None:
            fg_edges += edges
            serial_counts[b] = 0

    serial_edges = float((serial_counts * degrees).sum())
    return SchemeWork(
        serial_edges=serial_edges,
        sg_edges=sg_edges,
        wg_edges=wg_edges,
        fg_edges=fg_edges,
        n_sg_nodes=n_sg,
        n_wg_nodes=n_wg,
        serial_hist=tuple(int(c) for c in serial_counts),
    )
