"""End-to-end runtime estimation: trace × plan → (noisy) timings.

The public entry points of the performance model: price a traced
execution under a compiled plan (:func:`estimate_runtime_us`), or
produce the study's three noisy repetitions
(:func:`measure_repeats_us`).
"""

from __future__ import annotations

from typing import List

from ..compiler.plan import ExecutablePlan
from ..errors import ExecutionError
from ..runtime.trace import Trace
from .cost import kernel_time_us
from .launch import host_overhead_us
from .noise import noisy_measurement_us

__all__ = ["estimate_runtime_us", "measure_us", "measure_repeats_us"]


def estimate_runtime_us(plan: ExecutablePlan, trace: Trace) -> float:
    """Noise-free end-to-end runtime of a traced execution, in µs."""
    if trace.program != plan.program.name:
        raise ExecutionError(
            f"trace is for program {trace.program!r} but plan compiles "
            f"{plan.program.name!r}"
        )
    total = host_overhead_us(plan, trace)
    for record in trace.launches:
        kplan = plan.kernel_plan(record.kernel)
        total += kernel_time_us(plan, kplan, record)
    return total


def measure_us(plan: ExecutablePlan, trace: Trace, rep: int = 0) -> float:
    """One simulated timing measurement (deterministic per ``rep``)."""
    true_us = estimate_runtime_us(plan, trace)
    return noisy_measurement_us(
        true_us,
        plan.chip,
        trace.program,
        trace.graph,
        plan.config.key(),
        rep,
    )


def measure_repeats_us(
    plan: ExecutablePlan, trace: Trace, repetitions: int = 3
) -> List[float]:
    """The study's repeated timings (paper: three per test)."""
    if repetitions < 1:
        raise ValueError("at least one repetition is required")
    true_us = estimate_runtime_us(plan, trace)
    return [
        noisy_measurement_us(
            true_us,
            plan.chip,
            trace.program,
            trace.graph,
            plan.config.key(),
            rep,
        )
        for rep in range(repetitions)
    ]
