"""End-to-end runtime estimation: trace × plan → (noisy) timings.

The public entry points of the performance model: price a traced
execution under a compiled plan (:func:`estimate_runtime_us`), or
produce the study's three noisy repetitions
(:func:`measure_repeats_us`).  Both measurement helpers accept a
precomputed ``true_us`` so call sites that already priced the (plan,
trace) pair never re-price it; within :func:`measure_repeats_us` the
estimate is always computed once and shared across repetitions.

This is the scalar reference path; :mod:`repro.perfmodel.batch` is the
vectorized engine, bit-identical by construction and verified against
this module by the golden equivalence tests.
"""

from __future__ import annotations

from typing import List, Optional

from ..compiler.plan import ExecutablePlan
from ..errors import ExecutionError
from ..runtime.trace import Trace
from .cost import kernel_time_us
from .launch import host_overhead_us
from .noise import noisy_measurement_us

__all__ = ["estimate_runtime_us", "measure_us", "measure_repeats_us"]


def estimate_runtime_us(plan: ExecutablePlan, trace: Trace) -> float:
    """Noise-free end-to-end runtime of a traced execution, in µs."""
    if trace.program != plan.program.name:
        raise ExecutionError(
            f"trace is for program {trace.program!r} but plan compiles "
            f"{plan.program.name!r}"
        )
    total = host_overhead_us(plan, trace)
    for record in trace.launches:
        kplan = plan.kernel_plan(record.kernel)
        total += kernel_time_us(plan, kplan, record)
    return total


def measure_us(
    plan: ExecutablePlan,
    trace: Trace,
    rep: int = 0,
    true_us: Optional[float] = None,
) -> float:
    """One simulated timing measurement (deterministic per ``rep``).

    Pass ``true_us`` (from a prior :func:`estimate_runtime_us` of the
    same (plan, trace) pair) to avoid re-pricing the trace.
    """
    if true_us is None:
        true_us = estimate_runtime_us(plan, trace)
    return noisy_measurement_us(
        true_us,
        plan.chip,
        trace.program,
        trace.graph,
        plan.config.key(),
        rep,
    )


def measure_repeats_us(
    plan: ExecutablePlan,
    trace: Trace,
    repetitions: int = 3,
    true_us: Optional[float] = None,
) -> List[float]:
    """The study's repeated timings (paper: three per test).

    The noise-free estimate is computed once and shared across all
    repetitions; pass ``true_us`` to reuse an estimate computed
    elsewhere.
    """
    if repetitions < 1:
        raise ValueError("at least one repetition is required")
    if true_us is None:
        true_us = estimate_runtime_us(plan, trace)
    return [
        noisy_measurement_us(
            true_us,
            plan.chip,
            trace.program,
            trace.graph,
            plan.config.key(),
            rep,
        )
        for rep in range(repetitions)
    ]
