"""RunReport: the per-run metrics artifact and its renderer.

A :class:`RunReport` captures one run's recorder state (counters,
gauges, histograms, spans) plus free-form ``meta`` facts (engine, job
count, scale, …) and the ``prior`` segments of interrupted runs merged
across ``--resume``.  It serialises to a checksummed JSON file next to
the dataset — the same atomic-write + SHA-256 discipline as
:meth:`repro.study.dataset.PerfDataset.save` — and renders as a
human-readable summary (``python -m repro profile REPORT.json``).

The report is deliberately plain data: byte-for-byte reproducible when
the recorder ran under an injectable clock, and safe to diff, archive
or upload as a CI artifact.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..errors import ReportError
from ..util import atomic_write_text, sha256_hex

__all__ = ["REPORT_FORMAT", "RunReport", "main"]

#: Format tag of checksummed run-report files.
REPORT_FORMAT = "run-report-v1"


class RunReport:
    """One run's observability data, serialisable and renderable."""

    def __init__(
        self,
        counters: Optional[Dict[str, int]] = None,
        gauges: Optional[Dict[str, float]] = None,
        histograms: Optional[Dict[str, List[float]]] = None,
        spans: Optional[List[dict]] = None,
        meta: Optional[Dict[str, object]] = None,
        prior: Optional[List[dict]] = None,
    ) -> None:
        self.counters = dict(counters or {})
        self.gauges = dict(gauges or {})
        self.histograms = {k: list(v) for k, v in (histograms or {}).items()}
        self.spans = list(spans or [])
        self.meta = dict(meta or {})
        self.prior = list(prior or [])

    @classmethod
    def from_recorder(cls, recorder, meta: Optional[dict] = None) -> "RunReport":
        """Build a report from a recorder (including its prior segments)."""
        snap = recorder.snapshot()
        return cls(
            counters=snap["counters"],
            gauges=snap["gauges"],
            histograms=snap["histograms"],
            spans=snap["spans"],
            meta=meta,
            prior=list(getattr(recorder, "prior_segments", [])),
        )

    # -- queries -----------------------------------------------------------

    def counter(self, name: str, default: int = 0) -> int:
        """This run's value of one counter."""
        return self.counters.get(name, default)

    def total_counter(self, name: str) -> int:
        """A counter summed over this run *and* all prior segments."""
        total = self.counters.get(name, 0)
        for segment in self.prior:
            total += segment.get("counters", {}).get(name, 0)
        return total

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "meta": self.meta,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "spans": self.spans,
            "prior": self.prior,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        if not isinstance(data, dict):
            raise ReportError("malformed run report: expected an object")
        return cls(
            counters=data.get("counters", {}),
            gauges=data.get("gauges", {}),
            histograms=data.get("histograms", {}),
            spans=data.get("spans", []),
            meta=data.get("meta", {}),
            prior=data.get("prior", []),
        )

    def save(self, path: str) -> None:
        """Atomically write the report as checksummed JSON."""
        body = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        payload = (
            f'{{"format": "{REPORT_FORMAT}", '
            f'"checksum": "{sha256_hex(body)}", '
            f'"report": {body}}}'
        )
        atomic_write_text(path, payload)

    @classmethod
    def load(cls, path: str) -> "RunReport":
        """Load a report, raising :class:`~repro.errors.ReportError` on
        truncation, corruption or a checksum mismatch."""
        try:
            with open(path, encoding="utf-8") as f:
                parsed = json.load(f)
        except OSError as exc:
            raise ReportError(f"cannot read run report {path!r}: {exc}") from exc
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ReportError(
                f"corrupt run report {path!r}: truncated or invalid JSON ({exc})"
            ) from exc
        if not isinstance(parsed, dict) or parsed.get("format") != REPORT_FORMAT:
            raise ReportError(
                f"unrecognised run report {path!r} "
                f"(expected format {REPORT_FORMAT!r})"
            )
        body = json.dumps(
            parsed.get("report", {}), sort_keys=True, separators=(",", ":")
        )
        if sha256_hex(body) != parsed.get("checksum"):
            raise ReportError(
                f"corrupt run report {path!r}: checksum mismatch (the file "
                f"was modified or partially written)"
            )
        return cls.from_dict(parsed["report"])

    # -- rendering ---------------------------------------------------------

    def render(self, max_spans: int = 15) -> str:
        """A human-readable multi-section summary of the report."""
        # Imported lazily: repro.core's analysis modules import repro.obs
        # for instrumentation, so a module-level import here would cycle.
        from ..core.reporting import render_table

        sections: List[str] = []
        if self.meta:
            sections.append(
                render_table(
                    ["Meta", "Value"],
                    [[k, self.meta[k]] for k in sorted(self.meta)],
                    title="Run report",
                )
            )
        if self.counters:
            if self.prior:
                rows = [
                    [k, self.counters[k], self.total_counter(k)]
                    for k in sorted(self.counters)
                ]
                headers = ["Counter", "This run", "Incl. prior runs"]
            else:
                rows = [[k, self.counters[k]] for k in sorted(self.counters)]
                headers = ["Counter", "Value"]
            sections.append(render_table(headers, rows, title="Counters"))
        if self.gauges:
            sections.append(
                render_table(
                    ["Gauge", "Value"],
                    [[k, self.gauges[k]] for k in sorted(self.gauges)],
                    title="Gauges",
                )
            )
        if self.histograms:
            rows = []
            for name in sorted(self.histograms):
                count, total, lo, hi = self.histograms[name]
                mean = total / count if count else float("nan")
                rows.append([name, int(count), mean, lo, hi])
            sections.append(
                render_table(
                    ["Histogram", "Count", "Mean", "Min", "Max"],
                    rows,
                    title="Histograms",
                )
            )
        if self.spans:
            closed = [s for s in self.spans if s.get("duration_s") is not None]
            slowest = sorted(
                closed, key=lambda s: s["duration_s"], reverse=True
            )[:max_spans]
            rows = [
                [
                    "  " * int(s.get("depth", 0)) + s["name"],
                    f"{s['duration_s'] * 1e3:.2f}ms",
                    ", ".join(
                        f"{k}={v}" for k, v in sorted(s.get("attrs", {}).items())
                    ),
                ]
                for s in slowest
            ]
            sections.append(
                render_table(
                    ["Span", "Duration", "Attributes"],
                    rows,
                    title=(
                        f"Slowest spans ({len(slowest)} of {len(self.spans)})"
                    ),
                )
            )
        if self.prior:
            sections.append(
                f"Merged from {len(self.prior)} prior interrupted run "
                f"segment(s) via --resume."
            )
        return "\n\n".join(sections) if sections else "empty run report"


def main(argv=None) -> int:
    """CLI: ``python -m repro profile REPORT.json [--spans N]``."""
    import argparse
    import sys

    from ..cli import metrics_parent

    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="Render a study RunReport as a human-readable summary.",
        parents=[metrics_parent()],
    )
    parser.add_argument("report", help="path to a RunReport JSON artifact")
    parser.add_argument(
        "--spans",
        type=int,
        default=15,
        metavar="N",
        help="show the N slowest spans (default: 15)",
    )
    args = parser.parse_args(argv)
    try:
        report = RunReport.load(args.report)
    except ReportError as exc:
        print(f"[profile] {exc}", file=sys.stderr)
        return 1
    print(report.render(max_spans=args.spans))
    if args.metrics:
        # Re-save the verified report: a cheap way to normalise a
        # legacy or hand-edited artifact into canonical checksummed form.
        report.save(args.metrics)
        print(f"[profile] re-saved report to {args.metrics}", file=sys.stderr)
    return 0
