"""Recorders: where spans, counters, gauges and histograms accumulate.

Two implementations share one interface.  :class:`Recorder` records
everything it is given — hierarchical spans with durations from an
injectable clock, named counters, gauges and histograms — and can
merge the drained snapshots of other recorders (the study sweep's
worker processes each run their own recorder and ship per-shard deltas
back to the parent; ``repro serve --workers N`` merges per-worker
serving metrics through the same path so ``/metrics`` and the
run-report sidecar reconcile exactly with total requests served).  :class:`NullRecorder` is the default: every
method is a no-op and :meth:`~NullRecorder.span` returns a shared
reusable context manager, so instrumented code pays one cheap call per
*shard-level* event and nothing per inner-loop iteration when metrics
are off.

All timing goes through the recorder's ``clock`` (default
:func:`time.perf_counter`); tests inject a fake clock so serialised
reports are byte-for-byte reproducible.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

__all__ = ["NULL_RECORDER", "NullRecorder", "Recorder", "Span"]


class Span:
    """One finished (or open) span: a named, attributed time interval."""

    __slots__ = ("name", "attrs", "depth", "start_s", "duration_s")

    def __init__(self, name: str, attrs: Dict[str, object], depth: int, start_s: float):
        self.name = name
        self.attrs = attrs
        self.depth = depth
        self.start_s = start_s
        self.duration_s: Optional[float] = None

    def set(self, key: str, value: object) -> None:
        """Attach (or overwrite) one attribute on the span."""
        self.attrs[key] = value

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }


class _NullSpan:
    """Reusable no-op stand-in for :class:`Span` under :class:`NullRecorder`."""

    __slots__ = ()

    def set(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The zero-overhead default: records nothing, allocates nothing."""

    enabled = False
    prior_segments: List[dict] = []

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def counter_value(self, name: str) -> int:
        return 0

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def merge(self, snapshot: dict) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}, "spans": []}

    def drain(self) -> dict:
        return self.snapshot()


#: The shared process-wide no-op recorder.
NULL_RECORDER = NullRecorder()


class Recorder:
    """Accumulates spans, counters, gauges and histograms for one run.

    * ``count(name, n)``   — monotonically increasing integer counters;
    * ``gauge(name, v)``   — last-value-wins point samples;
    * ``observe(name, v)`` — histograms kept as (count, sum, min, max);
    * ``span(name, **a)``  — a context manager timing a hierarchical
      region; nesting depth is tracked via an explicit stack, and the
      yielded :class:`Span` accepts late attributes via :meth:`Span.set`.

    :meth:`snapshot` returns the state as plain JSON-serialisable data;
    :meth:`drain` snapshots *and resets* (the per-shard delta workers
    ship home); :meth:`merge` folds such a snapshot back in — counters
    and histograms add, gauges overwrite, spans append.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, List[float]] = {}  # [count, sum, min, max]
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        #: Snapshots of prior (interrupted) run segments, loaded from a
        #: checkpoint on ``--resume``; kept separate from this run's own
        #: data so per-run invariants are never double counted.
        self.prior_segments: List[dict] = []

    # -- instruments -------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def counter_value(self, name: str) -> int:
        return self.counters.get(name, 0)

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        h = self.histograms.get(name)
        if h is None:
            self.histograms[name] = [1, value, value, value]
        else:
            h[0] += 1
            h[1] += value
            h[2] = min(h[2], value)
            h[3] = max(h[3], value)

    @contextmanager
    def span(self, name: str, **attrs: object):
        sp = Span(name, attrs, depth=len(self._stack), start_s=self._clock())
        self.spans.append(sp)  # open order, so parents precede children
        self._stack.append(sp)
        try:
            yield sp
        finally:
            self._stack.pop()
            sp.duration_s = self._clock() - sp.start_s

    # -- snapshots and merging ---------------------------------------------

    def snapshot(self) -> dict:
        """The recorder's state as plain JSON-serialisable data."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: list(v) for k, v in self.histograms.items()},
            "spans": [sp.to_dict() for sp in self.spans],
        }

    def drain(self) -> dict:
        """Snapshot and reset — the per-shard delta a worker ships home."""
        snap = self.snapshot()
        self.counters = {}
        self.gauges = {}
        self.histograms = {}
        self.spans = []
        return snap

    def merge(self, snapshot: dict) -> None:
        """Fold a drained snapshot in: add counters/histograms, append spans."""
        for name, n in snapshot.get("counters", {}).items():
            self.count(name, n)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, h in snapshot.get("histograms", {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = list(h)
            else:
                mine[0] += h[0]
                mine[1] += h[1]
                mine[2] = min(mine[2], h[2])
                mine[3] = max(mine[3], h[3])
        for rec in snapshot.get("spans", []):
            sp = Span(
                rec["name"],
                dict(rec.get("attrs", {})),
                depth=rec.get("depth", 0),
                start_s=rec.get("start_s", 0.0),
            )
            sp.duration_s = rec.get("duration_s")
            self.spans.append(sp)
