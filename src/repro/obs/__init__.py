"""Observability: tracing spans, metrics and run reports.

A lightweight, dependency-free instrumentation layer for the study
pipeline (and any future serving stack): hierarchical *spans* with an
injectable clock, named *counters*/*gauges*/*histograms*, and a
per-run :class:`~repro.obs.report.RunReport` that serialises to a
checksummed JSON artifact and renders as a summary table.

Design rules (see ``docs/observability.md`` for naming conventions):

* **Zero overhead when disabled.**  The process-wide current recorder
  defaults to :data:`~repro.obs.recorder.NULL_RECORDER`, whose methods
  are no-ops; hot paths either take an explicit recorder or call the
  module-level helpers below, and never instrument per-launch inner
  loops.
* **Deterministic when clocked.**  A :class:`Recorder` built with a
  fake clock produces byte-for-byte reproducible reports, so report
  serialisation is golden-testable.
* **Mergeable.**  Worker processes run their own recorders and ship
  per-shard :meth:`~repro.obs.recorder.Recorder.drain` deltas that
  :meth:`~repro.obs.recorder.Recorder.merge` folds into the parent.

Usage::

    from repro.obs import Recorder, recording

    rec = Recorder()
    with recording(rec):                    # route module-level helpers
        dataset = run_study(cfg, recorder=rec)
    RunReport.from_recorder(rec).save("run-report.json")
"""

from __future__ import annotations

from contextlib import contextmanager

from .recorder import NULL_RECORDER, NullRecorder, Recorder, Span
from .report import REPORT_FORMAT, RunReport

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "REPORT_FORMAT",
    "Recorder",
    "RunReport",
    "Span",
    "count",
    "get_recorder",
    "recording",
    "set_recorder",
]

_current = NULL_RECORDER


def get_recorder():
    """The process-wide current recorder (the no-op one by default)."""
    return _current


def set_recorder(recorder) -> None:
    """Install ``recorder`` as the process-wide current recorder."""
    global _current
    _current = recorder if recorder is not None else NULL_RECORDER


@contextmanager
def recording(recorder):
    """Scope ``recorder`` as the current recorder, restoring on exit."""
    global _current
    previous = _current
    _current = recorder if recorder is not None else NULL_RECORDER
    try:
        yield _current
    finally:
        _current = previous


def count(name: str, n: int = 1) -> None:
    """Increment a counter on the current recorder (no-op by default)."""
    _current.count(name, n)
