"""IrGL-style graph algorithm DSL: AST, builders and validation."""

from .ast import (
    AtomicRMW,
    Fixpoint,
    Invoke,
    IterationSpace,
    Kernel,
    Load,
    NeighborLoop,
    Program,
    Push,
    ScheduleNode,
    Store,
)
from .builder import (
    edge_kernel,
    fixpoint_program,
    phased_program,
    relax_kernel,
    topology_kernel,
)
from .validate import validate_kernel, validate_program

__all__ = [
    "AtomicRMW",
    "Fixpoint",
    "Invoke",
    "IterationSpace",
    "Kernel",
    "Load",
    "NeighborLoop",
    "Program",
    "Push",
    "ScheduleNode",
    "Store",
    "relax_kernel",
    "topology_kernel",
    "edge_kernel",
    "fixpoint_program",
    "phased_program",
    "validate_kernel",
    "validate_program",
]
