"""Convenience constructors for common DSL program shapes.

Graph algorithms in the study reuse a small number of kernel shapes:
data-driven relaxation (worklist in, neighbour loop, atomic update,
worklist out), topology-driven sweeps, and edge-centric scans.  These
helpers build those shapes with the correct operation annotations so
applications stay concise and consistent.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ocl.memory import AccessPattern, AtomicOp, MemoryRegion
from .ast import (
    AtomicRMW,
    Fixpoint,
    Invoke,
    IterationSpace,
    Kernel,
    Load,
    NeighborLoop,
    Program,
    Push,
    Store,
)
from .validate import validate_program

__all__ = [
    "relax_kernel",
    "topology_kernel",
    "edge_kernel",
    "fixpoint_program",
    "phased_program",
]


def relax_kernel(
    name: str,
    update_field: str,
    atomic_op: AtomicOp = AtomicOp.MIN,
    space: IterationSpace = IterationSpace.WORKLIST,
    push: bool = True,
    read_weights: bool = False,
) -> Kernel:
    """Data-driven relaxation kernel (BFS/SSSP/CC work-item shape).

    Each active node walks its out-edges, reads the neighbour's value
    (irregular access), atomically improves it, and pushes improved
    neighbours to the output worklist.
    """
    inner: list = [
        Load(update_field, AccessPattern.IRREGULAR),
        AtomicRMW(update_field, atomic_op, MemoryRegion.GLOBAL),
    ]
    if read_weights:
        inner.insert(0, Load("edge_weight", AccessPattern.COALESCED))
    if push:
        inner.append(Push())
    return Kernel(
        name,
        space,
        ops=[
            Load(update_field, AccessPattern.COALESCED),
            NeighborLoop(inner),
        ],
    )


def topology_kernel(
    name: str,
    read_field: str,
    write_field: str,
    neighbor_reads: bool = True,
    atomic: Optional[AtomicOp] = None,
    convergence_flag: bool = True,
) -> Kernel:
    """Topology-driven sweep over all nodes.

    Reads a per-node field, optionally gathers from all neighbours
    (irregular), writes a per-node result and raises the global
    convergence flag via an uncontended atomic when something changed.
    """
    inner: list = []
    if neighbor_reads:
        inner.append(Load(read_field, AccessPattern.IRREGULAR))
    if atomic is not None:
        inner.append(AtomicRMW(write_field, atomic, MemoryRegion.GLOBAL))
    ops: list = [Load(read_field, AccessPattern.COALESCED)]
    if inner:
        ops.append(NeighborLoop(inner))
    ops.append(Store(write_field, AccessPattern.COALESCED))
    if convergence_flag:
        ops.append(
            AtomicRMW("changed", AtomicOp.MAX, MemoryRegion.GLOBAL, contended=True)
        )
    return Kernel(name, IterationSpace.ALL_NODES, ops=ops)


def edge_kernel(
    name: str,
    read_fields: Sequence[str],
    write_field: Optional[str] = None,
    atomic: Optional[AtomicOp] = None,
) -> Kernel:
    """Edge-centric kernel: one work item per edge, no inner loop."""
    ops: list = [Load(f, AccessPattern.IRREGULAR) for f in read_fields]
    if atomic is not None and write_field is not None:
        ops.append(AtomicRMW(write_field, atomic, MemoryRegion.GLOBAL))
    elif write_field is not None:
        ops.append(Store(write_field, AccessPattern.COALESCED))
    return Kernel(name, IterationSpace.ALL_EDGES, ops=ops)


def fixpoint_program(
    name: str,
    kernels: Sequence[Kernel],
    convergence: str = "worklist-empty",
    init_kernel: Optional[Kernel] = None,
    description: str = "",
) -> Program:
    """A program that iterates ``kernels`` until convergence.

    The dominant shape in the suite: optional one-shot initialisation
    kernel followed by a fixpoint loop over the main kernels.
    """
    all_kernels = ([init_kernel] if init_kernel else []) + list(kernels)
    schedule: list = []
    if init_kernel is not None:
        schedule.append(Invoke(init_kernel.name))
    schedule.append(
        Fixpoint([Invoke(k.name) for k in kernels], convergence=convergence)
    )
    program = Program(name, all_kernels, schedule, description=description)
    validate_program(program)
    return program


def phased_program(
    name: str,
    phases: Sequence[object],
    description: str = "",
) -> Program:
    """A program with an explicit mixed schedule.

    ``phases`` interleaves :class:`Kernel` objects (invoked once, in
    order) and ``(kernels, convergence)`` tuples (fixpoint loops).
    """
    kernels: list = []
    schedule: list = []
    for phase in phases:
        if isinstance(phase, Kernel):
            kernels.append(phase)
            schedule.append(Invoke(phase.name))
        else:
            loop_kernels, convergence = phase
            kernels.extend(loop_kernels)
            schedule.append(
                Fixpoint(
                    [Invoke(k.name) for k in loop_kernels],
                    convergence=convergence,
                )
            )
    program = Program(name, kernels, schedule, description=description)
    validate_program(program)
    return program
