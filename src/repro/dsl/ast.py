"""AST for the IrGL-style graph-algorithm DSL.

The DSL mirrors the structure IrGL gives graph algorithms: a *program*
is a host-side schedule (straight-line kernel invocations and
fixpoint loops) over *kernels*; a kernel iterates over an iteration
space (all nodes, all edges, or a dynamic worklist) and its body is a
tree of *operations* — optionally containing one irregular
``NeighborLoop`` (the nested-parallelism target), memory accesses with
declared spatial patterns, atomic read-modify-writes and worklist
pushes.

The AST is deliberately operation-granular rather than
expression-granular: it captures exactly the structure the paper's
optimisations transform (Table VI's performance parameters), while the
algorithms' value-level semantics are bound separately as vectorised
step functions (see :mod:`repro.runtime.executor`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..ocl.memory import AccessPattern, AtomicOp, MemoryRegion

__all__ = [
    "IterationSpace",
    "Op",
    "Load",
    "Store",
    "AtomicRMW",
    "Push",
    "NeighborLoop",
    "Kernel",
    "Invoke",
    "Fixpoint",
    "ScheduleNode",
    "Program",
]


class IterationSpace(enum.Enum):
    """What a kernel's outer parallel loop ranges over."""

    ALL_NODES = "all_nodes"  # topology-driven
    ALL_EDGES = "all_edges"  # edge-centric
    WORKLIST = "worklist"  # data-driven


@dataclass(frozen=True)
class Op:
    """Base class for kernel body operations."""


@dataclass(frozen=True)
class Load(Op):
    """Read of a named field with a declared access pattern."""

    field_name: str
    pattern: AccessPattern = AccessPattern.COALESCED
    region: MemoryRegion = MemoryRegion.GLOBAL


@dataclass(frozen=True)
class Store(Op):
    """Write of a named field with a declared access pattern."""

    field_name: str
    pattern: AccessPattern = AccessPattern.COALESCED
    region: MemoryRegion = MemoryRegion.GLOBAL


@dataclass(frozen=True)
class AtomicRMW(Op):
    """Atomic read-modify-write.

    ``contended`` marks single-location hot spots (worklist tails,
    global accumulators) whose RMWs serialise — the target of the
    cooperative-conversion optimisation.
    """

    field_name: str
    op: AtomicOp = AtomicOp.ADD
    region: MemoryRegion = MemoryRegion.GLOBAL
    contended: bool = False


@dataclass(frozen=True)
class Push(Op):
    """Append an item to the global output worklist.

    Implemented as one contended global RMW (tail-pointer bump) plus a
    payload store; cooperative conversion aggregates these across a
    subgroup or workgroup.
    """

    worklist: str = "out_wl"


@dataclass(frozen=True)
class NeighborLoop(Op):
    """The irregular inner loop over a node's out-edges.

    This is the nested-parallelism target: its trip count is the node's
    degree, so the outer ``ALL_NODES``/``WORKLIST`` loop is load-
    imbalanced exactly when the degree distribution is skewed.
    """

    ops: Tuple[Op, ...] = ()

    def __init__(self, ops: Sequence[Op] = ()) -> None:
        object.__setattr__(self, "ops", tuple(ops))


@dataclass(frozen=True)
class Kernel:
    """One device kernel: iteration space plus operation tree."""

    name: str
    space: IterationSpace
    ops: Tuple[Op, ...] = ()
    workgroup_size_agnostic: bool = True  # required by sz256 (Section V-D)

    def __init__(
        self,
        name: str,
        space: IterationSpace,
        ops: Sequence[Op] = (),
        workgroup_size_agnostic: bool = True,
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "ops", tuple(ops))
        object.__setattr__(
            self, "workgroup_size_agnostic", workgroup_size_agnostic
        )

    # -- structural queries (used by compiler passes) -------------------

    def walk(self) -> Iterator[Op]:
        """Depth-first iteration over all operations in the body."""

        def _walk(ops: Tuple[Op, ...]) -> Iterator[Op]:
            for op in ops:
                yield op
                if isinstance(op, NeighborLoop):
                    yield from _walk(op.ops)

        return _walk(self.ops)

    @property
    def neighbor_loops(self) -> List[NeighborLoop]:
        return [op for op in self.ops if isinstance(op, NeighborLoop)]

    @property
    def has_neighbor_loop(self) -> bool:
        return bool(self.neighbor_loops)

    @property
    def pushes(self) -> List[Push]:
        return [op for op in self.walk() if isinstance(op, Push)]

    @property
    def contended_atomics(self) -> List[AtomicRMW]:
        return [
            op
            for op in self.walk()
            if isinstance(op, AtomicRMW) and op.contended
        ]

    @property
    def uncontended_atomics(self) -> List[AtomicRMW]:
        return [
            op
            for op in self.walk()
            if isinstance(op, AtomicRMW) and not op.contended
        ]

    @property
    def irregular_accesses(self) -> List[Union[Load, Store]]:
        return [
            op
            for op in self.walk()
            if isinstance(op, (Load, Store))
            and op.pattern is AccessPattern.IRREGULAR
        ]

    def inner_ops_of_kind(self, kind: type) -> List[Op]:
        """Ops of ``kind`` inside neighbour loops (per-edge operations)."""
        found: List[Op] = []
        for loop in self.neighbor_loops:
            stack = list(loop.ops)
            while stack:
                op = stack.pop()
                if isinstance(op, kind):
                    found.append(op)
                if isinstance(op, NeighborLoop):
                    stack.extend(op.ops)
        return found


@dataclass(frozen=True)
class Invoke:
    """Schedule node: launch one kernel once."""

    kernel: str


@dataclass(frozen=True)
class Fixpoint:
    """Schedule node: repeat a body of invocations until convergence.

    ``convergence`` names the mechanism the host uses to detect the
    fixed point — an empty worklist or a device-written flag — each of
    which costs one device-to-host copy per iteration unless the whole
    loop is outlined to the device (``oitergb``).
    """

    body: Tuple[Invoke, ...]
    convergence: str = "worklist-empty"  # or "flag"

    def __init__(
        self, body: Sequence[Invoke], convergence: str = "worklist-empty"
    ) -> None:
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "convergence", convergence)


ScheduleNode = Union[Invoke, Fixpoint]


@dataclass(frozen=True)
class Program:
    """A complete DSL program: kernels plus a host schedule."""

    name: str
    kernels: Tuple[Kernel, ...]
    schedule: Tuple[ScheduleNode, ...]
    description: str = ""

    def __init__(
        self,
        name: str,
        kernels: Sequence[Kernel],
        schedule: Sequence[ScheduleNode],
        description: str = "",
    ) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "kernels", tuple(kernels))
        object.__setattr__(self, "schedule", tuple(schedule))
        object.__setattr__(self, "description", description)

    def kernel(self, name: str) -> Kernel:
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(f"program {self.name!r} has no kernel {name!r}")

    @property
    def kernel_names(self) -> List[str]:
        return [k.name for k in self.kernels]

    @property
    def uses_worklist(self) -> bool:
        return any(k.space is IterationSpace.WORKLIST for k in self.kernels) or any(
            k.pushes for k in self.kernels
        )

    @property
    def fixpoints(self) -> List[Fixpoint]:
        return [node for node in self.schedule if isinstance(node, Fixpoint)]

    @property
    def has_fixpoint(self) -> bool:
        return bool(self.fixpoints)

    def invocations(self) -> Iterator[Tuple[Optional[Fixpoint], Invoke]]:
        """All invocations with their enclosing fixpoint (or None)."""
        for node in self.schedule:
            if isinstance(node, Invoke):
                yield None, node
            else:
                for inv in node.body:
                    yield node, inv
