"""Structural validation of DSL programs.

The compiler assumes programs are well-formed; this module enforces
that before any pass runs.  Checks are deliberately conservative —
each corresponds to an assumption some optimisation pass relies on.
"""

from __future__ import annotations

from typing import List

from ..errors import DSLError
from .ast import Fixpoint, Invoke, Kernel, NeighborLoop, Program

__all__ = ["validate_program", "validate_kernel"]


def validate_kernel(kernel: Kernel) -> None:
    """Raise :class:`DSLError` if ``kernel`` is structurally invalid."""
    if not kernel.name:
        raise DSLError("kernel must have a non-empty name")
    if not kernel.name.isidentifier():
        raise DSLError(f"kernel name {kernel.name!r} must be an identifier")
    # Nested-parallelism passes handle exactly one level of irregular
    # nesting, matching IrGL's inspector/executor generation.
    for loop in kernel.neighbor_loops:
        for op in loop.ops:
            if isinstance(op, NeighborLoop):
                raise DSLError(
                    f"kernel {kernel.name!r}: nested NeighborLoops are not "
                    "supported (one irregular level, as in IrGL)"
                )
    if not kernel.workgroup_size_agnostic:
        raise DSLError(
            f"kernel {kernel.name!r}: kernels must be workgroup-size "
            "agnostic (required by the sz256 optimisation, Section V-D)"
        )


def validate_program(program: Program) -> None:
    """Raise :class:`DSLError` if ``program`` is structurally invalid."""
    if not program.kernels:
        raise DSLError(f"program {program.name!r} has no kernels")
    names: List[str] = []
    for kernel in program.kernels:
        validate_kernel(kernel)
        if kernel.name in names:
            raise DSLError(
                f"program {program.name!r}: duplicate kernel {kernel.name!r}"
            )
        names.append(kernel.name)

    if not program.schedule:
        raise DSLError(f"program {program.name!r} has an empty schedule")

    for node in program.schedule:
        if isinstance(node, Invoke):
            _check_invoke(program, node, names)
        elif isinstance(node, Fixpoint):
            if not node.body:
                raise DSLError(
                    f"program {program.name!r}: fixpoint with empty body"
                )
            if node.convergence not in ("worklist-empty", "flag"):
                raise DSLError(
                    f"program {program.name!r}: unknown convergence "
                    f"mechanism {node.convergence!r}"
                )
            for inv in node.body:
                _check_invoke(program, inv, names)
        else:  # pragma: no cover - defensive
            raise DSLError(
                f"program {program.name!r}: unknown schedule node {node!r}"
            )

    _check_worklist_consistency(program)


def _check_invoke(program: Program, invoke: Invoke, names: List[str]) -> None:
    if invoke.kernel not in names:
        raise DSLError(
            f"program {program.name!r}: schedule invokes unknown kernel "
            f"{invoke.kernel!r}"
        )


def _check_worklist_consistency(program: Program) -> None:
    """Worklist-driven kernels need a producer of worklist items.

    A kernel iterating a worklist inside a fixpoint must be fed either
    by its own pushes or by another kernel in the same fixpoint body;
    otherwise the loop trivially terminates after one iteration and the
    program author almost certainly made a mistake.
    """
    from .ast import IterationSpace

    for fixpoint in program.fixpoints:
        body_kernels = [program.kernel(inv.kernel) for inv in fixpoint.body]
        consumes = any(
            k.space is IterationSpace.WORKLIST for k in body_kernels
        )
        produces = any(k.pushes for k in body_kernels)
        if (
            consumes
            and not produces
            and fixpoint.convergence == "worklist-empty"
        ):
            raise DSLError(
                f"program {program.name!r}: fixpoint consumes a worklist "
                "but no kernel in its body pushes to one"
            )
