"""The ``coop-cv`` pass: cooperative conversion (paper Section V-A).

Contended global atomic RMWs — worklist tail bumps and hot
accumulators — are aggregated across the subgroup: threads communicate
their contributions through local memory, a leader performs one RMW
for the whole subgroup, and the result is broadcast back.  This trades
``sg_size`` serialised global RMWs for one RMW plus subgroup
orchestration (two subgroup barriers and local-memory traffic).

OpenCL generalisation: unlike CUDA warps, OpenCL subgroups need not
run in lockstep, so subgroup operations must be *uniform* — the
compiler equalises loop trip counts and predicates off surplus
iterations, which costs a small fraction of extra work on
non-lockstep chips (recorded as ``predication_overhead``).
"""

from __future__ import annotations

from ...chips.model import ChipModel
from ..options import OptConfig
from ..plan import KernelPlan

__all__ = ["apply_coop_cv", "COOP_LOCAL_BYTES_PER_THREAD", "PREDICATION_OVERHEAD"]

#: Local-memory staging buffer per thread for aggregation payloads.
COOP_LOCAL_BYTES_PER_THREAD = 8

#: Extra (predicated-off) work fraction for uniform subgroup branches
#: on chips whose subgroups do not execute in lockstep, and the
#: smaller staging overhead that remains even on lockstep hardware
#: (the paper's sg-cmb measures a 0.88x slowdown on Nvidia).
PREDICATION_OVERHEAD = 0.14
LOCKSTEP_STAGING_OVERHEAD = 0.11


def apply_coop_cv(
    plan: KernelPlan, chip: ChipModel, config: OptConfig
) -> KernelPlan:
    """Apply cooperative conversion when enabled and applicable.

    The pass is a no-op for kernels with nothing to aggregate (no
    pushes and no contended atomics).  It still applies on chips whose
    JIT already combines (Nvidia, HD5500 — paper Section VIII-b): the
    compiler cannot know that; the *performance model* is where the
    redundancy shows up as zero benefit.
    """
    if not config.coop_cv:
        return plan
    kernel = plan.kernel
    n_targets = len(kernel.pushes) + len(kernel.contended_atomics)
    if n_targets == 0:
        return plan.add_note("coop-cv: no aggregatable RMWs; not applied")

    predication = (
        LOCKSTEP_STAGING_OVERHEAD
        if chip.lockstep_subgroups
        else PREDICATION_OVERHEAD
    )
    plan = plan.with_(
        coop_scope="subgroup",
        local_mem_bytes=plan.local_mem_bytes
        + COOP_LOCAL_BYTES_PER_THREAD * plan.wg_size,
        sg_barriers_per_chunk=plan.sg_barriers_per_chunk + 2.0,
        predication_overhead=plan.predication_overhead + predication,
    )
    return plan.add_note(
        f"coop-cv: {n_targets} contended RMW site(s) aggregated at "
        f"subgroup scope (sg_size={plan.sg_size})"
    )
