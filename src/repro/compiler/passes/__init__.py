"""Compiler optimisation passes, one module per paper optimisation."""

from .coop_cv import apply_coop_cv
from .iteration_outlining import apply_iteration_outlining
from .nested_parallelism import apply_nested_parallelism
from .workgroup_size import apply_workgroup_size

__all__ = [
    "apply_coop_cv",
    "apply_iteration_outlining",
    "apply_nested_parallelism",
    "apply_workgroup_size",
]
