"""The ``oitergb`` pass: iteration outlining (paper Section V-C).

Fixpoint loops whose per-iteration kernels are short are dominated by
kernel-launch latency and the per-iteration device-to-host convergence
copy.  Iteration outlining moves the host loop onto the device: the
kernels become device function calls separated by a *portable global
barrier*, so the whole fixpoint costs one launch.

The crux is the global barrier's functional portability: OpenCL gives
no inter-workgroup forward-progress guarantee, so the generated code
follows the occupancy-discovery recipe — it queries the safe
co-resident workgroup count at runtime and launches exactly that many
workgroups, virtualising the rest of the iteration space inside them.
This pass performs that discovery against the chip model (accounting
for the plan's CU-local memory demand) and refuses configurations
whose kernels cannot be resident at all.
"""

from __future__ import annotations

from typing import Dict

from ...chips.model import ChipModel
from ...ocl.progress import validate_global_barrier
from ..options import OptConfig
from ..plan import ExecutablePlan, KernelPlan

__all__ = ["apply_iteration_outlining"]


def apply_iteration_outlining(
    plan: ExecutablePlan, chip: ChipModel, config: OptConfig
) -> ExecutablePlan:
    """Outline the program's fixpoint loops onto the device."""
    if not config.oitergb:
        return plan
    if not plan.program.has_fixpoint:
        # Nothing to outline: a straight-line program has no
        # iteration structure; the optimisation degenerates to a no-op.
        return plan

    # The outlined mega-kernel's resource demand is the maximum over
    # the kernels it inlines (they share one launch).
    local_mem = plan.max_local_mem_bytes
    occupancy = chip.occupancy(config.wg_size, local_mem)
    validate_global_barrier(occupancy, occupancy)

    kernels: Dict[str, KernelPlan] = {
        name: kp.add_note(
            "oitergb: launch outlined to device; iterations synchronise "
            f"via a global barrier over {occupancy} workgroups"
        )
        for name, kp in plan.kernels.items()
    }
    from dataclasses import replace

    return replace(
        plan, kernels=kernels, outlined=True, outlined_workgroups=occupancy
    )
