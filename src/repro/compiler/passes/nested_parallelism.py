"""The nested-parallelism (``np``) passes: ``wg``, ``sg``, ``fg`` (Section V-B).

The inner :class:`~repro.dsl.ast.NeighborLoop` of a graph kernel is
irregular — its trip count is the node's degree — so distributing one
node per thread load-imbalances exactly when degrees are skewed.  The
pass generates inspector/executor pairs that redistribute inner-loop
iterations at three granularities:

* ``wg``: nodes with degree ≥ the workgroup threshold are processed by
  the whole workgroup, one at a time (serialised outer loop).  The
  inspector needs a leader-election idiom with concurrent same-location
  writes; OpenCL deems the racy CUDA version undefined, so the
  generated code uses OpenCL 2.0 atomic operations (costlier on chips
  that only emulate them).
* ``sg``: nodes with degree ≥ the subgroup threshold are handled by
  their subgroup.  Requires uniform subgroup execution (predication),
  as with cooperative conversion.
* ``fg``/``fg8``: remaining iterations are linearised across the
  workgroup via a local-memory prefix sum, each thread executing
  ``fg_edges`` edges per executor round.

All three compose; thresholds ensure each node is handled by exactly
one scheme, with the coarser scheme taking the heavier nodes.
"""

from __future__ import annotations

from ...chips.model import ChipModel
from ..options import OptConfig
from ..plan import KernelPlan

__all__ = [
    "apply_nested_parallelism",
    "WG_LOCAL_BYTES_PER_THREAD",
    "SG_LOCAL_BYTES_PER_THREAD",
    "FG_LOCAL_BYTES_PER_THREAD",
]

#: Local-memory demand of each scheme's inspector/executor buffers.
WG_LOCAL_BYTES_PER_THREAD = 12
SG_LOCAL_BYTES_PER_THREAD = 8
FG_LOCAL_BYTES_PER_THREAD = 16

#: Uniform-branch predication overhead on non-lockstep subgroup chips.
_SG_PREDICATION_OVERHEAD = 0.03


def apply_nested_parallelism(
    plan: KernelPlan, chip: ChipModel, config: OptConfig
) -> KernelPlan:
    """Apply the enabled nested-parallelism schemes to one kernel."""
    if not config.uses_nested_parallelism:
        return plan
    if not plan.kernel.has_neighbor_loop:
        return plan.add_note("np: kernel has no irregular inner loop; not applied")

    local_bytes = plan.local_mem_bytes
    wg_barriers = plan.wg_barriers_per_chunk
    sg_barriers = plan.sg_barriers_per_chunk
    predication = plan.predication_overhead
    notes = []

    wg_threshold = 0
    sg_threshold = 0

    if config.wg:
        # Heaviest nodes: whole-workgroup cooperation.  Threshold is
        # the workgroup size — below that a workgroup cannot be filled.
        wg_threshold = plan.wg_size
        local_bytes += WG_LOCAL_BYTES_PER_THREAD * plan.wg_size
        wg_barriers += 2.0  # leader election + work announcement
        notes.append(
            f"np/wg: degree>={wg_threshold} nodes redistributed across the "
            "workgroup (leader election via OpenCL 2.0 atomics)"
        )

    if config.sg:
        sg_threshold = max(plan.sg_size, 1)
        local_bytes += SG_LOCAL_BYTES_PER_THREAD * plan.wg_size
        sg_barriers += 2.0
        # Separating sg execution from the rest of the kernel requires
        # workgroup barriers around the phase (the structural source of
        # the paper's MALI memory-divergence finding).
        wg_barriers += 1.0
        if not chip.lockstep_subgroups:
            predication += _SG_PREDICATION_OVERHEAD
        notes.append(
            f"np/sg: degree>={sg_threshold} nodes redistributed across the "
            f"subgroup (sg_size={plan.sg_size})"
        )

    fg_edges = config.fg
    if fg_edges is not None:
        local_bytes += FG_LOCAL_BYTES_PER_THREAD * plan.wg_size
        wg_barriers += 2.0  # prefix-sum inspector + executor hand-off
        notes.append(
            f"np/fg: remaining iterations linearised across the workgroup, "
            f"{fg_edges} edge(s) per executor round"
        )

    plan = plan.with_(
        wg_scheme=config.wg,
        sg_scheme=config.sg,
        fg_edges=fg_edges,
        wg_threshold=wg_threshold,
        sg_threshold=sg_threshold,
        local_mem_bytes=local_bytes,
        wg_barriers_per_chunk=wg_barriers,
        sg_barriers_per_chunk=sg_barriers,
        predication_overhead=predication,
        leader_election_atomics=plan.leader_election_atomics or config.wg,
    )
    for note in notes:
        plan = plan.add_note(note)
    return plan
