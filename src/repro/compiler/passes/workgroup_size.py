"""The ``sz256`` pass: workgroup resizing (paper Section V-D).

Functionally trivial — the DSL guarantees workgroup-size-agnostic
kernels — but performance-relevant through occupancy: larger
workgroups consume more CU-local resources per schedulable unit.
The pass also enforces the legality constraint that motivated the
paper's choice of 128 as the default: the target chip must support
the requested size.
"""

from __future__ import annotations

from ...chips.model import ChipModel
from ...errors import InvalidConfigError
from ..options import OptConfig
from ..plan import KernelPlan

__all__ = ["apply_workgroup_size"]


def apply_workgroup_size(
    plan: KernelPlan, chip: ChipModel, config: OptConfig
) -> KernelPlan:
    """Set the launch workgroup size, validating chip support."""
    if not chip.supports_wg_size(config.wg_size):
        raise InvalidConfigError(
            f"chip {chip.short_name} supports workgroup sizes up to "
            f"{chip.max_wg_size}; cannot launch with {config.wg_size}"
        )
    if not plan.kernel.workgroup_size_agnostic:
        raise InvalidConfigError(
            f"kernel {plan.kernel.name!r} is not workgroup-size agnostic"
        )
    plan = plan.with_(wg_size=config.wg_size)
    if config.wg_size != 128:
        plan = plan.add_note(f"sz256: workgroup size set to {config.wg_size}")
    return plan
