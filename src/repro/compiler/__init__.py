"""Optimising compiler: configuration space, passes and plan IR."""

from .options import (
    BASELINE,
    OPT_NAMES,
    OptConfig,
    configs_with,
    describe_optimisation,
    disable_opt,
    enumerate_configs,
)
from .pipeline import PlanCache, compile_cached, compile_program, plan_cache
from .plan import ExecutablePlan, KernelPlan

__all__ = [
    "BASELINE",
    "OPT_NAMES",
    "OptConfig",
    "configs_with",
    "describe_optimisation",
    "disable_opt",
    "enumerate_configs",
    "PlanCache",
    "compile_cached",
    "compile_program",
    "plan_cache",
    "ExecutablePlan",
    "KernelPlan",
]
