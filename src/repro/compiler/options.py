"""The optimisation space of the study (paper Section V-E).

Six optimisation axes combine into **96 configurations** — the
baseline (all off) plus the paper's "95 optimisation combinations":

* ``coop-cv`` — cooperative conversion of contended atomic RMWs;
* ``wg``      — nested parallelism, workgroup-level work redistribution;
* ``sg``      — nested parallelism, subgroup-level work redistribution;
* ``fg`` / ``fg8`` — nested parallelism, fine-grained edge
  linearisation processing 1 or 8 edges per executor iteration
  (mutually exclusive variants of one numeric parameter);
* ``oitergb`` — iteration outlining using a portable global barrier;
* ``sz256``   — workgroup size 256 instead of the default 128.

:class:`OptConfig` is the canonical value passed between the compiler,
the study harness and the statistical analysis; optimisation *names*
(strings above) are the vocabulary of the analysis (Algorithm 1 treats
each name as one binary optimisation, exactly as the paper does).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import FrozenSet, Iterable, List, Optional, Tuple

from ..errors import InvalidConfigError

__all__ = [
    "OptConfig",
    "OPT_NAMES",
    "BASELINE",
    "enumerate_configs",
    "configs_with",
    "disable_opt",
    "describe_optimisation",
]

#: Analysis vocabulary, in the paper's presentation order.
OPT_NAMES: Tuple[str, ...] = (
    "coop-cv",
    "wg",
    "sg",
    "fg",
    "fg8",
    "oitergb",
    "sz256",
)

#: Paper Table VI: the architectural parameters each optimisation's
#: profitability depends on.
_OPT_PERFORMANCE_PARAMETERS = {
    "coop-cv": (
        "workgroup size, subgroup size, atomic read-modify-write "
        "throughput, subgroup collectives throughput"
    ),
    "fg": "local memory, workgroup-barriers",
    "fg8": "local memory, workgroup-barriers",
    "sg": "subgroup size, subgroup-barrier throughput, local memory constraints",
    "wg": (
        "workgroup size, local memory constraints, workgroup-barrier "
        "throughput, workgroup atomic load/store throughput"
    ),
    "oitergb": (
        "kernel launch and host-device memory transfer overhead, global "
        "synchronisation, inter-workgroup scheduler"
    ),
    "sz256": "occupancy, workgroup-local resource limits",
}


def describe_optimisation(name: str) -> str:
    """Table VI's performance-parameters entry for an optimisation."""
    try:
        return _OPT_PERFORMANCE_PARAMETERS[name]
    except KeyError:
        raise InvalidConfigError(
            f"unknown optimisation {name!r}; known: {', '.join(OPT_NAMES)}"
        ) from None


@dataclass(frozen=True, order=True)
class OptConfig:
    """One point of the optimisation space.

    ``fg`` holds the fine-grained edges-per-iteration parameter
    (``None`` disabled, else 1 or 8); ``wg_size`` holds the workgroup
    size (128 default, 256 when ``sz256`` is enabled).  All other axes
    are independent booleans.
    """

    coop_cv: bool = False
    wg: bool = False
    sg: bool = False
    fg: Optional[int] = None
    oitergb: bool = False
    wg_size: int = 128

    def __post_init__(self) -> None:
        if self.fg not in (None, 1, 8):
            raise InvalidConfigError(
                f"fg must be None, 1 or 8 (got {self.fg!r}); the study "
                "considers exactly the fg1 and fg8 variants"
            )
        if self.wg_size not in (128, 256):
            raise InvalidConfigError(
                f"workgroup size must be 128 or 256 (got {self.wg_size})"
            )

    # -- name-based view (the analysis vocabulary) ----------------------

    def enabled_names(self) -> FrozenSet[str]:
        """The set of enabled optimisation names."""
        names = set()
        if self.coop_cv:
            names.add("coop-cv")
        if self.wg:
            names.add("wg")
        if self.sg:
            names.add("sg")
        if self.fg == 1:
            names.add("fg")
        elif self.fg == 8:
            names.add("fg8")
        if self.oitergb:
            names.add("oitergb")
        if self.wg_size == 256:
            names.add("sz256")
        return frozenset(names)

    def has(self, name: str) -> bool:
        if name not in OPT_NAMES:
            raise InvalidConfigError(f"unknown optimisation {name!r}")
        return name in self.enabled_names()

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "OptConfig":
        """Build a configuration from optimisation names."""
        names = set(names)
        unknown = names - set(OPT_NAMES)
        if unknown:
            raise InvalidConfigError(
                f"unknown optimisations: {', '.join(sorted(unknown))}"
            )
        if "fg" in names and "fg8" in names:
            raise InvalidConfigError("fg and fg8 are mutually exclusive")
        fg: Optional[int] = 1 if "fg" in names else (8 if "fg8" in names else None)
        return cls(
            coop_cv="coop-cv" in names,
            wg="wg" in names,
            sg="sg" in names,
            fg=fg,
            oitergb="oitergb" in names,
            wg_size=256 if "sz256" in names else 128,
        )

    @property
    def is_baseline(self) -> bool:
        return not self.enabled_names()

    @property
    def uses_nested_parallelism(self) -> bool:
        return self.wg or self.sg or self.fg is not None

    def label(self) -> str:
        """Human-readable label, e.g. ``"wg, fg8"`` (paper Table III)."""
        if self.is_baseline:
            return "baseline"
        return ", ".join(n for n in OPT_NAMES if n in self.enabled_names())

    def key(self) -> str:
        """Stable machine key used in dataset storage."""
        return "+".join(sorted(self.enabled_names())) or "baseline"


BASELINE = OptConfig()


def enumerate_configs(include_baseline: bool = True) -> List[OptConfig]:
    """All configurations of the space, in a stable order.

    96 with the baseline, 95 without — the counts the paper reports.
    """
    configs = [
        OptConfig(coop_cv=cc, wg=wg, sg=sg, fg=fg, oitergb=oi, wg_size=ws)
        for cc, wg, sg, fg, oi, ws in itertools.product(
            (False, True),
            (False, True),
            (False, True),
            (None, 1, 8),
            (False, True),
            (128, 256),
        )
    ]
    if not include_baseline:
        configs = [c for c in configs if not c.is_baseline]
    return configs


def disable_opt(config: OptConfig, name: str) -> OptConfig:
    """The *mirror* configuration with one optimisation turned off.

    Used by Algorithm 1 (line 12): the mirror differs from ``config``
    only in ``name`` being disabled — ``fg``/``fg8`` drop to no
    fine-grained scheme, ``sz256`` drops to workgroup size 128.
    """
    if name not in OPT_NAMES:
        raise InvalidConfigError(f"unknown optimisation {name!r}")
    if name == "coop-cv":
        return replace(config, coop_cv=False)
    if name == "wg":
        return replace(config, wg=False)
    if name == "sg":
        return replace(config, sg=False)
    if name == "fg":
        return replace(config, fg=None if config.fg == 1 else config.fg)
    if name == "fg8":
        return replace(config, fg=None if config.fg == 8 else config.fg)
    if name == "oitergb":
        return replace(config, oitergb=False)
    return replace(config, wg_size=128)


def configs_with(name: str, enabled: bool = True) -> List[OptConfig]:
    """All configurations where optimisation ``name`` is on (or off).

    This is Algorithm 1's ``ALL_OPT_SETTINGS(opt)``.
    """
    if name not in OPT_NAMES:
        raise InvalidConfigError(f"unknown optimisation {name!r}")
    return [c for c in enumerate_configs() if c.has(name) == enabled]
