"""Compiler driver: program + configuration + chip → executable plan.

Pass order matters and mirrors the generation order of the original
compiler: workgroup sizing first (it scales every later resource
computation), then the intra-kernel transformations (nested
parallelism, cooperative conversion), then whole-program iteration
outlining (which needs the final per-kernel resource demands to
discover a safe global-barrier occupancy).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

from ..chips.model import ChipModel
from ..dsl.ast import Program
from ..dsl.validate import validate_program
from ..errors import CompileError
from .options import OptConfig
from .passes.coop_cv import apply_coop_cv
from .passes.iteration_outlining import apply_iteration_outlining
from .passes.nested_parallelism import apply_nested_parallelism
from .passes.workgroup_size import apply_workgroup_size
from .plan import ExecutablePlan, KernelPlan

__all__ = ["PlanCache", "compile_cached", "compile_program", "plan_cache"]


def compile_program(
    program: Program, chip: ChipModel, config: OptConfig
) -> ExecutablePlan:
    """Compile ``program`` for ``chip`` under ``config``.

    Raises :class:`~repro.errors.InvalidConfigError` for configurations
    illegal on the chip (unsupported workgroup size) and
    :class:`~repro.errors.ForwardProgressError` when ``oitergb`` cannot
    construct a safe global barrier.
    """
    validate_program(program)

    kernels: Dict[str, KernelPlan] = {}
    for kernel in program.kernels:
        plan = KernelPlan(
            kernel=kernel,
            wg_size=config.wg_size,
            sg_size=chip.sg_size if chip.supports_subgroups else 1,
        )
        plan = apply_workgroup_size(plan, chip, config)
        plan = apply_nested_parallelism(plan, chip, config)
        plan = apply_coop_cv(plan, chip, config)
        if plan.local_mem_bytes > chip.cu.local_mem_bytes:
            raise CompileError(
                f"kernel {kernel.name!r} needs {plan.local_mem_bytes} B of "
                f"local memory under [{config.label()}] but chip "
                f"{chip.short_name} has {chip.cu.local_mem_bytes} B per CU"
            )
        kernels[kernel.name] = plan

    plan = ExecutablePlan(
        program=program, chip=chip, config=config, kernels=kernels
    )
    plan = apply_iteration_outlining(plan, chip, config)
    return plan


class PlanCache:
    """LRU of compiled plans keyed by (program, chip, configuration).

    A study sweep compiles every program once per (chip, configuration)
    point; the plan depends only on that triple, so hoisting the
    compilation behind a cache removes it from the sweep's inner loop.
    Keys use ``program.name`` / ``chip.short_name`` /
    ``config.key()`` — the cached program object is re-verified by
    identity on hit, so two distinct programs sharing a name can never
    alias.  Only successful compilations are cached; illegal
    configurations raise afresh on every call.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._plans: "OrderedDict[Tuple[str, str, str], Tuple[Program, ExecutablePlan]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._plans)

    def clear(self) -> None:
        self._plans.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size tally, in run-report counter naming."""
        return {
            "compiler.plan_cache.hits": self.hits,
            "compiler.plan_cache.misses": self.misses,
            "compiler.plan_cache.size": len(self._plans),
        }

    def get(
        self, program: Program, chip: ChipModel, config: OptConfig
    ) -> ExecutablePlan:
        key = (program.name, chip.short_name, config.key())
        entry = self._plans.get(key)
        if entry is not None and entry[0] is program:
            self.hits += 1
            self._plans.move_to_end(key)
            return entry[1]
        self.misses += 1
        plan = compile_program(program, chip, config)
        self._plans[key] = (program, plan)
        self._plans.move_to_end(key)
        while len(self._plans) > self.maxsize:
            self._plans.popitem(last=False)
        return plan


#: Process-wide cache used by the study sweep (each worker process of a
#: parallel sweep gets its own copy on fork).
plan_cache = PlanCache()


def compile_cached(
    program: Program, chip: ChipModel, config: OptConfig
) -> ExecutablePlan:
    """:func:`compile_program` through the process-wide :data:`plan_cache`."""
    return plan_cache.get(program, chip, config)
