"""Compiler driver: program + configuration + chip → executable plan.

Pass order matters and mirrors the generation order of the original
compiler: workgroup sizing first (it scales every later resource
computation), then the intra-kernel transformations (nested
parallelism, cooperative conversion), then whole-program iteration
outlining (which needs the final per-kernel resource demands to
discover a safe global-barrier occupancy).
"""

from __future__ import annotations

from typing import Dict

from ..chips.model import ChipModel
from ..dsl.ast import Program
from ..dsl.validate import validate_program
from ..errors import CompileError
from .options import OptConfig
from .passes.coop_cv import apply_coop_cv
from .passes.iteration_outlining import apply_iteration_outlining
from .passes.nested_parallelism import apply_nested_parallelism
from .passes.workgroup_size import apply_workgroup_size
from .plan import ExecutablePlan, KernelPlan

__all__ = ["compile_program"]


def compile_program(
    program: Program, chip: ChipModel, config: OptConfig
) -> ExecutablePlan:
    """Compile ``program`` for ``chip`` under ``config``.

    Raises :class:`~repro.errors.InvalidConfigError` for configurations
    illegal on the chip (unsupported workgroup size) and
    :class:`~repro.errors.ForwardProgressError` when ``oitergb`` cannot
    construct a safe global barrier.
    """
    validate_program(program)

    kernels: Dict[str, KernelPlan] = {}
    for kernel in program.kernels:
        plan = KernelPlan(
            kernel=kernel,
            wg_size=config.wg_size,
            sg_size=chip.sg_size if chip.supports_subgroups else 1,
        )
        plan = apply_workgroup_size(plan, chip, config)
        plan = apply_nested_parallelism(plan, chip, config)
        plan = apply_coop_cv(plan, chip, config)
        if plan.local_mem_bytes > chip.cu.local_mem_bytes:
            raise CompileError(
                f"kernel {kernel.name!r} needs {plan.local_mem_bytes} B of "
                f"local memory under [{config.label()}] but chip "
                f"{chip.short_name} has {chip.cu.local_mem_bytes} B per CU"
            )
        kernels[kernel.name] = plan

    plan = ExecutablePlan(
        program=program, chip=chip, config=config, kernels=kernels
    )
    plan = apply_iteration_outlining(plan, chip, config)
    return plan
