"""Compiler output IR: executable kernel plans.

A :class:`KernelPlan` records the *structural consequences* of the
optimisation passes for one kernel — which load-balancing schemes are
active and at what degree thresholds, how many barriers of which scope
the generated code executes per unit of work, how much CU-local memory
it reserves, whether contended RMWs are cooperatively combined, and
the predication overhead of OpenCL-uniform control flow.  The
performance model prices exactly these facts against a workload trace;
the functional executor ignores them (optimisations are semantics-
preserving by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..chips.model import ChipModel
from ..dsl.ast import Kernel, Program
from .options import OptConfig

__all__ = ["KernelPlan", "ExecutablePlan"]


@dataclass(frozen=True)
class KernelPlan:
    """Compiled form of one kernel under a configuration on a chip."""

    kernel: Kernel
    wg_size: int
    sg_size: int

    # Nested-parallelism schemes (paper Section V-B).  A node whose
    # degree is >= wg_threshold is processed by the whole workgroup;
    # >= sg_threshold by its subgroup; the rest serially per-thread or,
    # when fg_edges is set, via the fine-grained linearised executor.
    wg_scheme: bool = False
    sg_scheme: bool = False
    fg_edges: Optional[int] = None
    wg_threshold: int = 0
    sg_threshold: int = 0

    # Cooperative conversion (Section V-A): scope at which contended
    # RMWs/pushes are aggregated, or None when not applied.
    coop_scope: Optional[str] = None

    # Structural cost facts.
    local_mem_bytes: int = 0
    wg_barriers_per_chunk: float = 0.0
    sg_barriers_per_chunk: float = 0.0
    predication_overhead: float = 0.0
    leader_election_atomics: bool = False

    # Human-readable record of the transformations applied.
    notes: Tuple[str, ...] = ()

    def with_(self, **kwargs) -> "KernelPlan":
        """Functional update helper used by compiler passes."""
        return replace(self, **kwargs)

    def add_note(self, note: str) -> "KernelPlan":
        return replace(self, notes=self.notes + (note,))

    @property
    def inserts_inner_barriers(self) -> bool:
        """Whether the generated code reconverges the inner loop.

        This is the structural fact behind the paper's MALI finding
        (Section VIII-c): workgroup barriers that keep threads within
        one inner-loop iteration of each other curb intra-workgroup
        memory divergence — a benefit *independent of* the barriers'
        load-balancing purpose.  The ``sg`` scheme's phase-separation
        barriers and the ``fg`` executor's per-round barriers have this
        shape; the ``wg`` scheme's barriers only run for its (rare)
        high-degree nodes, and cooperative conversion's subgroup
        barriers sit at the post-loop push site — neither reconverges
        the divergent loop.
        """
        if self.sg_scheme or self.fg_edges is not None:
            return True
        # Hand-placed gratuitous barriers (the m-divg microbenchmark
        # shape): inner-loop workgroup barriers without any scheme.
        return self.wg_barriers_per_chunk > 0 and not self.wg_scheme

    @property
    def inserts_workgroup_barriers(self) -> bool:
        return self.wg_barriers_per_chunk > 0


@dataclass(frozen=True)
class ExecutablePlan:
    """Compiled form of a whole program for (chip, configuration)."""

    program: Program
    chip: ChipModel
    config: OptConfig
    kernels: Dict[str, KernelPlan] = field(default_factory=dict)

    # Iteration outlining (Section V-C): when True, fixpoint loops run
    # on-device; each loop iteration costs a global barrier instead of
    # a kernel launch + host round-trip.
    outlined: bool = False
    outlined_workgroups: int = 0  # occupancy-discovered safe launch size

    def kernel_plan(self, name: str) -> KernelPlan:
        try:
            return self.kernels[name]
        except KeyError:
            raise KeyError(
                f"plan for program {self.program.name!r} has no kernel {name!r}"
            ) from None

    @property
    def max_local_mem_bytes(self) -> int:
        return max((k.local_mem_bytes for k in self.kernels.values()), default=0)

    def describe(self) -> str:
        """Multi-line description of the compiled plan (for reports)."""
        lines = [
            f"program {self.program.name} on {self.chip.short_name} "
            f"with [{self.config.label()}]",
            f"  outlined: {self.outlined}"
            + (f" ({self.outlined_workgroups} workgroups)" if self.outlined else ""),
        ]
        for name, plan in self.kernels.items():
            lines.append(f"  kernel {name}: wg_size={plan.wg_size}")
            for note in plan.notes:
                lines.append(f"    - {note}")
        return "\n".join(lines)
