"""Overload protection for the serving layer: admission + circuit breaking.

Under overload an unprotected asyncio server converts excess demand
into unbounded queue depth: every request is accepted, waits behind
the concurrency semaphore, times out at ``request_timeout`` and burns
a dispatch slot producing a 503 nobody wants.  The production
discipline is to *shed early*: refuse work the server cannot finish in
time with a cheap ``429 + Retry-After`` **before** it queues, so the
requests that are admitted finish within their SLO.

Two cooperating mechanisms live here, both pure bookkeeping objects
driven by the event-loop thread (no locks, injectable clocks):

:class:`AdmissionController`
    A bounded admission queue with **per-endpoint-class watermarks**.
    Requests are classified as ``predict`` (expensive: executor round
    trip through the batch engine) or ``lookup`` (cheap: precompiled
    bytes out of a dict).  Each class has a pending-depth watermark,
    and an EWMA of recent request latency adds a load signal that
    depth alone misses (a few slow requests can saturate the loop long
    before the queue is deep).  Brownout ordering is structural:
    the predict watermark is never above the lookup watermark and the
    latency watermark sheds predict at ``1x`` but lookups only at
    ``2x`` — so under rising load the expensive endpoint browns out
    first while cheap strategy/portfolio lookups keep serving.

:class:`CircuitBreaker`
    Wraps the predict engine.  ``threshold`` consecutive failures
    (:class:`~repro.errors.PredictionError`, flush-deadline timeouts,
    engine crashes) open the circuit: further predict requests
    fast-fail with 503 instead of queueing behind a sick engine.
    After ``reset_timeout`` the breaker goes **half-open** and admits
    exactly one probe; a successful probe closes the circuit, a failed
    one re-opens it for another full timeout, and a probe that never
    reaches an outcome (validation failure, cancellation) must be
    abandoned so the next request can probe instead.

Both are disabled by default (watermarks of 0, threshold of 0) and
cost two integer operations on the admitted hot path, so an idle or
unconfigured server serves byte-identical responses at unchanged
throughput — the acceptance bar the serve benchmarks pin.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, Optional

from ..errors import ServeError

__all__ = ["AdmissionController", "CircuitBreaker", "PREDICT", "LOOKUP"]

#: Endpoint classes the admission controller distinguishes.
PREDICT = "predict"
LOOKUP = "lookup"

#: Smoothing factor for the latency EWMA (higher reacts faster).
_EWMA_ALPHA = 0.2

#: Retry-After is clamped to this range (seconds).
_RETRY_AFTER_MIN = 1
_RETRY_AFTER_MAX = 30


class AdmissionController:
    """Sheds load at per-endpoint-class depth/latency watermarks.

    ``lookup_depth`` / ``predict_depth`` bound how many requests of
    each class may be pending (queued + in flight) at once; 0 disables
    that bound.  When only ``lookup_depth`` is given, ``predict_depth``
    defaults to half of it — brownout ordering by construction.  A
    ``latency_watermark_ms`` > 0 additionally sheds ``predict`` once
    the latency EWMA crosses the watermark, and ``lookup`` only past
    twice the watermark.

    The server calls :meth:`try_acquire` before queueing a request and
    :meth:`release` when the dispatch finishes (success or failure);
    :meth:`retry_after` estimates the drain time a shed client should
    wait before retrying.
    """

    def __init__(
        self,
        *,
        lookup_depth: int = 0,
        predict_depth: int = 0,
        latency_watermark_ms: float = 0.0,
        max_concurrency: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lookup_depth < 0 or predict_depth < 0:
            raise ServeError("admission depths must be non-negative")
        if latency_watermark_ms < 0:
            raise ServeError("latency watermark must be non-negative")
        if predict_depth == 0 and lookup_depth > 0:
            # Brownout ordering by default: the expensive class gets
            # half the headroom of the cheap one.
            predict_depth = max(1, lookup_depth // 2)
        if lookup_depth and predict_depth > lookup_depth:
            raise ServeError(
                "predict admission depth must not exceed the lookup "
                "depth (predict must brown out first)"
            )
        self.lookup_depth = lookup_depth
        self.predict_depth = predict_depth
        self.latency_watermark_ms = latency_watermark_ms
        self.max_concurrency = max(1, max_concurrency)
        self._clock = clock
        self._pending: Dict[str, int] = {PREDICT: 0, LOOKUP: 0}
        self._ewma_ms = 0.0
        self.shed: Dict[str, int] = {PREDICT: 0, LOOKUP: 0}

    @property
    def enabled(self) -> bool:
        """Whether any watermark is configured at all."""
        return bool(
            self.lookup_depth
            or self.predict_depth
            or self.latency_watermark_ms
        )

    def _depth_for(self, endpoint_class: str) -> int:
        return (
            self.predict_depth
            if endpoint_class == PREDICT
            else self.lookup_depth
        )

    def try_acquire(self, endpoint_class: str) -> bool:
        """Admit (and count) one request, or refuse it.

        Returns ``True`` and increments the class's pending count when
        the request is admitted; the caller must :meth:`release` it
        exactly once.  Returns ``False`` — pending unchanged — when the
        request should be shed as 429.
        """
        pending = self._pending[endpoint_class]
        depth = self._depth_for(endpoint_class)
        if depth and pending >= depth:
            self.shed[endpoint_class] += 1
            return False
        if self.latency_watermark_ms:
            limit = self.latency_watermark_ms * (
                1.0 if endpoint_class == PREDICT else 2.0
            )
            if self._ewma_ms > limit:
                self.shed[endpoint_class] += 1
                return False
        self._pending[endpoint_class] = pending + 1
        return True

    def release(self, endpoint_class: str, latency_ms: float) -> None:
        """Finish one admitted request and feed the latency signal."""
        self._pending[endpoint_class] = max(
            0, self._pending[endpoint_class] - 1
        )
        self._ewma_ms += _EWMA_ALPHA * (latency_ms - self._ewma_ms)

    def retry_after(self) -> int:
        """Seconds a shed client should wait: estimated drain time.

        Pending work drains at roughly ``max_concurrency`` requests per
        EWMA latency; clamp to a sane [1, 30] so clients neither
        hot-loop nor give up.
        """
        pending = sum(self._pending.values())
        per_request_s = max(self._ewma_ms, 1.0) / 1000.0
        drain_s = pending * per_request_s / self.max_concurrency
        return int(min(_RETRY_AFTER_MAX, max(_RETRY_AFTER_MIN, math.ceil(drain_s))))

    def stats(self) -> dict:
        """The snapshot ``/healthz`` embeds."""
        return {
            "enabled": self.enabled,
            "pending": dict(self._pending),
            "shed": dict(self.shed),
            "latency_ewma_ms": round(self._ewma_ms, 3),
        }


class CircuitBreaker:
    """Converts failure bursts into fast-fail 503s with half-open probing.

    States: ``closed`` (normal; counting consecutive failures),
    ``open`` (every :meth:`allow` refuses until ``reset_timeout``
    elapses), ``half-open`` (exactly one probe request admitted; its
    outcome decides).  ``threshold=0`` disables the breaker —
    :meth:`allow` always admits and records are no-ops.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        threshold: int = 0,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 0:
            raise ServeError("breaker threshold must be non-negative")
        if reset_timeout <= 0:
            raise ServeError("breaker reset timeout must be positive")
        self.threshold = threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self.state = self.CLOSED
        self.failures = 0  # consecutive, while closed
        self.opened = 0  # cumulative open transitions
        self.fast_fails = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def allow(self) -> bool:
        """Whether the next predict request may reach the engine."""
        if not self.enabled:
            return True
        if self.state == self.OPEN:
            if self._clock() - (self._opened_at or 0.0) >= self.reset_timeout:
                self.state = self.HALF_OPEN
                self._probing = False
            else:
                self.fast_fails += 1
                return False
        if self.state == self.HALF_OPEN:
            if self._probing:
                self.fast_fails += 1
                return False
            self._probing = True
            return True
        return True

    def record_success(self) -> None:
        if not self.enabled:
            return
        if self.state == self.HALF_OPEN:
            # The probe came back healthy: close and forget history.
            self.state = self.CLOSED
            self._probing = False
        self.failures = 0

    def record_failure(self) -> None:
        if not self.enabled:
            return
        if self.state == self.HALF_OPEN:
            self._open()
            return
        self.failures += 1
        if self.state == self.CLOSED and self.failures >= self.threshold:
            self._open()

    def abandon_probe(self) -> None:
        """Release a half-open probe that never got an outcome.

        A request admitted as the probe can die without reaching the
        engine — it fails request validation after :meth:`allow`, or
        the server timeout cancels it mid-flight.  Its outcome is
        unknown, so neither :meth:`record_success` nor
        :meth:`record_failure` fires; without this release the probe
        latch would stay set and every later request would fast-fail
        until a restart.  Abandoning is neutral: the breaker stays
        half-open and the next request becomes the new probe.
        """
        if not self.enabled:
            return
        if self.state == self.HALF_OPEN:
            self._probing = False

    def _open(self) -> None:
        self.state = self.OPEN
        self._opened_at = self._clock()
        self.opened += 1
        self.failures = 0
        self._probing = False

    def retry_after(self) -> int:
        """Seconds until the breaker could next admit a probe."""
        if self.state != self.OPEN or self._opened_at is None:
            return _RETRY_AFTER_MIN
        remaining = self.reset_timeout - (self._clock() - self._opened_at)
        return int(max(_RETRY_AFTER_MIN, math.ceil(max(0.0, remaining))))

    def stats(self) -> dict:
        """The snapshot ``/healthz`` embeds."""
        return {
            "enabled": self.enabled,
            "state": self.state,
            "consecutive_failures": self.failures,
            "opened": self.opened,
            "fast_fails": self.fast_fails,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"threshold={self.threshold}, opened={self.opened})"
        )
