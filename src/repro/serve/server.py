"""The strategy advisor as an asyncio HTTP JSON API.

``python -m repro serve INDEX`` loads a ``strategy-index-v1`` artifact
(:mod:`repro.serve.index`) and answers over plain HTTP/1.1 — stdlib
asyncio only, no web framework:

* ``GET /v1/strategy?chip=&app=&input=`` — the precompiled Algorithm 1
  recommendation for any subset of the three dimensions, falling back
  up the specialisation lattice (and marked ``degraded``) when the
  most-specialised cell is missing or quarantined;
* ``POST /v1/predict`` — online pricing of explicit (chip, app, input,
  config) points through the vectorized batch engine; ``config`` may
  be omitted to price whatever the advisor recommends;
* ``GET /healthz`` — liveness plus index shape;
* ``GET /metrics`` — the recorder's counters/gauges/histograms and the
  response cache's statistics (spans are excluded: a long-lived server
  would grow them without bound).

Operational behaviour:

* **bounded concurrency** — at most ``max_concurrency`` requests are
  dispatched at once (an :class:`asyncio.Semaphore`); the rest queue;
* **per-request timeout** — a dispatch exceeding ``request_timeout``
  returns 503 and counts ``serve.timeouts``;
* **response cache** — strategy answers are served from an LRU+TTL
  :class:`~repro.serve.cache.TTLCache` keyed by the query coordinates;
* **graceful shutdown** — SIGTERM/SIGINT stop the listener, let
  in-flight requests drain, flush the ``--metrics`` sidecar and exit 0.

Every response body is ``json.dumps(payload, sort_keys=True)``, so two
servers over the same index give byte-identical answers — the e2e test
holds the server to the offline :mod:`repro.core.strategies` path.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from ..errors import PredictionError, ServeError
from ..obs import NULL_RECORDER
from .cache import TTLCache
from .index import StrategyIndex
from .predict import Predictor

__all__ = ["StrategyServer", "MAX_BODY_BYTES"]

#: Largest accepted request body; bigger POSTs get 413.
MAX_BODY_BYTES = 1 << 20

#: Largest accepted request line + headers block.
_MAX_HEADER_BYTES = 16384

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """An error with a definite HTTP status, raised by handlers."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class StrategyServer:
    """Serves one loaded :class:`~repro.serve.index.StrategyIndex`.

    The server binds lazily in :meth:`start` (``port=0`` picks a free
    port; the resolved one is in :attr:`port`) and runs until
    :meth:`stop` or a signal installed by :func:`main`.  All asyncio
    primitives are created inside the running loop for 3.9
    compatibility.
    """

    def __init__(
        self,
        index: StrategyIndex,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 64,
        request_timeout: float = 10.0,
        idle_timeout: float = 60.0,
        cache: Optional[TTLCache] = None,
        recorder=None,
        predictor: Optional[Predictor] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_concurrency < 1:
            raise ServeError("max_concurrency must be positive")
        if request_timeout <= 0:
            raise ServeError("request_timeout must be positive")
        self.index = index
        self.host = host
        self.port = port
        self.max_concurrency = max_concurrency
        self.request_timeout = request_timeout
        self.idle_timeout = idle_timeout
        self.cache = cache if cache is not None else TTLCache()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.predictor = predictor
        self._clock = clock
        self._server: Optional[asyncio.AbstractServer] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._stopping: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._busy: set = set()
        self.requests_served = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`request_shutdown` (or :meth:`stop`) fires."""
        if self._server is None:
            await self.start()
        assert self._stopping is not None
        await self._stopping.wait()
        await self._shutdown()

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (signal-handler safe)."""
        if self._stopping is not None and not self._stopping.is_set():
            self._stopping.set()

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight requests, then close."""
        self.request_shutdown()
        await self._shutdown()

    async def _shutdown(self) -> None:
        if self._server is None:
            return
        # Stop accepting new connections first.
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        # Let busy connections finish their current request (bounded by
        # the per-request timeout plus slack), then drop idle keep-alive
        # connections, which would otherwise pin the loop open.
        deadline = self._clock() + self.request_timeout + 1.0
        while self._busy and self._clock() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), self.idle_timeout
                    )
                except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                    break
                except _HttpError as exc:
                    # Unparseable request: answer and drop the connection
                    # (the stream position is no longer trustworthy).
                    self.recorder.count("serve.errors")
                    await self._write_response(
                        writer, exc.status, {"error": str(exc)}, False
                    )
                    break
                if request is None:  # clean EOF between requests
                    break
                method, target, body, keep_alive = request
                self._busy.add(task)
                try:
                    status, payload = await self._dispatch(method, target, body)
                finally:
                    self._busy.discard(task)
                if self._stopping is not None and self._stopping.is_set():
                    keep_alive = False
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
                self._busy.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader
    ) -> Optional[Tuple[str, str, bytes, bool]]:
        """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        if len(line) > _MAX_HEADER_BYTES:
            raise _HttpError(400, "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {line!r}")
        method, target, version = parts
        headers: Dict[str, str] = {}
        total = len(line)
        while True:
            hline = await reader.readline()
            total += len(hline)
            if total > _MAX_HEADER_BYTES:
                raise _HttpError(400, "headers too large")
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _HttpError(400, f"bad Content-Length {length!r}")
            if n < 0:
                raise _HttpError(400, "negative Content-Length")
            if n > MAX_BODY_BYTES:
                raise _HttpError(
                    413, f"request body exceeds {MAX_BODY_BYTES} bytes"
                )
            body = await reader.readexactly(n)
        keep_alive = headers.get("connection", "").lower() != "close" and (
            version.upper() != "HTTP/1.0"
            or headers.get("connection", "").lower() == "keep-alive"
        )
        return method, target, body, keep_alive

    async def _write_response(
        self, writer, status: int, payload: dict, keep_alive: bool
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, dict]:
        """Route one request; never raises."""
        rec = self.recorder
        rec.count("serve.requests")
        self.requests_served += 1
        started = self._clock()
        assert self._semaphore is not None
        try:
            async with self._semaphore:
                status, payload = await asyncio.wait_for(
                    self._route(method, target, body), self.request_timeout
                )
        except asyncio.TimeoutError:
            rec.count("serve.timeouts")
            status, payload = 503, {
                "error": (
                    f"request exceeded the {self.request_timeout}s "
                    f"server timeout"
                )
            }
        except _HttpError as exc:
            rec.count("serve.errors")
            status, payload = exc.status, {"error": str(exc)}
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            rec.count("serve.errors")
            status, payload = 500, {"error": f"internal error: {exc}"}
        rec.observe("serve.latency_ms", (self._clock() - started) * 1000.0)
        rec.count(f"serve.responses.{status // 100}xx")
        return status, payload

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, dict]:
        url = urlsplit(target)
        path = url.path
        if path == "/healthz":
            self._require_method(method, "GET")
            return 200, self._healthz()
        if path == "/metrics":
            self._require_method(method, "GET")
            return 200, self._metrics()
        if path == "/v1/strategy":
            self._require_method(method, "GET")
            return 200, self._strategy(url.query)
        if path == "/v1/predict":
            self._require_method(method, "POST")
            return await self._predict(body)
        raise _HttpError(404, f"unknown path {path!r}")

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method.upper() != expected:
            raise _HttpError(405, f"use {expected} for this endpoint")

    # -- endpoints ---------------------------------------------------------

    def _healthz(self) -> dict:
        return {
            "status": "ok",
            "entries": self.index.n_entries,
            "levels": {
                level: len(cells)
                for level, cells in sorted(self.index.levels.items())
            },
            "coverage": self.index.coverage.describe(),
        }

    def _metrics(self) -> dict:
        snap = self.recorder.snapshot()
        return {
            "counters": snap.get("counters", {}),
            "gauges": snap.get("gauges", {}),
            # {name: [count, sum, min, max]}, matching RunReport.
            "histograms": snap.get("histograms", {}),
            "cache": self.cache.stats(),
            "requests_served": self.requests_served,
        }

    def _strategy(self, query: str) -> dict:
        rec = self.recorder
        rec.count("serve.requests.strategy")
        params = dict(parse_qsl(query, keep_blank_values=True))
        unknown = set(params) - {"chip", "app", "input"}
        if unknown:
            raise _HttpError(
                400,
                f"unknown query parameter(s) {sorted(unknown)}; expected "
                f"a subset of chip, app, input",
            )
        for name, value in params.items():
            if not value:
                raise _HttpError(400, f"empty value for parameter {name!r}")
        key = (
            params.get("chip"), params.get("app"), params.get("input")
        )
        cached = self.cache.get(key)
        if cached is not None:
            rec.count("serve.cache.hits")
            return cached
        rec.count("serve.cache.misses")
        answer = self.index.lookup(
            chip=key[0], app=key[1], input=key[2]
        )
        if answer.degraded:
            rec.count("serve.fallbacks")
        payload = {"query": {"chip": key[0], "app": key[1], "input": key[2]}}
        payload.update(answer.to_dict())
        self.cache.put(key, payload)
        return payload

    async def _predict(self, body: bytes) -> Tuple[int, dict]:
        rec = self.recorder
        rec.count("serve.requests.predict")
        if self.predictor is None:
            raise _HttpError(
                501, "online prediction is disabled (--no-predict)"
            )
        try:
            parsed = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}")
        if isinstance(parsed, dict) and "queries" in parsed:
            queries = parsed["queries"]
        elif isinstance(parsed, dict) and parsed:
            queries = [parsed]
        else:
            queries = parsed if isinstance(parsed, list) else None
        if not isinstance(queries, list) or not queries:
            raise _HttpError(
                400,
                'expected {"queries": [{"chip": ..., "app": ..., '
                '"input": ..., "config": ...?}, ...]} or a single such '
                "object",
            )
        loop = asyncio.get_event_loop()
        results = []
        errors = 0
        for q in queries:
            if not isinstance(q, dict):
                results.append({"error": f"query must be an object, got {q!r}"})
                errors += 1
                continue
            try:
                chip, app, inp = q.get("chip"), q.get("app"), q.get("input")
                for name, value in (("chip", chip), ("app", app), ("input", inp)):
                    if not isinstance(value, str) or not value:
                        raise PredictionError(
                            f"missing or invalid {name!r} in predict query"
                        )
                if "config" in q:
                    config = Predictor.parse_config(q["config"])
                    advisor = None
                else:
                    # No explicit configuration: price what the advisor
                    # recommends for these exact coordinates.
                    advisor = self.index.lookup(chip=chip, app=app, input=inp)
                    config = Predictor.parse_config(advisor.config)
                result = await loop.run_in_executor(
                    None, self.predictor.price, chip, app, inp, config
                )
                if advisor is not None:
                    result["advisor"] = advisor.to_dict()
                results.append(result)
                rec.count("serve.predictions")
            except PredictionError as exc:
                results.append({"error": str(exc)})
                errors += 1
        rec.count("serve.predictions.errors", errors)
        return 200, {"results": results, "errors": errors}


def main(argv=None) -> int:
    """CLI: ``python -m repro serve INDEX``."""
    import argparse
    import signal
    import sys

    from ..cli import metrics_parent, save_run_report
    from ..obs import Recorder

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        parents=[metrics_parent()],
        description=(
            "Serve strategy queries from a strategy-index-v1 artifact "
            "over an asyncio HTTP JSON API."
        ),
    )
    parser.add_argument("index", help="strategy-index artifact (repro index)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    parser.add_argument(
        "--max-concurrency",
        type=int,
        default=64,
        help="bound on concurrently dispatched requests (default 64)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-request timeout; slower requests get 503 (default 10)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="drop keep-alive connections idle this long (default 60)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="response cache entries; 0 disables caching (default 1024)",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="response cache time-to-live (default 300)",
    )
    parser.add_argument(
        "--predict-scale",
        type=float,
        default=0.05,
        help="input scale for online /v1/predict pricing (default 0.05)",
    )
    parser.add_argument(
        "--predict-repetitions",
        type=int,
        default=3,
        help="noisy repetitions per online prediction (default 3)",
    )
    parser.add_argument(
        "--no-predict",
        action="store_true",
        help="disable POST /v1/predict (strategy queries only)",
    )
    args = parser.parse_args(argv)

    try:
        index = StrategyIndex.load(args.index)
    except ServeError as exc:
        print(f"[serve] {exc}", file=sys.stderr)
        return 1

    rec = Recorder() if args.metrics else None
    cache = (
        TTLCache(maxsize=args.cache_size, ttl=args.cache_ttl)
        if args.cache_size > 0
        else TTLCache(maxsize=0)
    )
    predictor = (
        None
        if args.no_predict
        else Predictor(
            scale=args.predict_scale, repetitions=args.predict_repetitions
        )
    )
    server = StrategyServer(
        index,
        host=args.host,
        port=args.port,
        max_concurrency=args.max_concurrency,
        request_timeout=args.timeout,
        idle_timeout=args.idle_timeout,
        cache=cache,
        recorder=rec,
        predictor=predictor,
    )

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-POSIX event loop: Ctrl-C still raises
        print(
            f"[serve] listening on http://{server.host}:{server.port} "
            f"({index.n_entries} index entries, "
            f"predict={'off' if predictor is None else 'on'})",
            file=sys.stderr,
            flush=True,
        )
        await server.serve_until_stopped()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback
        pass
    if rec is not None:
        save_run_report(
            rec,
            args.metrics,
            meta={"index": args.index, "requests": server.requests_served},
        )
        print(f"[serve] wrote run report to {args.metrics}", file=sys.stderr)
    print(
        f"[serve] shut down cleanly ({server.requests_served} requests "
        f"served)",
        file=sys.stderr,
        flush=True,
    )
    return 0
