"""The strategy advisor as an asyncio HTTP JSON API.

``python -m repro serve INDEX`` loads a ``strategy-index-v1`` artifact
(:mod:`repro.serve.index`) and answers over plain HTTP/1.1 — stdlib
asyncio only, no web framework:

* ``GET /v1/strategy?chip=&app=&input=`` — the precompiled Algorithm 1
  recommendation for any subset of the three dimensions, falling back
  up the specialisation lattice (and marked ``degraded``) when the
  most-specialised cell is missing or quarantined; ``&refine=1`` opts
  into the online explore/exploit mode (:mod:`repro.serve.refine`):
  a fully-specified query whose index answer would be degraded instead
  consults live ``/v1/predict`` observations and, on a hit, returns a
  ``"refined": true`` answer with provenance — non-refined responses
  stay byte-identical to the normal path;
* ``GET /v1/portfolio?chip=&app=&input=&k=&target=`` — the greedy
  "few fit most" configuration portfolio for the queried partition:
  the best K code versions to ship, their fraction-of-oracle coverage
  and the full K-vs-coverage curve; requires an index built with
  ``repro index --portfolios`` (501 otherwise), with the same lattice
  fallback and ``degraded`` marking as ``/v1/strategy``;
* ``POST /v1/predict`` — online pricing of explicit (chip, app, input,
  config) points through the vectorized batch engine; ``config`` may
  be omitted to price whatever the advisor recommends;
* ``GET /healthz`` — liveness plus index shape;
* ``GET /metrics`` — the recorder's counters/gauges/histograms and the
  response cache's statistics (spans are excluded: a long-lived server
  would grow them without bound).

Operational behaviour:

* **zero-encode answers** — ``GET /v1/strategy`` for coordinates of
  the index's own lattice is served straight from the artifact's
  pre-serialized bytes table (:meth:`StrategyIndex.answer`): a dict
  lookup and a socket write, no per-request JSON encoding.  Unknown
  coordinates (and pre-table artifacts) fall back to encode-on-miss
  through the LRU+TTL response cache;
* **bounded concurrency** — at most ``max_concurrency`` requests are
  dispatched at once (an :class:`asyncio.Semaphore`); the rest queue;
* **per-request timeout** — a dispatch exceeding ``request_timeout``
  returns 503 and counts ``serve.timeouts``;
* **predict micro-batching** — concurrent ``POST /v1/predict`` items
  coalesce behind a small time/size window (``predict_window`` /
  ``predict_max_batch``) into one vectorized
  :meth:`~repro.serve.predict.Predictor.price_many` call, so predict
  throughput rides the batch engine's speedup instead of paying one
  executor round-trip per item — while each item's numbers stay
  study-identical;
* **multi-worker** — ``repro serve --workers N`` forks N processes
  sharing one port via ``SO_REUSEPORT``; each worker runs this server
  unchanged, and per-worker recorders are merged through the standard
  ``drain()/merge()`` path into one run report that reconciles exactly
  with the total requests served;
* **graceful shutdown** — SIGTERM/SIGINT stop the listener, let
  in-flight requests drain, flush the ``--metrics`` sidecar and exit 0.

Every response body is ``json.dumps(payload, sort_keys=True)`` — the
pre-serialized table stores exactly those bytes — so two servers over
the same index give byte-identical answers; the e2e test holds the
server to the offline :mod:`repro.core.strategies` path and the
``strategy-responses.json`` golden pins the encoding itself.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Callable, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qsl, urlsplit

from ..errors import PredictionError, ServeError
from ..obs import NULL_RECORDER
from .cache import TTLCache
from .index import (
    StrategyIndex,
    _config_label,
    render_answer,
    render_portfolio_answer,
)
from .predict import Predictor
from .refine import DEFAULT_CAPACITY, ObservationStore

__all__ = ["PredictCoalescer", "StrategyServer", "MAX_BODY_BYTES"]

#: Largest accepted request body; bigger POSTs get 413.
MAX_BODY_BYTES = 1 << 20

#: Largest accepted request line + headers block.
_MAX_HEADER_BYTES = 16384

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """An error with a definite HTTP status, raised by handlers."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _price_batch(predictor, items: List[tuple]) -> List[object]:
    """Price a coalesced batch in the executor thread.

    Prefers the predictor's vectorized
    :meth:`~repro.serve.predict.Predictor.price_many` (one lock, one
    pass); any predictor-shaped object with only ``price`` still works
    item by item.  Per-item failures come back as
    :class:`~repro.errors.PredictionError` *values*, never aborting the
    batch.
    """
    many = getattr(predictor, "price_many", None)
    if many is not None:
        return many(items)
    results: List[object] = []
    for chip, app, inp, config in items:
        try:
            results.append(predictor.price(chip, app, inp, config))
        except PredictionError as exc:
            results.append(exc)
    return results


class PredictCoalescer:
    """Micro-batches concurrent predict items into one engine call.

    Items submitted via :meth:`price` wait at most ``window`` seconds
    (or until ``max_batch`` items are pending, whichever comes first)
    and are then priced together by a single executor dispatch of
    :func:`_price_batch`.  Each caller awaits its own future, so
    per-item results — and per-item errors — are preserved exactly;
    coalescing changes *when* pricing happens, never *what* it returns.

    ``window=0`` still coalesces items that arrive within one event-
    loop tick (e.g. all items of one request body) but adds no latency.
    Everything runs on the event loop thread except the batch itself,
    so no locking is needed here.
    """

    def __init__(
        self,
        predictor,
        recorder=None,
        *,
        window: float = 0.0,
        max_batch: int = 32,
    ) -> None:
        if window < 0:
            raise ServeError("predict window must be non-negative")
        if max_batch < 1:
            raise ServeError("predict max_batch must be positive")
        self.predictor = predictor
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.window = window
        self.max_batch = max_batch
        self._pending: List[tuple] = []
        self._timer: Optional[asyncio.TimerHandle] = None

    async def price(self, chip: str, app: str, inp: str, config) -> dict:
        """Submit one item; resolves to its result (or raises its error)."""
        loop = asyncio.get_event_loop()
        future = loop.create_future()
        self._pending.append((chip, app, inp, config, future))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.window, self._flush)
        return await future

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        if batch:
            asyncio.ensure_future(self._run(batch))

    async def _run(self, batch: List[tuple]) -> None:
        rec = self.recorder
        rec.count("serve.predict.batches")
        rec.observe("serve.predict.batch_size", float(len(batch)))
        loop = asyncio.get_event_loop()
        items = [(chip, app, inp, cfg) for chip, app, inp, cfg, _ in batch]
        try:
            results = await loop.run_in_executor(
                None, _price_batch, self.predictor, items
            )
        except Exception as exc:  # engine-level failure: fail every item
            for *_, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (*_, future), result in zip(batch, results):
            if future.done():  # caller timed out or was cancelled
                continue
            if isinstance(result, PredictionError):
                future.set_exception(result)
            else:
                future.set_result(result)


class StrategyServer:
    """Serves one loaded :class:`~repro.serve.index.StrategyIndex`.

    The server binds lazily in :meth:`start` (``port=0`` picks a free
    port; the resolved one is in :attr:`port`) and runs until
    :meth:`stop` or a signal installed by :func:`main`.  All asyncio
    primitives are created inside the running loop for 3.9
    compatibility.
    """

    def __init__(
        self,
        index: StrategyIndex,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 64,
        request_timeout: float = 10.0,
        idle_timeout: float = 60.0,
        cache: Optional[TTLCache] = None,
        recorder=None,
        predictor: Optional[Predictor] = None,
        clock: Callable[[], float] = time.perf_counter,
        reuse_port: bool = False,
        worker_id: Optional[int] = None,
        predict_window: float = 0.0,
        predict_max_batch: int = 32,
        observations: Optional[ObservationStore] = None,
        refine_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if max_concurrency < 1:
            raise ServeError("max_concurrency must be positive")
        if request_timeout <= 0:
            raise ServeError("request_timeout must be positive")
        if predict_window < 0:
            raise ServeError("predict_window must be non-negative")
        if predict_max_batch < 1:
            raise ServeError("predict_max_batch must be positive")
        self.index = index
        self.host = host
        self.port = port
        self.max_concurrency = max_concurrency
        self.request_timeout = request_timeout
        self.idle_timeout = idle_timeout
        self.cache = cache if cache is not None else TTLCache()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.predictor = predictor
        self._clock = clock
        #: Bind with ``SO_REUSEPORT`` so sibling worker processes can
        #: share the listening port (``repro serve --workers N``).
        self.reuse_port = reuse_port
        #: This process's index in a ``--workers`` fleet (``None`` when
        #: single-process); exposed in ``/metrics`` so scrapers cannot
        #: mistake one worker's counters for service totals.
        self.worker_id = worker_id
        self.predict_window = predict_window
        self.predict_max_batch = predict_max_batch
        #: Live /v1/predict observations backing ?refine=1 strategy
        #: answers (bounded LRU; injectable for tests).
        self.observations = (
            observations
            if observations is not None
            else ObservationStore(refine_capacity)
        )
        self._coalescer: Optional[PredictCoalescer] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._stopping: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._busy: set = set()
        self.requests_served = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._stopping = asyncio.Event()
        if self.predictor is not None:
            self._coalescer = PredictCoalescer(
                self.predictor,
                self.recorder,
                window=self.predict_window,
                max_batch=self.predict_max_batch,
            )
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, **kwargs
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`request_shutdown` (or :meth:`stop`) fires."""
        if self._server is None:
            await self.start()
        assert self._stopping is not None
        await self._stopping.wait()
        await self._shutdown()

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (signal-handler safe)."""
        if self._stopping is not None and not self._stopping.is_set():
            self._stopping.set()

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight requests, then close."""
        self.request_shutdown()
        await self._shutdown()

    async def _shutdown(self) -> None:
        if self._server is None:
            return
        # Stop accepting new connections first.
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        # Let busy connections finish their current request (bounded by
        # the per-request timeout plus slack), then drop idle keep-alive
        # connections, which would otherwise pin the loop open.
        deadline = self._clock() + self.request_timeout + 1.0
        while self._busy and self._clock() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader), self.idle_timeout
                    )
                except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                    break
                except _HttpError as exc:
                    # Unparseable request: answer and drop the connection
                    # (the stream position is no longer trustworthy).
                    self.recorder.count("serve.errors")
                    await self._write_response(
                        writer, exc.status, {"error": str(exc)}, False
                    )
                    break
                if request is None:  # clean EOF between requests
                    break
                method, target, body, keep_alive = request
                self._busy.add(task)
                try:
                    status, payload = await self._dispatch(method, target, body)
                finally:
                    self._busy.discard(task)
                if self._stopping is not None and self._stopping.is_set():
                    keep_alive = False
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
                self._busy.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader
    ) -> Optional[Tuple[str, str, bytes, bool]]:
        """Parse one HTTP/1.1 request; ``None`` on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        if len(line) > _MAX_HEADER_BYTES:
            raise _HttpError(400, "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {line!r}")
        method, target, version = parts
        headers: Dict[str, str] = {}
        total = len(line)
        while True:
            hline = await reader.readline()
            total += len(hline)
            if total > _MAX_HEADER_BYTES:
                raise _HttpError(400, "headers too large")
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _HttpError(400, f"bad Content-Length {length!r}")
            if n < 0:
                raise _HttpError(400, "negative Content-Length")
            if n > MAX_BODY_BYTES:
                raise _HttpError(
                    413, f"request body exceeds {MAX_BODY_BYTES} bytes"
                )
            body = await reader.readexactly(n)
        keep_alive = headers.get("connection", "").lower() != "close" and (
            version.upper() != "HTTP/1.0"
            or headers.get("connection", "").lower() == "keep-alive"
        )
        return method, target, body, keep_alive

    async def _write_response(
        self, writer, status: int, payload: Union[dict, bytes], keep_alive: bool
    ) -> None:
        # The zero-encode hot path hands pre-serialized bodies straight
        # through; everything else still encodes here.  Both are the
        # same ``json.dumps(..., sort_keys=True)`` bytes by contract.
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Union[dict, bytes]]:
        """Route one request; never raises."""
        rec = self.recorder
        rec.count("serve.requests")
        self.requests_served += 1
        started = self._clock()
        assert self._semaphore is not None
        try:
            async with self._semaphore:
                status, payload = await asyncio.wait_for(
                    self._route(method, target, body), self.request_timeout
                )
        except asyncio.TimeoutError:
            rec.count("serve.timeouts")
            status, payload = 503, {
                "error": (
                    f"request exceeded the {self.request_timeout}s "
                    f"server timeout"
                )
            }
        except _HttpError as exc:
            rec.count("serve.errors")
            status, payload = exc.status, {"error": str(exc)}
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            rec.count("serve.errors")
            status, payload = 500, {"error": f"internal error: {exc}"}
        rec.observe("serve.latency_ms", (self._clock() - started) * 1000.0)
        rec.count(f"serve.responses.{status // 100}xx")
        return status, payload

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Union[dict, bytes]]:
        url = urlsplit(target)
        path = url.path
        if path == "/healthz":
            self._require_method(method, "GET")
            return 200, self._healthz()
        if path == "/metrics":
            self._require_method(method, "GET")
            return 200, self._metrics()
        if path == "/v1/strategy":
            self._require_method(method, "GET")
            return 200, self._strategy(url.query)
        if path == "/v1/portfolio":
            self._require_method(method, "GET")
            return 200, self._portfolio(url.query)
        if path == "/v1/predict":
            self._require_method(method, "POST")
            return await self._predict(body)
        raise _HttpError(404, f"unknown path {path!r}")

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method.upper() != expected:
            raise _HttpError(405, f"use {expected} for this endpoint")

    # -- endpoints ---------------------------------------------------------

    def _healthz(self) -> dict:
        payload = {
            "status": "ok",
            "entries": self.index.n_entries,
            "precompiled_answers": self.index.n_answers,
            "levels": {
                level: len(cells)
                for level, cells in sorted(self.index.levels.items())
            },
            "coverage": self.index.coverage.describe(),
        }
        if self.index.portfolios is not None:
            payload["portfolio_curves"] = self.index.portfolios.n_curves
        payload["refine_cells"] = len(self.observations)
        if self.worker_id is not None:
            payload["worker"] = self.worker_id
        return payload

    def _metrics(self) -> dict:
        snap = self.recorder.snapshot()
        payload = {
            "counters": snap.get("counters", {}),
            "gauges": snap.get("gauges", {}),
            # {name: [count, sum, min, max]}, matching RunReport.
            "histograms": snap.get("histograms", {}),
            "cache": self.cache.stats(),
            "refine": self.observations.stats(),
            "requests_served": self.requests_served,
        }
        if self.worker_id is not None:
            # Per-worker view only: scraping N workers and summing is
            # the way to a service total (the run-report sidecar merges
            # exactly that); a lone scrape must not pose as the total.
            payload["worker"] = self.worker_id
        return payload

    def _strategy(self, query: str) -> bytes:
        rec = self.recorder
        rec.count("serve.requests.strategy")
        params = dict(parse_qsl(query, keep_blank_values=True))
        unknown = set(params) - {"chip", "app", "input", "refine"}
        if unknown:
            raise _HttpError(
                400,
                f"unknown query parameter(s) {sorted(unknown)}; expected "
                f"a subset of chip, app, input, refine",
            )
        for name, value in params.items():
            if not value:
                raise _HttpError(400, f"empty value for parameter {name!r}")
        refine = params.pop("refine", None)
        if refine is not None and refine not in ("0", "1"):
            raise _HttpError(
                400,
                f"parameter 'refine' must be '0' or '1', got {refine!r}",
            )
        key = (
            params.get("chip"), params.get("app"), params.get("input")
        )
        if refine == "1":
            refined = self._refined(key)
            if refined is not None:
                return refined
        # Hot path: the answer was pre-serialized at index-build time —
        # a dict lookup and a socket write, no JSON encoding.
        pre = self.index.answer(key)
        if pre is not None:
            body, degraded = pre
            rec.count("serve.answers.precompiled")
            if degraded:
                rec.count("serve.fallbacks")
            return body
        # Long tail (coordinates outside the index's lattice, or an
        # artifact predating the answers table): encode once, cache.
        cached = self.cache.get(key)
        if cached is not None:
            rec.count("serve.cache.hits")
            body, degraded = cached
        else:
            rec.count("serve.cache.misses")
            body, degraded = render_answer(
                self.index, chip=key[0], app=key[1], input=key[2]
            )
            self.cache.put(key, (body, degraded))
        if degraded:
            rec.count("serve.fallbacks")
        return body

    def _refined(
        self, key: Tuple[Optional[str], Optional[str], Optional[str]]
    ) -> Optional[bytes]:
        """An online-refined answer for ``?refine=1``, or ``None``.

        ``None`` sends the request down the normal (precompiled /
        cached) path.  Refinement applies only when all three
        coordinates are named *and* the index's own answer would be
        degraded (a fallback up the lattice): an exact non-degraded
        index cell is offline ground truth and always outranks live
        observations, while a degraded fallback loses to any live
        evidence for the exact cell.  Counters reconcile as
        ``serve.refine.requests == served + misses + exact``.
        """
        rec = self.recorder
        rec.count("serve.refine.requests")
        chip, app, inp = key
        if not (chip and app and inp):
            # Partial coordinates name a lattice partition, not a cell
            # /v1/predict could ever have priced.
            rec.count("serve.refine.misses")
            return None
        answer = self.index.lookup(chip=chip, app=app, input=inp)
        if not answer.degraded:
            rec.count("serve.refine.exact")
            return None
        hit = self.observations.best(chip, app, inp)
        if hit is None:
            rec.count("serve.refine.misses")
            return None
        config, mean_us, n_obs = hit
        payload = {"query": {"chip": chip, "app": app, "input": inp}}
        payload.update(answer.to_dict())
        payload.update(
            {
                "config": config,
                "label": _config_label(config),
                "served_level": "refined",
                "degraded": False,
                "refined": True,
                "observations": n_obs,
                "expected_speedup": None,
                "slowdown_vs_oracle": None,
                "n_tests": 0,
                "note": (
                    f"refined from {n_obs} live /v1/predict "
                    f"observation(s): mean median {mean_us:.1f} us "
                    f"under [{_config_label(config)}]; index fallback "
                    f"was {answer.served_level} [{answer.config}]"
                ),
            }
        )
        rec.count("serve.refine.served")
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def _portfolio(self, query: str) -> bytes:
        rec = self.recorder
        rec.count("serve.requests.portfolio")
        params = dict(parse_qsl(query, keep_blank_values=True))
        unknown = set(params) - {"chip", "app", "input", "k", "target"}
        if unknown:
            raise _HttpError(
                400,
                f"unknown query parameter(s) {sorted(unknown)}; expected "
                f"a subset of chip, app, input, k, target",
            )
        for name, value in params.items():
            if not value:
                raise _HttpError(400, f"empty value for parameter {name!r}")
        if self.index.portfolios is None:
            raise _HttpError(
                501,
                "this strategy index has no portfolios table; rebuild "
                "the artifact with repro index --portfolios",
            )
        k: Optional[int] = None
        if "k" in params:
            try:
                k = int(params["k"])
            except ValueError:
                raise _HttpError(
                    400,
                    f"parameter 'k' must be a positive integer, got "
                    f"{params['k']!r}",
                )
            if k < 1:
                raise _HttpError(
                    400, f"parameter 'k' must be positive, got {k}"
                )
        target: Optional[float] = None
        if "target" in params:
            try:
                target = float(params["target"])
            except ValueError:
                raise _HttpError(
                    400,
                    f"parameter 'target' must be a fraction in (0, 1], "
                    f"got {params['target']!r}",
                )
            if not 0.0 < target <= 1.0:
                raise _HttpError(
                    400,
                    f"parameter 'target' must be in (0, 1], got {target}",
                )
        key = (
            params.get("chip"), params.get("app"), params.get("input")
        )
        # Hot path: the default-parameter answer was pre-serialized at
        # index-build time, exactly like /v1/strategy.
        if k is None and target is None:
            pre = self.index.portfolio_answer(key)
            if pre is not None:
                body, degraded = pre
                rec.count("serve.portfolio.precompiled")
                if degraded:
                    rec.count("serve.fallbacks")
                return body
        # Explicit k/target (or coordinates outside the table): encode
        # once, cache under a namespaced key so portfolio and strategy
        # entries can never collide.
        cache_key = ("portfolio", key, k, target)
        cached = self.cache.get(cache_key)
        if cached is not None:
            rec.count("serve.portfolio.cache.hits")
            body, degraded = cached
        else:
            rec.count("serve.portfolio.cache.misses")
            body, degraded = render_portfolio_answer(
                self.index,
                chip=key[0],
                app=key[1],
                input=key[2],
                k=k,
                target=target,
            )
            self.cache.put(cache_key, (body, degraded))
        if degraded:
            rec.count("serve.fallbacks")
        return body

    async def _predict(self, body: bytes) -> Tuple[int, dict]:
        rec = self.recorder
        rec.count("serve.requests.predict")
        if self.predictor is None:
            raise _HttpError(
                501, "online prediction is disabled (--no-predict)"
            )
        try:
            parsed = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}")
        if isinstance(parsed, dict) and "queries" in parsed:
            queries = parsed["queries"]
        elif isinstance(parsed, dict) and parsed:
            queries = [parsed]
        else:
            queries = parsed if isinstance(parsed, list) else None
        if not isinstance(queries, list) or not queries:
            raise _HttpError(
                400,
                'expected {"queries": [{"chip": ..., "app": ..., '
                '"input": ..., "config": ...?}, ...]} or a single such '
                "object",
            )
        assert self._coalescer is not None
        # Validate and resolve advisor configs synchronously, then
        # submit every priceable item to the coalescing window at once:
        # items from this request — and from any concurrently parsing
        # requests — ride one vectorized batch-engine call.
        results: List[Optional[dict]] = [None] * len(queries)
        advisors: List[Optional[object]] = [None] * len(queries)
        submitted: List[Tuple[int, "asyncio.Future"]] = []
        errors = 0
        for i, q in enumerate(queries):
            if not isinstance(q, dict):
                results[i] = {"error": f"query must be an object, got {q!r}"}
                errors += 1
                continue
            try:
                chip, app, inp = q.get("chip"), q.get("app"), q.get("input")
                for name, value in (("chip", chip), ("app", app), ("input", inp)):
                    if not isinstance(value, str) or not value:
                        raise PredictionError(
                            f"missing or invalid {name!r} in predict query"
                        )
                if "config" in q:
                    config = Predictor.parse_config(q["config"])
                else:
                    # No explicit configuration: price what the advisor
                    # recommends for these exact coordinates.
                    advisors[i] = self.index.lookup(
                        chip=chip, app=app, input=inp
                    )
                    config = Predictor.parse_config(advisors[i].config)
                submitted.append(
                    (i, asyncio.ensure_future(
                        self._coalescer.price(chip, app, inp, config)
                    ))
                )
            except PredictionError as exc:
                results[i] = {"error": str(exc)}
                errors += 1
        if submitted:
            priced = await asyncio.gather(
                *(future for _, future in submitted), return_exceptions=True
            )
            for (i, _), outcome in zip(submitted, priced):
                if isinstance(outcome, PredictionError):
                    results[i] = {"error": str(outcome)}
                    errors += 1
                elif isinstance(outcome, BaseException):
                    raise outcome  # engine failure: 500, as before
                else:
                    if advisors[i] is not None:
                        outcome["advisor"] = advisors[i].to_dict()
                    results[i] = outcome
                    rec.count("serve.predictions")
                    try:
                        self.observations.record(
                            outcome["chip"],
                            outcome["app"],
                            outcome["input"],
                            outcome["config"],
                            tuple(outcome["times_us"]),
                        )
                        rec.count("serve.refine.recorded")
                    except (KeyError, TypeError):
                        # A priced outcome without full coordinates
                        # cannot feed ?refine=1; pricing still stands.
                        pass
        rec.count("serve.predictions.errors", errors)
        return 200, {"results": results, "errors": errors}


def _make_server(
    index: StrategyIndex,
    opts: dict,
    *,
    recorder,
    port: Optional[int] = None,
    reuse_port: bool = False,
    worker_id: Optional[int] = None,
) -> StrategyServer:
    """One configured server from parsed CLI options (``vars(args)``)."""
    cache = (
        TTLCache(maxsize=opts["cache_size"], ttl=opts["cache_ttl"])
        if opts["cache_size"] > 0
        else TTLCache(maxsize=0)
    )
    predictor = (
        None
        if opts["no_predict"]
        else Predictor(
            scale=opts["predict_scale"],
            repetitions=opts["predict_repetitions"],
        )
    )
    return StrategyServer(
        index,
        host=opts["host"],
        port=opts["port"] if port is None else port,
        max_concurrency=opts["max_concurrency"],
        request_timeout=opts["timeout"],
        idle_timeout=opts["idle_timeout"],
        cache=cache,
        recorder=recorder,
        predictor=predictor,
        reuse_port=reuse_port,
        worker_id=worker_id,
        predict_window=opts["predict_window_ms"] / 1000.0,
        predict_max_batch=opts["predict_max_batch"],
        refine_capacity=opts.get("refine_capacity", DEFAULT_CAPACITY),
    )


def _worker_main(  # pragma: no cover - forked child, exercised e2e
    worker_id: int, opts: dict, port: int, queue
) -> None:
    """One ``--workers`` process: serve until SIGTERM/SIGINT, ship metrics.

    Runs the ordinary :class:`StrategyServer` bound with
    ``SO_REUSEPORT`` on the port the parent resolved.  On startup it
    reports readiness through ``queue`` (the parent only advertises the
    listening address once every worker accepts); on shutdown it drains
    its recorder and ships the snapshot home for the parent to
    ``merge()`` into the one run report.
    """
    import signal

    from ..obs import Recorder

    index = StrategyIndex.load(opts["index"])
    recorder = Recorder() if opts["metrics"] else None
    server = _make_server(
        index,
        opts,
        recorder=recorder,
        port=port,
        reuse_port=True,
        worker_id=worker_id,
    )

    async def _run() -> None:
        await server.start()
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        queue.put(("ready", worker_id, server.port))
        await server.serve_until_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback
        pass
    snapshot = recorder.drain() if recorder is not None else None
    queue.put(("metrics", worker_id, snapshot, server.requests_served))


def _serve_workers(  # pragma: no cover - subprocess-only, exercised e2e
    args, index: StrategyIndex
) -> int:
    """Parent of a ``--workers N`` fleet sharing one ``SO_REUSEPORT`` port."""
    import multiprocessing
    import os
    import signal
    import socket
    import sys

    from ..cli import save_run_report
    from ..obs import Recorder

    if not hasattr(socket, "SO_REUSEPORT"):
        print(
            "[serve] --workers requires SO_REUSEPORT, which this "
            "platform does not provide; run single-process instead",
            file=sys.stderr,
        )
        return 1

    # Resolve the port up front with a placeholder socket that stays
    # bound (but never listens) for the fleet's lifetime: workers bind
    # the same (host, port) with SO_REUSEPORT, and the kernel balances
    # incoming connections across the listening sockets only.
    placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            placeholder.bind((args.host, args.port))
        except OSError as exc:
            print(
                f"[serve] cannot bind {args.host}:{args.port}: {exc}",
                file=sys.stderr,
            )
            return 1
        port = placeholder.getsockname()[1]

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        queue = ctx.Queue()
        opts = vars(args)
        workers = [
            ctx.Process(
                target=_worker_main, args=(wid, opts, port, queue)
            )
            for wid in range(args.workers)
        ]
        for proc in workers:
            proc.start()

        def _drain_queue(want: str, expected: int, results: dict) -> bool:
            """Collect ``expected`` tagged messages; False if a worker died."""
            deadline = None
            while len(results) < expected:
                try:
                    message = queue.get(timeout=0.5)
                except Exception:  # queue.Empty: check for dead workers
                    if any(
                        p.exitcode is not None and p.exitcode != 0
                        for p in workers
                    ):
                        return False
                    if all(p.exitcode is not None for p in workers):
                        # All exited cleanly; their final messages may
                        # still be in flight — drain with a grace period.
                        if deadline is None:
                            deadline = time.monotonic() + 5.0
                        elif time.monotonic() > deadline:
                            return True
                    continue
                if message[0] == want:
                    results[message[1]] = message[2:]
            return True

        def _forward(signum, frame):  # noqa: ARG001 - signal signature
            for proc in workers:
                if proc.is_alive():
                    os.kill(proc.pid, signal.SIGTERM)

        # Install the forwarder BEFORE advertising the address: a
        # SIGTERM/SIGINT racing the startup print would otherwise hit
        # Python's default handler, leaving the workers unsignalled and
        # the parent hung joining them at exit.
        previous = {
            sig: signal.signal(sig, _forward)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            ready: dict = {}
            if not _drain_queue("ready", args.workers, ready):
                print(
                    "[serve] a worker died during startup; aborting",
                    file=sys.stderr,
                )
                for proc in workers:
                    if proc.is_alive():
                        proc.terminate()
                for proc in workers:
                    proc.join()
                return 1
            print(
                f"[serve] listening on http://{args.host}:{port} "
                f"({index.n_entries} index entries, "
                f"{index.n_answers} pre-serialized answers, "
                f"{args.workers} workers, "
                f"predict={'off' if args.no_predict else 'on'})",
                file=sys.stderr,
                flush=True,
            )
            reports: dict = {}
            _drain_queue("metrics", args.workers, reports)
            for proc in workers:
                proc.join()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
    finally:
        placeholder.close()

    total = sum(requests for _, requests in reports.values())
    if args.metrics:
        recorder = Recorder()
        for wid in sorted(reports):
            snapshot, _ = reports[wid]
            if snapshot is not None:
                recorder.merge(snapshot)
        recorder.gauge("serve.workers", float(args.workers))
        save_run_report(
            recorder,
            args.metrics,
            meta={
                "index": args.index,
                "requests": total,
                "workers": args.workers,
                "per_worker_requests": {
                    str(wid): requests
                    for wid, (_, requests) in sorted(reports.items())
                },
            },
        )
        print(f"[serve] wrote run report to {args.metrics}", file=sys.stderr)
    failed = [p.exitcode for p in workers if p.exitcode != 0]
    print(
        f"[serve] shut down cleanly ({total} requests served by "
        f"{args.workers} workers)"
        if not failed
        else f"[serve] workers exited with {failed}",
        file=sys.stderr,
        flush=True,
    )
    return 0 if not failed else 1


def main(argv=None) -> int:
    """CLI: ``python -m repro serve INDEX``."""
    import argparse
    import signal
    import sys

    from ..cli import metrics_parent, save_run_report
    from ..obs import Recorder

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        parents=[metrics_parent()],
        description=(
            "Serve strategy queries from a strategy-index-v1 artifact "
            "over an asyncio HTTP JSON API."
        ),
    )
    parser.add_argument("index", help="strategy-index artifact (repro index)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes sharing the port via SO_REUSEPORT "
            "(default 1: single process); per-worker metrics are "
            "merged into one --metrics run report"
        ),
    )
    parser.add_argument(
        "--max-concurrency",
        type=int,
        default=64,
        help="bound on concurrently dispatched requests (default 64)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-request timeout; slower requests get 503 (default 10)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="drop keep-alive connections idle this long (default 60)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="response cache entries; 0 disables caching (default 1024)",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="response cache time-to-live (default 300)",
    )
    parser.add_argument(
        "--predict-scale",
        type=float,
        default=0.05,
        help="input scale for online /v1/predict pricing (default 0.05)",
    )
    parser.add_argument(
        "--predict-repetitions",
        type=int,
        default=3,
        help="noisy repetitions per online prediction (default 3)",
    )
    parser.add_argument(
        "--predict-window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help=(
            "micro-batching window for POST /v1/predict: concurrent "
            "items arriving within this many milliseconds coalesce "
            "into one batch-engine call (default 2.0; 0 batches only "
            "within a single event-loop tick)"
        ),
    )
    parser.add_argument(
        "--predict-max-batch",
        type=int,
        default=32,
        metavar="N",
        help="flush a predict micro-batch at this many items (default 32)",
    )
    parser.add_argument(
        "--refine-capacity",
        type=int,
        default=DEFAULT_CAPACITY,
        metavar="N",
        help=(
            "distinct (chip, app, input) cells of live /v1/predict "
            "observations kept (LRU) for ?refine=1 strategy answers "
            f"(default {DEFAULT_CAPACITY})"
        ),
    )
    parser.add_argument(
        "--no-predict",
        action="store_true",
        help="disable POST /v1/predict (strategy queries only)",
    )
    args = parser.parse_args(argv)

    if args.workers < 1:
        print("[serve] --workers must be positive", file=sys.stderr)
        return 1
    try:
        index = StrategyIndex.load(args.index)
    except ServeError as exc:
        print(f"[serve] {exc}", file=sys.stderr)
        return 1

    if args.workers > 1:
        return _serve_workers(args, index)

    rec = Recorder() if args.metrics else None
    try:
        server = _make_server(index, vars(args), recorder=rec)
    except ServeError as exc:
        print(f"[serve] {exc}", file=sys.stderr)
        return 1

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-POSIX event loop: Ctrl-C still raises
        print(
            f"[serve] listening on http://{server.host}:{server.port} "
            f"({index.n_entries} index entries, "
            f"{index.n_answers} pre-serialized answers, "
            f"predict={'off' if server.predictor is None else 'on'})",
            file=sys.stderr,
            flush=True,
        )
        await server.serve_until_stopped()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback
        pass
    if rec is not None:
        save_run_report(
            rec,
            args.metrics,
            meta={"index": args.index, "requests": server.requests_served},
        )
        print(f"[serve] wrote run report to {args.metrics}", file=sys.stderr)
    print(
        f"[serve] shut down cleanly ({server.requests_served} requests "
        f"served)",
        file=sys.stderr,
        flush=True,
    )
    return 0
