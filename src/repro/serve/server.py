"""The strategy advisor as an asyncio HTTP JSON API.

``python -m repro serve INDEX`` loads a ``strategy-index-v1`` artifact
(:mod:`repro.serve.index`) and answers over plain HTTP/1.1 — stdlib
asyncio only, no web framework:

* ``GET /v1/strategy?chip=&app=&input=`` — the precompiled Algorithm 1
  recommendation for any subset of the three dimensions, falling back
  up the specialisation lattice (and marked ``degraded``) when the
  most-specialised cell is missing or quarantined; ``&refine=1`` opts
  into the online explore/exploit mode (:mod:`repro.serve.refine`):
  a fully-specified query whose index answer would be degraded instead
  consults live ``/v1/predict`` observations and, on a hit, returns a
  ``"refined": true`` answer with provenance — non-refined responses
  stay byte-identical to the normal path;
* ``GET /v1/portfolio?chip=&app=&input=&k=&target=`` — the greedy
  "few fit most" configuration portfolio for the queried partition:
  the best K code versions to ship, their fraction-of-oracle coverage
  and the full K-vs-coverage curve; requires an index built with
  ``repro index --portfolios`` (501 otherwise), with the same lattice
  fallback and ``degraded`` marking as ``/v1/strategy``;
* ``POST /v1/predict`` — online pricing of explicit (chip, app, input,
  config) points through the vectorized batch engine; ``config`` may
  be omitted to price whatever the advisor recommends;
* ``GET /healthz`` — liveness plus index shape;
* ``GET /metrics`` — the recorder's counters/gauges/histograms and the
  response cache's statistics (spans are excluded: a long-lived server
  would grow them without bound).

Operational behaviour:

* **zero-encode answers** — ``GET /v1/strategy`` for coordinates of
  the index's own lattice is served straight from the artifact's
  pre-serialized bytes table (:meth:`StrategyIndex.answer`): a dict
  lookup and a socket write, no per-request JSON encoding.  Unknown
  coordinates (and pre-table artifacts) fall back to encode-on-miss
  through the LRU+TTL response cache;
* **bounded concurrency** — at most ``max_concurrency`` requests are
  dispatched at once (an :class:`asyncio.Semaphore`); the rest queue;
* **per-request timeout** — a dispatch exceeding ``request_timeout``
  returns 503 and counts ``serve.timeouts``;
* **predict micro-batching** — concurrent ``POST /v1/predict`` items
  coalesce behind a small time/size window (``predict_window`` /
  ``predict_max_batch``) into one vectorized
  :meth:`~repro.serve.predict.Predictor.price_many` call, so predict
  throughput rides the batch engine's speedup instead of paying one
  executor round-trip per item — while each item's numbers stay
  study-identical;
* **multi-worker** — ``repro serve --workers N`` forks N processes
  sharing one port via ``SO_REUSEPORT``; each worker runs this server
  unchanged, and per-worker recorders are merged through the standard
  ``drain()/merge()`` path into one run report that reconciles exactly
  with the total requests served;
* **supervision** — the fleet parent runs a
  :class:`~repro.serve.supervisor.FleetSupervisor`: a dead worker is
  respawned with exponential backoff under a ``--max-restarts``
  budget (budget exhausted → clean escalation, exit ≠ 0), workers
  ship periodic heartbeat metric deltas so a kill -9 loses at most
  one interval of counters, and ``serve.workers.{restarts,deaths}``
  land in the merged run report;
* **overload shedding** — optional per-endpoint-class admission
  watermarks (:mod:`repro.serve.admission`) refuse excess load as
  ``429 + Retry-After`` before it queues, browning out expensive
  ``/v1/predict`` before cheap precompiled lookups, and a circuit
  breaker turns predict-engine failure bursts into fast-fail 503s
  with half-open probing;
* **index hot-reload** — ``SIGHUP`` (or ``POST /admin/reload`` on a
  loopback-only ``--admin-port``) re-reads the index path, validates
  checksum + format tag, and atomically swaps the new index in; any
  validation failure rolls back to the serving index
  (``serve.reload.*`` counters, generation in ``/healthz``);
* **fault injection** — ``--faults DIR`` arms the standard
  :class:`~repro.faults.FaultPlan` tokens at serve-path points
  (worker crash, slow handler, corrupt reload candidate) so the chaos
  harness (``benchmarks/bench_serve.py --chaos``) and the supervisor
  tests drive every recovery path deterministically;
* **graceful shutdown** — SIGTERM/SIGINT stop the listener, let
  in-flight requests drain, flush the ``--metrics`` sidecar and exit 0.

Every response body is ``json.dumps(payload, sort_keys=True)`` — the
pre-serialized table stores exactly those bytes — so two servers over
the same index give byte-identical answers; the e2e test holds the
server to the offline :mod:`repro.core.strategies` path and the
``strategy-responses.json`` golden pins the encoding itself.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qsl, urlsplit

from ..errors import FlushTimeoutError, PredictionError, ServeError
from ..faults import (
    FaultPlan,
    SERVE_HANDLER_SLOW,
    SERVE_RELOAD_CORRUPT,
    SERVE_WORKER_CRASH,
)
from ..obs import NULL_RECORDER
from .admission import LOOKUP, PREDICT, AdmissionController, CircuitBreaker
from .cache import TTLCache
from .index import (
    StrategyIndex,
    _config_label,
    render_answer,
    render_portfolio_answer,
)
from .predict import Predictor
from .refine import DEFAULT_CAPACITY, ObservationStore

__all__ = ["PredictCoalescer", "StrategyServer", "MAX_BODY_BYTES"]

#: Largest accepted request body; bigger POSTs get 413.
MAX_BODY_BYTES = 1 << 20

#: Paths exempt from admission control: liveness probes must answer
#: even when the data plane is shedding, or the orchestrator mistakes
#: "saturated" for "dead" and kills the worker.
_CONTROL_PLANE_PATHS = frozenset({"/healthz", "/metrics"})

#: Largest accepted request line + headers block.
_MAX_HEADER_BYTES = 16384

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """An error with a definite HTTP status, raised by handlers."""

    def __init__(
        self, status: int, message: str, retry_after: Optional[int] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        #: When set, the response carries a ``Retry-After`` header.
        self.retry_after = retry_after


def _price_batch(predictor, items: List[tuple]) -> List[object]:
    """Price a coalesced batch in the executor thread.

    Prefers the predictor's vectorized
    :meth:`~repro.serve.predict.Predictor.price_many` (one lock, one
    pass); any predictor-shaped object with only ``price`` still works
    item by item.  Per-item failures come back as
    :class:`~repro.errors.PredictionError` *values*, never aborting the
    batch.
    """
    many = getattr(predictor, "price_many", None)
    if many is not None:
        return many(items)
    results: List[object] = []
    for chip, app, inp, config in items:
        try:
            results.append(predictor.price(chip, app, inp, config))
        except PredictionError as exc:
            results.append(exc)
    return results


class PredictCoalescer:
    """Micro-batches concurrent predict items into one engine call.

    Items submitted via :meth:`price` wait at most ``window`` seconds
    (or until ``max_batch`` items are pending, whichever comes first)
    and are then priced together by a single executor dispatch of
    :func:`_price_batch`.  Each caller awaits its own future, so
    per-item results — and per-item errors — are preserved exactly;
    coalescing changes *when* pricing happens, never *what* it returns.

    ``window=0`` still coalesces items that arrive within one event-
    loop tick (e.g. all items of one request body) but adds no latency.
    Everything runs on the event loop thread except the batch itself,
    so no locking is needed here.

    ``flush_timeout`` puts a hard deadline on each flushed batch: a
    single slow or oversized batch would otherwise stall *every*
    coalesced waiter past the request timeout, burning one dispatch
    slot per waiter.  On deadline every waiter gets a
    :class:`~repro.errors.FlushTimeoutError` (a per-item 503) and
    ``serve.predict.flush_timeouts`` counts the batch; the abandoned
    executor thread finishes in the background and its results are
    discarded.  ``flush_timeout=0`` disables the deadline.
    """

    def __init__(
        self,
        predictor,
        recorder=None,
        *,
        window: float = 0.0,
        max_batch: int = 32,
        flush_timeout: float = 0.0,
    ) -> None:
        if window < 0:
            raise ServeError("predict window must be non-negative")
        if max_batch < 1:
            raise ServeError("predict max_batch must be positive")
        if flush_timeout < 0:
            raise ServeError("predict flush_timeout must be non-negative")
        self.predictor = predictor
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.window = window
        self.max_batch = max_batch
        self.flush_timeout = flush_timeout
        self._pending: List[tuple] = []
        self._timer: Optional[asyncio.TimerHandle] = None

    async def price(self, chip: str, app: str, inp: str, config) -> dict:
        """Submit one item; resolves to its result (or raises its error)."""
        loop = asyncio.get_event_loop()
        future = loop.create_future()
        self._pending.append((chip, app, inp, config, future))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.window, self._flush)
        return await future

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch, self._pending = self._pending, []
        if batch:
            asyncio.ensure_future(self._run(batch))

    async def _run(self, batch: List[tuple]) -> None:
        rec = self.recorder
        rec.count("serve.predict.batches")
        rec.observe("serve.predict.batch_size", float(len(batch)))
        loop = asyncio.get_event_loop()
        items = [(chip, app, inp, cfg) for chip, app, inp, cfg, _ in batch]
        try:
            call = loop.run_in_executor(
                None, _price_batch, self.predictor, items
            )
            if self.flush_timeout > 0:
                results = await asyncio.wait_for(call, self.flush_timeout)
            else:
                results = await call
        except asyncio.TimeoutError:
            rec.count("serve.predict.flush_timeouts")
            deadline_exc = FlushTimeoutError(
                f"coalesced predict batch of {len(batch)} item(s) "
                f"exceeded the {self.flush_timeout}s flush deadline"
            )
            for *_, future in batch:
                if not future.done():
                    future.set_exception(deadline_exc)
            return
        except Exception as exc:  # engine-level failure: fail every item
            for *_, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (*_, future), result in zip(batch, results):
            if future.done():  # caller timed out or was cancelled
                continue
            if isinstance(result, PredictionError):
                future.set_exception(result)
            else:
                future.set_result(result)


class StrategyServer:
    """Serves one loaded :class:`~repro.serve.index.StrategyIndex`.

    The server binds lazily in :meth:`start` (``port=0`` picks a free
    port; the resolved one is in :attr:`port`) and runs until
    :meth:`stop` or a signal installed by :func:`main`.  All asyncio
    primitives are created inside the running loop for 3.9
    compatibility.
    """

    def __init__(
        self,
        index: StrategyIndex,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrency: int = 64,
        request_timeout: float = 10.0,
        idle_timeout: float = 60.0,
        cache: Optional[TTLCache] = None,
        recorder=None,
        predictor: Optional[Predictor] = None,
        clock: Callable[[], float] = time.perf_counter,
        reuse_port: bool = False,
        worker_id: Optional[int] = None,
        predict_window: float = 0.0,
        predict_max_batch: int = 32,
        observations: Optional[ObservationStore] = None,
        refine_capacity: int = DEFAULT_CAPACITY,
        predict_flush_timeout: float = 0.0,
        admission: Optional[AdmissionController] = None,
        breaker: Optional[CircuitBreaker] = None,
        index_path: Optional[str] = None,
        faults: Optional[FaultPlan] = None,
        admin_port: Optional[int] = None,
        incarnation: int = 0,
    ) -> None:
        if max_concurrency < 1:
            raise ServeError("max_concurrency must be positive")
        if request_timeout <= 0:
            raise ServeError("request_timeout must be positive")
        if predict_window < 0:
            raise ServeError("predict_window must be non-negative")
        if predict_max_batch < 1:
            raise ServeError("predict_max_batch must be positive")
        self.index = index
        self.host = host
        self.port = port
        self.max_concurrency = max_concurrency
        self.request_timeout = request_timeout
        self.idle_timeout = idle_timeout
        self.cache = cache if cache is not None else TTLCache()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.predictor = predictor
        self._clock = clock
        #: Bind with ``SO_REUSEPORT`` so sibling worker processes can
        #: share the listening port (``repro serve --workers N``).
        self.reuse_port = reuse_port
        #: This process's index in a ``--workers`` fleet (``None`` when
        #: single-process); exposed in ``/metrics`` so scrapers cannot
        #: mistake one worker's counters for service totals.
        self.worker_id = worker_id
        self.predict_window = predict_window
        self.predict_max_batch = predict_max_batch
        #: Live /v1/predict observations backing ?refine=1 strategy
        #: answers (bounded LRU; injectable for tests).
        self.observations = (
            observations
            if observations is not None
            else ObservationStore(refine_capacity)
        )
        self.predict_flush_timeout = predict_flush_timeout
        #: Overload shedding + predict circuit breaking; both default
        #: to disabled instances so the hot path has one code shape.
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(max_concurrency=max_concurrency)
        )
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker()
        )
        #: Where ``SIGHUP`` / ``POST /admin/reload`` re-reads the index
        #: from; ``None`` disables hot reload (in-memory index only).
        self.index_path = index_path
        #: Armed serve-path fault tokens (``--faults DIR``); ``None``
        #: in production means every fault hook is a no-op.
        self.faults = faults
        #: Loopback-only admin port (``POST /admin/reload``); ``None``
        #: binds no admin listener.
        self.admin_port = admin_port
        #: How many times this worker slot has been respawned by the
        #: fleet supervisor (0 for the first spawn / single-process).
        self.incarnation = incarnation
        self.index_generation = 0
        self.reloads = 0
        self.reload_failures = 0
        self._reload_lock: Optional[asyncio.Lock] = None
        self._coalescer: Optional[PredictCoalescer] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._admin_server: Optional[asyncio.AbstractServer] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._stopping: Optional[asyncio.Event] = None
        self._connections: set = set()
        self._busy: set = set()
        self.requests_served = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._semaphore = asyncio.Semaphore(self.max_concurrency)
        self._stopping = asyncio.Event()
        self._reload_lock = asyncio.Lock()
        if self.predictor is not None:
            self._coalescer = PredictCoalescer(
                self.predictor,
                self.recorder,
                window=self.predict_window,
                max_batch=self.predict_max_batch,
                flush_timeout=self.predict_flush_timeout,
            )
        kwargs = {"reuse_port": True} if self.reuse_port else {}
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, **kwargs
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.admin_port is not None:
            # Admin surface is deliberately loopback-only: reload is an
            # operator action, never an internet-facing endpoint.
            self._admin_server = await asyncio.start_server(
                self._handle_admin, "127.0.0.1", self.admin_port
            )
            self.admin_port = self._admin_server.sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`request_shutdown` (or :meth:`stop`) fires."""
        if self._server is None:
            await self.start()
        assert self._stopping is not None
        await self._stopping.wait()
        await self._shutdown()

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (signal-handler safe)."""
        if self._stopping is not None and not self._stopping.is_set():
            self._stopping.set()

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight requests, then close."""
        self.request_shutdown()
        await self._shutdown()

    async def _shutdown(self) -> None:
        if self._server is None:
            return
        # Stop accepting new connections first.
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._admin_server is not None:
            self._admin_server.close()
            await self._admin_server.wait_closed()
            self._admin_server = None
        # Let busy connections finish their current request (bounded by
        # the per-request timeout plus slack), then drop idle keep-alive
        # connections, which would otherwise pin the loop open.
        deadline = self._clock() + self.request_timeout + 1.0
        while self._busy and self._clock() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                    break
                except _HttpError as exc:
                    # Unparseable request: answer and drop the connection
                    # (the stream position is no longer trustworthy).
                    self.recorder.count("serve.errors")
                    await self._write_response(
                        writer, exc.status, {"error": str(exc)}, False
                    )
                    break
                if request is None:  # clean EOF between requests
                    break
                method, target, body, keep_alive = request
                self._busy.add(task)
                try:
                    status, payload, headers = await self._dispatch(
                        method, target, body
                    )
                finally:
                    self._busy.discard(task)
                if self._stopping is not None and self._stopping.is_set():
                    keep_alive = False
                await self._write_response(
                    writer, status, payload, keep_alive, extra_headers=headers
                )
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
                self._busy.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader
    ) -> Optional[Tuple[str, str, bytes, bool]]:
        """Parse one HTTP/1.1 request; ``None`` on clean EOF.

        Timeouts are split by intent: waiting for the *first* byte of
        a request is normal keep-alive idleness (``idle_timeout``;
        raises :class:`asyncio.TimeoutError`, the caller closes
        silently), while a client that starts a request and then
        trickles it — a slow-loris — gets ``request_timeout`` to
        deliver the rest, after which the server answers 408 and drops
        the connection.  Oversized lines are rejected as 400 even when
        the transport's read buffer gives up before our own counter
        does (``LimitOverrunError`` surfaces as ``ValueError``).
        """
        try:
            line = await asyncio.wait_for(
                reader.readline(), self.idle_timeout
            )
        except ValueError:
            raise _HttpError(400, "request line too long")
        if not line:
            return None
        if len(line) > _MAX_HEADER_BYTES:
            raise _HttpError(400, "request line too long")

        # One cumulative deadline for the whole request: a trickler
        # cannot reset its clock by delivering one byte per read.
        deadline = self._clock() + self.request_timeout

        timed_out = _HttpError(
            408,
            f"timed out reading the request after "
            f"{self.request_timeout}s (slow client)",
        )

        async def _read_more(coro):
            remaining = deadline - self._clock()
            if remaining <= 0:
                coro.close()
                raise timed_out
            try:
                return await asyncio.wait_for(coro, remaining)
            except asyncio.TimeoutError:
                raise timed_out
            except ValueError:
                raise _HttpError(400, "header line too long")

        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {line!r}")
        method, target, version = parts
        headers: Dict[str, str] = {}
        total = len(line)
        while True:
            hline = await _read_more(reader.readline())
            total += len(hline)
            if total > _MAX_HEADER_BYTES:
                raise _HttpError(400, "headers too large")
            if hline in (b"\r\n", b"\n", b""):
                break
            name, _, value = hline.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise _HttpError(400, f"bad Content-Length {length!r}")
            if n < 0:
                raise _HttpError(400, "negative Content-Length")
            if n > MAX_BODY_BYTES:
                raise _HttpError(
                    413, f"request body exceeds {MAX_BODY_BYTES} bytes"
                )
            body = await _read_more(reader.readexactly(n))
        keep_alive = headers.get("connection", "").lower() != "close" and (
            version.upper() != "HTTP/1.0"
            or headers.get("connection", "").lower() == "keep-alive"
        )
        return method, target, body, keep_alive

    async def _write_response(
        self,
        writer,
        status: int,
        payload: Union[dict, bytes],
        keep_alive: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        # The zero-encode hot path hands pre-serialized bodies straight
        # through; everything else still encodes here.  Both are the
        # same ``json.dumps(..., sort_keys=True)`` bytes by contract.
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        extra = ""
        if extra_headers:
            extra = "".join(
                f"{name}: {value}\r\n"
                for name, value in extra_headers.items()
            )
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"{extra}"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- dispatch ----------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Union[dict, bytes], Optional[Dict[str, str]]]:
        """Route one request; never raises."""
        rec = self.recorder
        rec.count("serve.requests")
        self.requests_served += 1
        started = self._clock()
        headers: Optional[Dict[str, str]] = None
        if self.faults is not None:
            # Hard worker death mid-dispatch (chaos harness): the
            # process disappears without unwinding, like an OOM kill.
            self.faults.fire("crash", SERVE_WORKER_CRASH)
        # Admission: refuse work the server cannot finish in time as a
        # cheap 429 *before* it queues at the semaphore.  Expensive
        # predict sheds before cheap precompiled lookups (brownout).
        # Control-plane probes (/healthz, /metrics) are exempt: an
        # orchestrator must be able to tell "saturated but alive" from
        # dead — shedding its health check invites a kill that makes
        # the overload worse.
        path = target.split("?", 1)[0]
        if path in _CONTROL_PLANE_PATHS:
            endpoint_class: Optional[str] = None
        elif path == "/v1/predict":
            endpoint_class = PREDICT
        else:
            endpoint_class = LOOKUP
        if endpoint_class is not None and not self.admission.try_acquire(
            endpoint_class
        ):
            retry = self.admission.retry_after()
            rec.count("serve.shed")
            rec.count(f"serve.shed.{endpoint_class}")
            status, payload = 429, {
                "error": (
                    f"server is shedding {endpoint_class} load; retry "
                    f"in {retry}s"
                ),
                "retry_after": retry,
            }
            headers = {"Retry-After": str(retry)}
            rec.observe(
                "serve.latency_ms", (self._clock() - started) * 1000.0
            )
            rec.count(f"serve.responses.{status // 100}xx")
            return status, payload, headers
        assert self._semaphore is not None
        try:
            async with self._semaphore:
                status, payload = await asyncio.wait_for(
                    self._route(method, target, body), self.request_timeout
                )
        except asyncio.TimeoutError:
            rec.count("serve.timeouts")
            status, payload = 503, {
                "error": (
                    f"request exceeded the {self.request_timeout}s "
                    f"server timeout"
                )
            }
        except _HttpError as exc:
            rec.count("serve.errors")
            status, payload = exc.status, {"error": str(exc)}
            if exc.retry_after is not None:
                headers = {"Retry-After": str(exc.retry_after)}
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            rec.count("serve.errors")
            status, payload = 500, {"error": f"internal error: {exc}"}
        finally:
            if endpoint_class is not None:
                self.admission.release(
                    endpoint_class, (self._clock() - started) * 1000.0
                )
        rec.observe("serve.latency_ms", (self._clock() - started) * 1000.0)
        rec.count(f"serve.responses.{status // 100}xx")
        return status, payload, headers

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Union[dict, bytes]]:
        if self.faults is not None:
            # A straggling handler (chaos harness): sleep on the event
            # loop — not the blocking fire() path — so other requests
            # keep flowing and only this one goes slow.
            token = self.faults.consume("slow", SERVE_HANDLER_SLOW)
            if token is not None:
                await asyncio.sleep(float(token.get("param", 0.0)))
        url = urlsplit(target)
        path = url.path
        if path == "/healthz":
            self._require_method(method, "GET")
            return 200, self._healthz()
        if path == "/metrics":
            self._require_method(method, "GET")
            return 200, self._metrics()
        if path == "/v1/strategy":
            self._require_method(method, "GET")
            return 200, self._strategy(url.query)
        if path == "/v1/portfolio":
            self._require_method(method, "GET")
            return 200, self._portfolio(url.query)
        if path == "/v1/predict":
            self._require_method(method, "POST")
            return await self._predict(body)
        raise _HttpError(404, f"unknown path {path!r}")

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method.upper() != expected:
            raise _HttpError(405, f"use {expected} for this endpoint")

    # -- hot reload ---------------------------------------------------------

    def request_reload(self) -> None:
        """Schedule an index hot-reload (SIGHUP-handler safe)."""
        asyncio.ensure_future(self.reload_index())

    async def reload_index(self) -> dict:
        """Re-read :attr:`index_path`, validate, and atomically swap.

        The candidate file is read and validated (checksum + format
        tag, the same gauntlet as :meth:`StrategyIndex.load`) *before*
        anything changes; any failure leaves the serving index — and
        its generation — untouched, so a bad deploy rolls back to the
        last good artifact by doing nothing.  On success the swap is a
        single assignment on the event-loop thread (in-flight requests
        hold references to whichever index they started with), the
        response cache is cleared, and the generation counter bumps.
        """
        if self._reload_lock is None:
            self._reload_lock = asyncio.Lock()
        async with self._reload_lock:
            rec = self.recorder
            # ``serve.reload.attempts`` is counted next to each outcome
            # below — never before the off-loop read — so the doctor's
            # ``attempts == success + failures`` reconciliation holds
            # even when a heartbeat drain or a worker kill lands in the
            # executor await window mid-reload.
            generation = self.index_generation
            if not self.index_path:
                self.reload_failures += 1
                rec.count("serve.reload.attempts")
                rec.count("serve.reload.failures")
                return {
                    "reloaded": False,
                    "generation": generation,
                    "error": "server has no index path to reload from",
                }
            # Consume the chaos token on the loop thread (FaultPlan
            # state is not shared with executor threads), then read and
            # validate off-loop: a large candidate index must not stall
            # every in-flight request for the whole read + checksum
            # parse.  Only the final swap below touches loop state.
            corrupt = bool(
                self.faults is not None
                and self.faults.consume("corrupt", SERVE_RELOAD_CORRUPT)
            )
            index_path = self.index_path

            def _read_and_validate() -> StrategyIndex:
                with open(index_path, encoding="utf-8") as f:
                    text = f.read()
                if corrupt:
                    # Chaos harness: garble the candidate mid-deploy so
                    # checksum validation — and rollback — must fire.
                    text = text[: len(text) // 2] + '{"corrupt":'
                return StrategyIndex.loads(text, source=index_path)

            try:
                index = await asyncio.get_running_loop().run_in_executor(
                    None, _read_and_validate
                )
            except (OSError, UnicodeDecodeError, ServeError) as exc:
                self.reload_failures += 1
                rec.count("serve.reload.attempts")
                rec.count("serve.reload.failures")
                print(
                    f"[serve] reload failed, still serving generation "
                    f"{generation}: {exc}",
                    file=sys.stderr,
                    flush=True,
                )
                return {
                    "reloaded": False,
                    "generation": generation,
                    "error": str(exc),
                }
            self.index = index
            self.cache.clear()
            self.index_generation += 1
            self.reloads += 1
            rec.count("serve.reload.attempts")
            rec.count("serve.reload.success")
            print(
                f"[serve] reloaded index from {self.index_path!r} "
                f"(generation {self.index_generation}, "
                f"{index.n_entries} entries)",
                file=sys.stderr,
                flush=True,
            )
            return {
                "reloaded": True,
                "generation": self.index_generation,
                "entries": index.n_entries,
            }

    async def _handle_admin(self, reader, writer) -> None:
        """One loopback admin connection: reload / health, then close."""
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, target, _, _ = request
            path = urlsplit(target).path
            if path == "/admin/reload":
                if method.upper() != "POST":
                    raise _HttpError(405, "use POST for /admin/reload")
                result = await self.reload_index()
                status = 200 if result.get("reloaded") else 409
                await self._write_response(writer, status, result, False)
            elif path == "/admin/health":
                if method.upper() != "GET":
                    raise _HttpError(405, "use GET for /admin/health")
                await self._write_response(writer, 200, self._healthz(), False)
            else:
                raise _HttpError(404, f"unknown admin path {path!r}")
        except _HttpError as exc:
            try:
                await self._write_response(
                    writer, exc.status, {"error": str(exc)}, False
                )
            except ConnectionError:
                pass
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    # -- endpoints ---------------------------------------------------------

    def _healthz(self) -> dict:
        payload = {
            "status": "ok",
            "entries": self.index.n_entries,
            "precompiled_answers": self.index.n_answers,
            "levels": {
                level: len(cells)
                for level, cells in sorted(self.index.levels.items())
            },
            "coverage": self.index.coverage.describe(),
        }
        if self.index.portfolios is not None:
            payload["portfolio_curves"] = self.index.portfolios.n_curves
        payload["refine_cells"] = len(self.observations)
        # Operational provenance: which process answered, how often its
        # slot has been respawned, and what index generation it serves
        # — the chaos harness and the supervisor smoke checks read
        # these to pick kill victims and to assert self-healing.
        payload["pid"] = os.getpid()
        payload["worker_restarts"] = self.incarnation
        payload["index_generation"] = self.index_generation
        payload["reloads"] = {
            "ok": self.reloads,
            "failed": self.reload_failures,
        }
        payload["admission"] = self.admission.stats()
        payload["breaker"] = self.breaker.stats()
        if self.worker_id is not None:
            payload["worker"] = self.worker_id
        return payload

    def _metrics(self) -> dict:
        snap = self.recorder.snapshot()
        payload = {
            "counters": snap.get("counters", {}),
            "gauges": snap.get("gauges", {}),
            # {name: [count, sum, min, max]}, matching RunReport.
            "histograms": snap.get("histograms", {}),
            "cache": self.cache.stats(),
            "refine": self.observations.stats(),
            "requests_served": self.requests_served,
        }
        if self.worker_id is not None:
            # Per-worker view only: scraping N workers and summing is
            # the way to a service total (the run-report sidecar merges
            # exactly that); a lone scrape must not pose as the total.
            payload["worker"] = self.worker_id
        return payload

    def _strategy(self, query: str) -> bytes:
        rec = self.recorder
        rec.count("serve.requests.strategy")
        params = dict(parse_qsl(query, keep_blank_values=True))
        unknown = set(params) - {"chip", "app", "input", "refine"}
        if unknown:
            raise _HttpError(
                400,
                f"unknown query parameter(s) {sorted(unknown)}; expected "
                f"a subset of chip, app, input, refine",
            )
        for name, value in params.items():
            if not value:
                raise _HttpError(400, f"empty value for parameter {name!r}")
        refine = params.pop("refine", None)
        if refine is not None and refine not in ("0", "1"):
            raise _HttpError(
                400,
                f"parameter 'refine' must be '0' or '1', got {refine!r}",
            )
        key = (
            params.get("chip"), params.get("app"), params.get("input")
        )
        if refine == "1":
            refined = self._refined(key)
            if refined is not None:
                return refined
        # Hot path: the answer was pre-serialized at index-build time —
        # a dict lookup and a socket write, no JSON encoding.
        pre = self.index.answer(key)
        if pre is not None:
            body, degraded = pre
            rec.count("serve.answers.precompiled")
            if degraded:
                rec.count("serve.fallbacks")
            return body
        # Long tail (coordinates outside the index's lattice, or an
        # artifact predating the answers table): encode once, cache.
        cached = self.cache.get(key)
        if cached is not None:
            rec.count("serve.cache.hits")
            body, degraded = cached
        else:
            rec.count("serve.cache.misses")
            body, degraded = render_answer(
                self.index, chip=key[0], app=key[1], input=key[2]
            )
            self.cache.put(key, (body, degraded))
        if degraded:
            rec.count("serve.fallbacks")
        return body

    def _refined(
        self, key: Tuple[Optional[str], Optional[str], Optional[str]]
    ) -> Optional[bytes]:
        """An online-refined answer for ``?refine=1``, or ``None``.

        ``None`` sends the request down the normal (precompiled /
        cached) path.  Refinement applies only when all three
        coordinates are named *and* the index's own answer would be
        degraded (a fallback up the lattice): an exact non-degraded
        index cell is offline ground truth and always outranks live
        observations, while a degraded fallback loses to any live
        evidence for the exact cell.  Counters reconcile as
        ``serve.refine.requests == served + misses + exact``.
        """
        rec = self.recorder
        rec.count("serve.refine.requests")
        chip, app, inp = key
        if not (chip and app and inp):
            # Partial coordinates name a lattice partition, not a cell
            # /v1/predict could ever have priced.
            rec.count("serve.refine.misses")
            return None
        answer = self.index.lookup(chip=chip, app=app, input=inp)
        if not answer.degraded:
            rec.count("serve.refine.exact")
            return None
        hit = self.observations.best(chip, app, inp)
        if hit is None:
            rec.count("serve.refine.misses")
            return None
        config, mean_us, n_obs = hit
        payload = {"query": {"chip": chip, "app": app, "input": inp}}
        payload.update(answer.to_dict())
        payload.update(
            {
                "config": config,
                "label": _config_label(config),
                "served_level": "refined",
                "degraded": False,
                "refined": True,
                "observations": n_obs,
                "expected_speedup": None,
                "slowdown_vs_oracle": None,
                "n_tests": 0,
                "note": (
                    f"refined from {n_obs} live /v1/predict "
                    f"observation(s): mean median {mean_us:.1f} us "
                    f"under [{_config_label(config)}]; index fallback "
                    f"was {answer.served_level} [{answer.config}]"
                ),
            }
        )
        rec.count("serve.refine.served")
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def _portfolio(self, query: str) -> bytes:
        rec = self.recorder
        rec.count("serve.requests.portfolio")
        params = dict(parse_qsl(query, keep_blank_values=True))
        unknown = set(params) - {"chip", "app", "input", "k", "target"}
        if unknown:
            raise _HttpError(
                400,
                f"unknown query parameter(s) {sorted(unknown)}; expected "
                f"a subset of chip, app, input, k, target",
            )
        for name, value in params.items():
            if not value:
                raise _HttpError(400, f"empty value for parameter {name!r}")
        if self.index.portfolios is None:
            raise _HttpError(
                501,
                "this strategy index has no portfolios table; rebuild "
                "the artifact with repro index --portfolios",
            )
        k: Optional[int] = None
        if "k" in params:
            try:
                k = int(params["k"])
            except ValueError:
                raise _HttpError(
                    400,
                    f"parameter 'k' must be a positive integer, got "
                    f"{params['k']!r}",
                )
            if k < 1:
                raise _HttpError(
                    400, f"parameter 'k' must be positive, got {k}"
                )
        target: Optional[float] = None
        if "target" in params:
            try:
                target = float(params["target"])
            except ValueError:
                raise _HttpError(
                    400,
                    f"parameter 'target' must be a fraction in (0, 1], "
                    f"got {params['target']!r}",
                )
            if not 0.0 < target <= 1.0:
                raise _HttpError(
                    400,
                    f"parameter 'target' must be in (0, 1], got {target}",
                )
        key = (
            params.get("chip"), params.get("app"), params.get("input")
        )
        # Hot path: the default-parameter answer was pre-serialized at
        # index-build time, exactly like /v1/strategy.
        if k is None and target is None:
            pre = self.index.portfolio_answer(key)
            if pre is not None:
                body, degraded = pre
                rec.count("serve.portfolio.precompiled")
                if degraded:
                    rec.count("serve.fallbacks")
                return body
        # Explicit k/target (or coordinates outside the table): encode
        # once, cache under a namespaced key so portfolio and strategy
        # entries can never collide.
        cache_key = ("portfolio", key, k, target)
        cached = self.cache.get(cache_key)
        if cached is not None:
            rec.count("serve.portfolio.cache.hits")
            body, degraded = cached
        else:
            rec.count("serve.portfolio.cache.misses")
            body, degraded = render_portfolio_answer(
                self.index,
                chip=key[0],
                app=key[1],
                input=key[2],
                k=k,
                target=target,
            )
            self.cache.put(cache_key, (body, degraded))
        if degraded:
            rec.count("serve.fallbacks")
        return body

    async def _predict(self, body: bytes) -> Tuple[int, dict]:
        rec = self.recorder
        rec.count("serve.requests.predict")
        if self.predictor is None:
            raise _HttpError(
                501, "online prediction is disabled (--no-predict)"
            )
        # Parse and shape-check the body BEFORE consulting the breaker:
        # a malformed request must never consume the half-open probe
        # slot (its 400 carries no outcome to adjudicate the probe).
        try:
            parsed = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"request body is not valid JSON: {exc}")
        if isinstance(parsed, dict) and "queries" in parsed:
            queries = parsed["queries"]
        elif isinstance(parsed, dict) and parsed:
            queries = [parsed]
        else:
            queries = parsed if isinstance(parsed, list) else None
        if not isinstance(queries, list) or not queries:
            raise _HttpError(
                400,
                'expected {"queries": [{"chip": ..., "app": ..., '
                '"input": ..., "config": ...?}, ...]} or a single such '
                "object",
            )
        if not self.breaker.allow():
            # The engine has been failing repeatedly: fast-fail instead
            # of queueing more work behind it (half-open probes admit
            # one request per reset window to test recovery).
            rec.count("serve.breaker.fast_fails")
            raise _HttpError(
                503,
                "predict engine circuit breaker is open after repeated "
                "failures; retrying after the breaker reset window",
                retry_after=self.breaker.retry_after(),
            )
        # A True allow() while half-open makes this request THE probe.
        # Every path from here must adjudicate it (record_success /
        # record_failure) or abandon it — a request where every item
        # fails local validation, or one cancelled by the server
        # timeout, would otherwise latch the probe and fast-fail every
        # later predict until a restart.
        probing = self.breaker.state == CircuitBreaker.HALF_OPEN
        adjudicated = False
        assert self._coalescer is not None
        # Validate and resolve advisor configs synchronously, then
        # submit every priceable item to the coalescing window at once:
        # items from this request — and from any concurrently parsing
        # requests — ride one vectorized batch-engine call.
        results: List[Optional[dict]] = [None] * len(queries)
        advisors: List[Optional[object]] = [None] * len(queries)
        submitted: List[Tuple[int, "asyncio.Future"]] = []
        errors = 0
        try:
            for i, q in enumerate(queries):
                if not isinstance(q, dict):
                    results[i] = {"error": f"query must be an object, got {q!r}"}
                    errors += 1
                    continue
                try:
                    chip, app, inp = q.get("chip"), q.get("app"), q.get("input")
                    for name, value in (("chip", chip), ("app", app), ("input", inp)):
                        if not isinstance(value, str) or not value:
                            raise PredictionError(
                                f"missing or invalid {name!r} in predict query"
                            )
                    if "config" in q:
                        config = Predictor.parse_config(q["config"])
                    else:
                        # No explicit configuration: price what the advisor
                        # recommends for these exact coordinates.
                        advisors[i] = self.index.lookup(
                            chip=chip, app=app, input=inp
                        )
                        config = Predictor.parse_config(advisors[i].config)
                    submitted.append(
                        (i, asyncio.ensure_future(
                            self._coalescer.price(chip, app, inp, config)
                        ))
                    )
                except PredictionError as exc:
                    results[i] = {"error": str(exc)}
                    errors += 1
            flush_timeouts = 0
            if submitted:
                priced = await asyncio.gather(
                    *(future for _, future in submitted),
                    return_exceptions=True,
                )
                for (i, _), outcome in zip(submitted, priced):
                    # Every branch below records an outcome with the
                    # breaker, so reaching the loop adjudicates a probe.
                    adjudicated = True
                    if isinstance(outcome, FlushTimeoutError):
                        # The coalesced batch blew its flush deadline: a
                        # per-item 503, and the breaker hears about it.
                        results[i] = {"error": str(outcome), "status": 503}
                        errors += 1
                        flush_timeouts += 1
                        self.breaker.record_failure()
                    elif isinstance(outcome, PredictionError):
                        results[i] = {"error": str(outcome)}
                        errors += 1
                        self.breaker.record_failure()
                    elif isinstance(outcome, BaseException):
                        self.breaker.record_failure()
                        raise outcome  # engine failure: 500, as before
                    else:
                        self.breaker.record_success()
                        if advisors[i] is not None:
                            outcome["advisor"] = advisors[i].to_dict()
                        results[i] = outcome
                        rec.count("serve.predictions")
                        try:
                            self.observations.record(
                                outcome["chip"],
                                outcome["app"],
                                outcome["input"],
                                outcome["config"],
                                tuple(outcome["times_us"]),
                            )
                            rec.count("serve.refine.recorded")
                        except (KeyError, TypeError):
                            # A priced outcome without full coordinates
                            # cannot feed ?refine=1; pricing still stands.
                            pass
        finally:
            if probing and not adjudicated:
                self.breaker.abandon_probe()
        rec.count("serve.predictions.errors", errors)
        # Every priced item hit the flush deadline: the whole response
        # is a 503 (clients should back off), with per-item detail.
        status = (
            503 if submitted and flush_timeouts == len(submitted) else 200
        )
        return status, {"results": results, "errors": errors}


def _make_server(
    index: StrategyIndex,
    opts: dict,
    *,
    recorder,
    port: Optional[int] = None,
    reuse_port: bool = False,
    worker_id: Optional[int] = None,
    incarnation: int = 0,
) -> StrategyServer:
    """One configured server from parsed CLI options (``vars(args)``)."""
    cache = (
        TTLCache(maxsize=opts["cache_size"], ttl=opts["cache_ttl"])
        if opts["cache_size"] > 0
        else TTLCache(maxsize=0)
    )
    predictor = (
        None
        if opts["no_predict"]
        else Predictor(
            scale=opts["predict_scale"],
            repetitions=opts["predict_repetitions"],
        )
    )
    admission = AdmissionController(
        lookup_depth=opts.get("admission_depth") or 0,
        predict_depth=opts.get("admission_predict_depth") or 0,
        latency_watermark_ms=opts.get("latency_watermark_ms") or 0.0,
        max_concurrency=opts["max_concurrency"],
    )
    breaker = CircuitBreaker(
        threshold=opts.get("breaker_threshold") or 0,
        reset_timeout=opts.get("breaker_reset") or 5.0,
    )
    flush_timeout = opts.get("predict_flush_timeout")
    if flush_timeout is None:
        # Auto: flush just inside the request timeout, so coalesced
        # waiters get their per-item 503 instead of a blanket timeout.
        flush_timeout = 0.9 * opts["timeout"]
    faults = FaultPlan(opts["faults"]) if opts.get("faults") else None
    return StrategyServer(
        index,
        host=opts["host"],
        port=opts["port"] if port is None else port,
        max_concurrency=opts["max_concurrency"],
        request_timeout=opts["timeout"],
        idle_timeout=opts["idle_timeout"],
        cache=cache,
        recorder=recorder,
        predictor=predictor,
        reuse_port=reuse_port,
        worker_id=worker_id,
        predict_window=opts["predict_window_ms"] / 1000.0,
        predict_max_batch=opts["predict_max_batch"],
        refine_capacity=opts.get("refine_capacity", DEFAULT_CAPACITY),
        predict_flush_timeout=flush_timeout,
        admission=admission,
        breaker=breaker,
        index_path=opts.get("index"),
        faults=faults,
        # Workers must not race for one loopback admin port; the fleet
        # parent runs its own admin listener and forwards SIGHUP.
        admin_port=opts.get("admin_port") if worker_id is None else None,
        incarnation=incarnation,
    )


def _worker_main(  # pragma: no cover - forked child, exercised e2e
    worker_id: int, opts: dict, port: int, queue, incarnation: int = 0
) -> None:
    """One ``--workers`` process: serve until SIGTERM/SIGINT, ship metrics.

    Runs the ordinary :class:`StrategyServer` bound with
    ``SO_REUSEPORT`` on the port the parent resolved.  On startup it
    reports readiness through ``queue`` (the parent only advertises the
    listening address once every worker accepts); on shutdown it drains
    its recorder and ships the snapshot home for the parent to
    ``merge()`` into the one run report.

    Between startup and shutdown the worker ships periodic *heartbeat*
    deltas — ``recorder.drain()`` plus the requests served since the
    last beat — so when a worker is killed outright (kill -9, OOM, an
    armed ``crash`` fault) the merged report loses at most one
    heartbeat interval of counters instead of the worker's whole life.
    ``SIGHUP`` triggers an index hot-reload, forwarded by the parent
    across the fleet.
    """
    import signal

    from ..obs import Recorder

    index = StrategyIndex.load(opts["index"])
    recorder = Recorder() if opts["metrics"] else None
    server = _make_server(
        index,
        opts,
        recorder=recorder,
        port=port,
        reuse_port=True,
        worker_id=worker_id,
        incarnation=incarnation,
    )
    reported = {"requests": 0}

    async def _run() -> None:
        await server.start()
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            loop.add_signal_handler(signal.SIGHUP, server.request_reload)
        except (NotImplementedError, RuntimeError, AttributeError):
            pass  # non-POSIX: reload via the parent's admin endpoint
        queue.put(("ready", worker_id, server.port))

        async def _heartbeat(interval: float) -> None:
            while True:
                await asyncio.sleep(interval)
                snapshot = (
                    recorder.drain() if recorder is not None else None
                )
                delta = server.requests_served - reported["requests"]
                reported["requests"] = server.requests_served
                queue.put(("heartbeat", worker_id, snapshot, delta))

        interval = opts.get("heartbeat_interval") or 0.0
        beat = (
            asyncio.ensure_future(_heartbeat(interval))
            if interval > 0
            else None
        )
        try:
            await server.serve_until_stopped()
        finally:
            if beat is not None:
                beat.cancel()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback
        pass
    snapshot = recorder.drain() if recorder is not None else None
    queue.put(
        (
            "metrics",
            worker_id,
            snapshot,
            server.requests_served - reported["requests"],
        )
    )


def _serve_workers(  # pragma: no cover - subprocess-only, exercised e2e
    args, index: StrategyIndex
) -> int:
    """Parent of a ``--workers N`` fleet sharing one ``SO_REUSEPORT`` port.

    The parent is a supervisor, not a server: it spawns the fleet,
    merges heartbeat/final metric deltas from the queue, respawns dead
    workers with exponential backoff under the ``--max-restarts``
    budget (:class:`~repro.serve.supervisor.FleetSupervisor`),
    forwards SIGTERM/SIGINT (drain) and SIGHUP (index hot-reload)
    fleet-wide, and answers ``POST /admin/reload`` on the loopback
    ``--admin-port``.  When the restart budget is exhausted it
    escalates: terminates the fleet, writes whatever metrics it has,
    and exits 2 so the process manager above sees the failure.
    """
    import multiprocessing
    import os
    import signal
    import socket

    from ..cli import save_run_report
    from ..obs import Recorder
    from .supervisor import AdminListener, FleetSupervisor

    if not hasattr(socket, "SO_REUSEPORT"):
        print(
            "[serve] --workers requires SO_REUSEPORT, which this "
            "platform does not provide; run single-process instead",
            file=sys.stderr,
        )
        return 1

    # Resolve the port up front with a placeholder socket that stays
    # bound (but never listens) for the fleet's lifetime: workers bind
    # the same (host, port) with SO_REUSEPORT, and the kernel balances
    # incoming connections across the listening sockets only.
    placeholder = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    admin = None
    try:
        placeholder.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        try:
            placeholder.bind((args.host, args.port))
        except OSError as exc:
            print(
                f"[serve] cannot bind {args.host}:{args.port}: {exc}",
                file=sys.stderr,
            )
            return 1
        port = placeholder.getsockname()[1]

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        queue = ctx.Queue()
        opts = vars(args)

        def _spawn(worker_id: int, incarnation: int):
            proc = ctx.Process(
                target=_worker_main,
                args=(worker_id, opts, port, queue, incarnation),
            )
            proc.start()
            return proc

        supervisor = FleetSupervisor(
            _spawn,
            args.workers,
            max_restarts=args.max_restarts,
            backoff_base=args.restart_backoff,
        )
        recorder = Recorder()
        per_worker: Dict[int, int] = {}
        state = {"stopping": False}

        def _signal_fleet(signum: int) -> int:
            sent = 0
            for proc in supervisor.processes():
                if proc.is_alive():
                    try:
                        os.kill(proc.pid, signum)
                        sent += 1
                    except (ProcessLookupError, OSError):
                        pass
            return sent

        def _forward(signum, frame):  # noqa: ARG001 - signal signature
            state["stopping"] = True
            supervisor.stop()
            _signal_fleet(signal.SIGTERM)

        def _reload_fleet(signum=None, frame=None):  # noqa: ARG001
            signalled = _signal_fleet(signal.SIGHUP)
            return {"reload": "signalled", "workers": signalled}

        # Install the forwarder BEFORE advertising the address: a
        # SIGTERM/SIGINT racing the startup print would otherwise hit
        # Python's default handler, leaving the workers unsignalled and
        # the parent hung joining them at exit.
        previous = {
            sig: signal.signal(sig, _forward)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        if hasattr(signal, "SIGHUP"):
            previous[signal.SIGHUP] = signal.signal(
                signal.SIGHUP, _reload_fleet
            )
        try:
            if args.admin_port is not None:
                try:
                    admin = AdminListener(
                        args.admin_port, _reload_fleet, supervisor.stats
                    )
                except OSError as exc:
                    print(
                        f"[serve] cannot bind admin port "
                        f"{args.admin_port}: {exc}",
                        file=sys.stderr,
                    )
                    return 1
                admin.start()
            supervisor.start()
            ready: set = set()
            advertised = False
            # After the last worker exits, keep draining until the
            # metrics queue has been quiet this long: a final "metrics"
            # message still in transit through the multiprocessing pipe
            # carries the last heartbeat interval's deltas, and the
            # reconciliation needs them.
            drain_grace = 2.0
            quiet_since: Optional[float] = None
            while True:
                try:
                    message = queue.get(timeout=0.25)
                except Exception:  # queue.Empty
                    message = None
                if message is not None:
                    quiet_since = None
                    kind, wid = message[0], message[1]
                    if kind == "ready":
                        ready.add(wid)
                        if not advertised and len(ready) >= args.workers:
                            advertised = True
                            print(
                                f"[serve] listening on "
                                f"http://{args.host}:{port} "
                                f"({index.n_entries} index entries, "
                                f"{index.n_answers} pre-serialized "
                                f"answers, {args.workers} workers, "
                                f"predict="
                                f"{'off' if args.no_predict else 'on'})",
                                file=sys.stderr,
                                flush=True,
                            )
                    elif kind in ("heartbeat", "metrics"):
                        snapshot, delta = message[2], message[3]
                        if snapshot is not None:
                            recorder.merge(snapshot)
                        per_worker[wid] = per_worker.get(wid, 0) + delta
                if not state["stopping"]:
                    for event in supervisor.poll():
                        tag = event[0]
                        if tag == "death":
                            recorder.count("serve.workers.deaths")
                            print(
                                f"[serve] worker {event[1]} died "
                                f"(exit {event[2]})",
                                file=sys.stderr,
                                flush=True,
                            )
                        elif tag == "backoff":
                            print(
                                f"[serve] respawning worker {event[1]} "
                                f"in {event[2]:.2f}s",
                                file=sys.stderr,
                                flush=True,
                            )
                        elif tag == "respawn":
                            recorder.count("serve.workers.restarts")
                            print(
                                f"[serve] worker {event[1]} respawned "
                                f"(incarnation {event[2]})",
                                file=sys.stderr,
                                flush=True,
                            )
                        elif tag == "escalate":
                            print(
                                f"[serve] restart budget "
                                f"({args.max_restarts}) exhausted after "
                                f"{supervisor.deaths} deaths; shutting "
                                f"the fleet down",
                                file=sys.stderr,
                                flush=True,
                            )
                    if supervisor.escalated:
                        state["stopping"] = True
                        supervisor.stop()
                        _signal_fleet(signal.SIGTERM)
                if state["stopping"] and supervisor.all_exited():
                    now = time.monotonic()
                    if quiet_since is None:
                        quiet_since = now
                    elif now - quiet_since >= drain_grace:
                        break
                else:
                    quiet_since = None
            for slot in supervisor.slots:
                if slot.process is not None:
                    slot.process.join()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            if admin is not None:
                admin.close()
    finally:
        placeholder.close()

    total = sum(per_worker.values())
    if args.metrics:
        recorder.gauge("serve.workers", float(args.workers))
        save_run_report(
            recorder,
            args.metrics,
            meta={
                "index": args.index,
                "requests": total,
                "workers": args.workers,
                "restarts": supervisor.restarts,
                "deaths": supervisor.deaths,
                "per_worker_requests": {
                    str(wid): requests
                    for wid, requests in sorted(per_worker.items())
                },
            },
        )
        print(f"[serve] wrote run report to {args.metrics}", file=sys.stderr)
    if supervisor.escalated:
        print(
            f"[serve] escalated shutdown: {supervisor.deaths} worker "
            f"deaths exhausted the --max-restarts budget "
            f"({total} requests served)",
            file=sys.stderr,
            flush=True,
        )
        return 2
    failed = [
        slot.process.exitcode
        for slot in supervisor.slots
        if slot.process is not None and slot.process.exitcode != 0
    ]
    print(
        f"[serve] shut down cleanly ({total} requests served by "
        f"{args.workers} workers)"
        if not failed
        else f"[serve] workers exited with {failed}",
        file=sys.stderr,
        flush=True,
    )
    return 0 if not failed else 1


def main(argv=None) -> int:
    """CLI: ``python -m repro serve INDEX``."""
    import argparse
    import signal
    import sys

    from ..cli import metrics_parent, save_run_report
    from ..obs import Recorder

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        parents=[metrics_parent()],
        description=(
            "Serve strategy queries from a strategy-index-v1 artifact "
            "over an asyncio HTTP JSON API."
        ),
    )
    parser.add_argument("index", help="strategy-index artifact (repro index)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes sharing the port via SO_REUSEPORT "
            "(default 1: single process); per-worker metrics are "
            "merged into one --metrics run report"
        ),
    )
    parser.add_argument(
        "--max-concurrency",
        type=int,
        default=64,
        help="bound on concurrently dispatched requests (default 64)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-request timeout; slower requests get 503 (default 10)",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="drop keep-alive connections idle this long (default 60)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="response cache entries; 0 disables caching (default 1024)",
    )
    parser.add_argument(
        "--cache-ttl",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="response cache time-to-live (default 300)",
    )
    parser.add_argument(
        "--predict-scale",
        type=float,
        default=0.05,
        help="input scale for online /v1/predict pricing (default 0.05)",
    )
    parser.add_argument(
        "--predict-repetitions",
        type=int,
        default=3,
        help="noisy repetitions per online prediction (default 3)",
    )
    parser.add_argument(
        "--predict-window-ms",
        type=float,
        default=2.0,
        metavar="MS",
        help=(
            "micro-batching window for POST /v1/predict: concurrent "
            "items arriving within this many milliseconds coalesce "
            "into one batch-engine call (default 2.0; 0 batches only "
            "within a single event-loop tick)"
        ),
    )
    parser.add_argument(
        "--predict-max-batch",
        type=int,
        default=32,
        metavar="N",
        help="flush a predict micro-batch at this many items (default 32)",
    )
    parser.add_argument(
        "--refine-capacity",
        type=int,
        default=DEFAULT_CAPACITY,
        metavar="N",
        help=(
            "distinct (chip, app, input) cells of live /v1/predict "
            "observations kept (LRU) for ?refine=1 strategy answers "
            f"(default {DEFAULT_CAPACITY})"
        ),
    )
    parser.add_argument(
        "--no-predict",
        action="store_true",
        help="disable POST /v1/predict (strategy queries only)",
    )
    parser.add_argument(
        "--predict-flush-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "hard deadline on each coalesced predict batch; on expiry "
            "every waiter gets a per-item 503 and "
            "serve.predict.flush_timeouts counts the batch (default: "
            "0.9 x --timeout; 0 disables)"
        ),
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=8,
        metavar="N",
        help=(
            "global budget of worker respawns for --workers fleets; "
            "once exhausted the fleet escalates to a clean non-zero "
            "shutdown (default 8)"
        ),
    )
    parser.add_argument(
        "--restart-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help=(
            "base respawn delay after a worker death, doubled per "
            "restart of that slot and capped at 30s (default 0.5)"
        ),
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help=(
            "how often --workers fleet members ship metric deltas to "
            "the parent; a killed worker loses at most one interval of "
            "counters from the merged run report (default 2.0; 0 "
            "disables heartbeats)"
        ),
    )
    parser.add_argument(
        "--admin-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "bind a loopback-only admin endpoint (POST /admin/reload, "
            "GET /admin/health) on this port (default: no admin "
            "endpoint; SIGHUP also triggers an index hot-reload)"
        ),
    )
    parser.add_argument(
        "--admission-depth",
        type=int,
        default=0,
        metavar="N",
        help=(
            "shed lookup requests as 429 + Retry-After once this many "
            "are pending; predict sheds at --admission-predict-depth "
            "(default half of this) so the expensive endpoint browns "
            "out first (default 0: no admission control)"
        ),
    )
    parser.add_argument(
        "--admission-predict-depth",
        type=int,
        default=0,
        metavar="N",
        help=(
            "pending-depth watermark for /v1/predict admission "
            "(default: half of --admission-depth)"
        ),
    )
    parser.add_argument(
        "--latency-watermark-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help=(
            "shed predict load once the request-latency EWMA crosses "
            "this watermark (lookups shed at 2x it); 0 disables "
            "(default 0)"
        ),
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=0,
        metavar="N",
        help=(
            "open the predict circuit breaker after this many "
            "consecutive engine failures, fast-failing 503 until the "
            "half-open probe succeeds (default 0: breaker disabled)"
        ),
    )
    parser.add_argument(
        "--breaker-reset",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help=(
            "how long the predict circuit breaker stays open before "
            "admitting a half-open probe (default 5.0)"
        ),
    )
    parser.add_argument(
        "--faults",
        metavar="DIR",
        default=None,
        help=(
            "arm serve-path fault injection from a FaultPlan spool "
            "directory (chaos testing: worker crash, slow handler, "
            "corrupt reload candidate)"
        ),
    )
    args = parser.parse_args(argv)

    if args.workers < 1:
        print("[serve] --workers must be positive", file=sys.stderr)
        return 1
    try:
        index = StrategyIndex.load(args.index)
    except ServeError as exc:
        print(f"[serve] {exc}", file=sys.stderr)
        return 1

    if args.workers > 1:
        return _serve_workers(args, index)

    rec = Recorder() if args.metrics else None
    try:
        server = _make_server(index, vars(args), recorder=rec)
    except ServeError as exc:
        print(f"[serve] {exc}", file=sys.stderr)
        return 1

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_event_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-POSIX event loop: Ctrl-C still raises
        if hasattr(signal, "SIGHUP"):
            try:
                loop.add_signal_handler(
                    signal.SIGHUP, server.request_reload
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # reload remains available via --admin-port
        print(
            f"[serve] listening on http://{server.host}:{server.port} "
            f"({index.n_entries} index entries, "
            f"{index.n_answers} pre-serialized answers, "
            f"predict={'off' if server.predictor is None else 'on'})",
            file=sys.stderr,
            flush=True,
        )
        if server.admin_port is not None:
            print(
                f"[serve] admin endpoint on "
                f"http://127.0.0.1:{server.admin_port}",
                file=sys.stderr,
                flush=True,
            )
        await server.serve_until_stopped()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - non-POSIX fallback
        pass
    if rec is not None:
        save_run_report(
            rec,
            args.metrics,
            meta={"index": args.index, "requests": server.requests_served},
        )
        print(f"[serve] wrote run report to {args.metrics}", file=sys.stderr)
    print(
        f"[serve] shut down cleanly ({server.requests_served} requests "
        f"served)",
        file=sys.stderr,
        flush=True,
    )
    return 0
