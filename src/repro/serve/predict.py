"""Online single-point pricing for ``POST /v1/predict``.

The offline sweep prices the whole chip × configuration grid at once;
a serving client instead asks "what would *this* configuration cost on
*this* chip for *this* workload, right now?".  :class:`Predictor`
answers through the same vectorized batch engine the study uses
(:mod:`repro.perfmodel.batch`) — same compile cache, same seeded noise
model — so an online prediction for a point the study measured returns
exactly the study's numbers.

Traces are collected lazily, once per (application, input) pair, and
memoised for the lifetime of the predictor: the first prediction
touching a pair pays the functional execution, later ones only pay
pricing.  A small default ``scale`` keeps that first-request cost at
interactive latency.

The predictor serialises predictions behind one lock: the compile
cache and batch memoiser are process-global and not thread-safe, and
the server prices in a worker thread off the event loop, so the lock
makes concurrent ``/v1/predict`` requests queue rather than corrupt
shared state.  :meth:`Predictor.price_many` amortises that lock — and
the executor round-trip that precedes it — over a whole coalesced
micro-batch (see :class:`~repro.serve.server.PredictCoalescer`): one
locked vectorized pass prices every item, and each item's numbers are
exactly what :meth:`Predictor.price` would have returned alone.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..apps.registry import all_applications
from ..chips.database import get_chip
from ..compiler.options import OptConfig
from ..compiler.pipeline import compile_cached
from ..errors import ChipError, InvalidConfigError, PredictionError
from ..graphs.inputs import study_inputs
from ..perfmodel.batch import estimate_runtime_us_batch, measure_repeats_us_batch
from ..perfmodel.noise import measurement_prefix, measurement_seeds

__all__ = ["Predictor"]


class Predictor:
    """Prices one (chip, app, input, configuration) point on demand."""

    def __init__(
        self,
        scale: float = 0.05,
        repetitions: int = 3,
        seed: int = 7,
        source: int = 0,
    ) -> None:
        if repetitions < 1:
            raise ValueError("repetitions must be positive")
        self.scale = scale
        self.repetitions = repetitions
        self.seed = seed
        self.source = source
        self._lock = threading.Lock()
        self._apps = {app.name: app for app in all_applications()}
        self._inputs = None  # built lazily: graph generation is not free
        self._programs: Dict[str, object] = {}
        self._traces: Dict[Tuple[str, str], object] = {}
        self._prefixes: Dict[tuple, int] = {}

    @property
    def app_names(self):
        return sorted(self._apps)

    def _input(self, name: str):
        if self._inputs is None:
            self._inputs = study_inputs(scale=self.scale, seed=self.seed)
        try:
            return self._inputs[name]
        except KeyError:
            raise PredictionError(
                f"unknown input {name!r}; known inputs: "
                f"{', '.join(sorted(self._inputs))}"
            ) from None

    def _trace(self, app_name: str, input_name: str):
        key = (app_name, input_name)
        trace = self._traces.get(key)
        if trace is not None:
            return trace
        try:
            app = self._apps[app_name]
        except KeyError:
            raise PredictionError(
                f"unknown application {app_name!r}; known applications: "
                f"{', '.join(self.app_names)}"
            ) from None
        inp = self._input(input_name)
        if app.requires_weights and not inp.graph.has_weights:
            raise PredictionError(
                f"application {app_name!r} requires edge weights but input "
                f"{input_name!r} is unweighted"
            )
        result = app.run(inp.graph, source=self.source)
        self._traces[key] = result.trace
        self._programs.setdefault(app_name, app.program())
        return result.trace

    def price(
        self,
        chip_name: str,
        app_name: str,
        input_name: str,
        config: OptConfig,
    ) -> dict:
        """Price one point; raises :class:`PredictionError` on bad input.

        The returned dict is JSON-ready: the noiseless model estimate
        (``predicted_us``), the seeded noisy repetitions (``times_us``)
        and the trace's launch count.
        """
        with self._lock:
            return self._price_locked(chip_name, app_name, input_name, config)

    def price_many(
        self,
        points: Sequence[Tuple[str, str, str, OptConfig]],
    ) -> List[Union[dict, PredictionError]]:
        """Price a coalesced batch in one locked vectorized pass.

        Each entry of the returned list is either the exact dict
        :meth:`price` would return for that point — same memoised
        traces, same compile cache, same seeded noise, so coalescing a
        request changes nothing about its numbers — or the
        :class:`~repro.errors.PredictionError` that point raised.
        Errors are *values* here: one bad item never aborts the batch.
        """
        results: List[Union[dict, PredictionError]] = []
        with self._lock:
            for chip_name, app_name, input_name, config in points:
                try:
                    results.append(
                        self._price_locked(
                            chip_name, app_name, input_name, config
                        )
                    )
                except PredictionError as exc:
                    results.append(exc)
        return results

    def _price_locked(
        self,
        chip_name: str,
        app_name: str,
        input_name: str,
        config: OptConfig,
    ) -> dict:
        """One point, caller holds ``self._lock``."""
        try:
            chip = get_chip(chip_name)
        except ChipError as exc:
            raise PredictionError(str(exc)) from exc
        trace = self._trace(app_name, input_name)
        plan = compile_cached(self._programs[app_name], chip, config)
        pkey = (chip.short_name, trace.program, trace.graph)
        prefix = self._prefixes.get(pkey)
        if prefix is None:
            prefix = measurement_prefix(chip, trace.program, trace.graph)
            self._prefixes[pkey] = prefix
        true_us = estimate_runtime_us_batch(plan, trace.arrays())
        seeds = measurement_seeds(
            plan.chip,
            trace.program,
            trace.graph,
            plan.config.key(),
            self.repetitions,
            prefix=prefix,
        )
        times = measure_repeats_us_batch(
            plan, trace, self.repetitions, true_us=true_us, seeds=seeds
        )
        return {
            "chip": chip.short_name,
            "app": app_name,
            "input": input_name,
            "config": config.key(),
            "predicted_us": float(true_us),
            "times_us": [float(t) for t in times],
            "repetitions": self.repetitions,
        }

    @staticmethod
    def parse_config(value) -> OptConfig:
        """An :class:`OptConfig` from a request's ``config`` field.

        Accepts the dataset key syntax (``"wg+sg"``, ``"baseline"``);
        raises :class:`PredictionError` on anything else.
        """
        if not isinstance(value, str) or not value:
            raise PredictionError(
                f"config must be a non-empty string key such as 'wg+sg' "
                f"or 'baseline' (got {value!r})"
            )
        if value == "baseline":
            return OptConfig()
        try:
            return OptConfig.from_names(value.split("+"))
        except InvalidConfigError as exc:
            raise PredictionError(str(exc)) from exc
