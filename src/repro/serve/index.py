"""The precompiled strategy index: Algorithm 1, made servable.

``repro index`` compiles a :class:`~repro.study.dataset.PerfDataset`
into a ``strategy-index-v1`` artifact: for every specialisation level
of the paper's Table V lattice (global, chip, app, input, chip+app,
chip+input, app+input, chip+app+input — plus the baseline as the
recommendation of last resort), the recommended optimisation
configuration of every partition, annotated with

* **expected speedup** — geomean of ``median(baseline) /
  median(recommended)`` over the partition's tests (how much the
  advice is worth versus shipping the unoptimised kernel);
* **portability slowdown** — geomean of ``median(recommended) /
  median(oracle)`` over the partition's tests (how far the advice
  trails per-test exhaustive tuning — Fig 4 restricted to the
  partition);
* **coverage** — how many of the partition's (test × configuration)
  cells backed the recommendation, so a client can see when advice was
  derived from a holed or quarantined region of the study.

The input dataset is audited first (:mod:`repro.study.audit`):
quarantined cells never reach the analysis, and the artifact records
the source coverage including the quarantine count.

Queries (:meth:`StrategyIndex.lookup`) name any subset of
{chip, app, input}.  The most-specialised level covering the named
dimensions is served; when its cell is absent — the value was never
measured, or quarantine removed it — the lookup falls back *up* the
lattice (dropping one dimension at a time, most-specialised first)
and the answer is marked ``degraded`` with a coverage footnote.

Since ISSUE 6 the artifact additionally carries a **pre-serialized
answers table**: the full ``GET /v1/strategy`` response body for every
lattice point over the source dataset's coordinates (including the
degraded fallback variants a holed dataset produces), rendered once at
build time by :func:`render_answer`.  The server's hot path becomes a
dict lookup plus a socket write — no per-request JSON encoding — while
staying byte-identical to the encode-per-request path (the
``strategy-responses.json`` golden pins both).  The table is optional
on load: a ``strategy-index-v1`` artifact written before the table
existed still serves, falling back to encode-on-miss.

The artifact is checksummed JSON with sorted keys: building it twice
from the same dataset produces byte-identical files, which the golden
test pins.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.options import BASELINE, OptConfig
from ..core.algorithm1 import SPECIALISATION_DIMS, Analysis
from ..core.portfolio import (
    DEFAULT_TARGET,
    PortfolioCurve,
    PortfolioSet,
    build_portfolios,
)
from ..core.strategies import STRATEGY_DIMS, Strategy, build_strategies
from ..errors import AnalysisError, StrategyIndexError
from ..obs import get_recorder
from ..study.audit import DatasetAudit, audit_dataset
from ..study.dataset import Coverage, PerfDataset, TestCase
from ..util import atomic_write_text, geomean, sha256_hex

__all__ = [
    "INDEX_FORMAT",
    "LATTICE_LEVELS",
    "AnswerKey",
    "IndexEntry",
    "PortfolioAnswer",
    "StrategyAnswer",
    "StrategyIndex",
    "build_index",
    "fallback_chain",
    "level_name",
    "render_answer",
    "render_portfolio_answer",
]

#: Format tag of checksummed strategy-index artifacts.
INDEX_FORMAT = "strategy-index-v1"

#: Every queryable level, most- to least-specialised; ``baseline`` is
#: the recommendation of last resort (always present, always key ()).
LATTICE_LEVELS: Tuple[str, ...] = (
    "chip+app+input",
    "chip+app",
    "chip+input",
    "app+input",
    "chip",
    "app",
    "input",
    "global",
    "baseline",
)

#: The dimensions of each level (baseline and global are both
#: dimensionless; they differ in *what* they recommend, not where).
LEVEL_DIMS: Dict[str, Tuple[str, ...]] = dict(STRATEGY_DIMS)
LEVEL_DIMS["baseline"] = ()

#: A query's coordinates, ``None`` for an unnamed dimension — the key
#: of the pre-serialized answers table and the response cache alike.
AnswerKey = Tuple[Optional[str], Optional[str], Optional[str]]


def level_name(dims: Sequence[str]) -> str:
    """The canonical level name for a set of dimensions.

    Dimensions are ordered as in :data:`SPECIALISATION_DIMS`
    (chip, app, input) regardless of input order; the empty set names
    the fully portable ``global`` level.
    """
    ordered = [d for d in SPECIALISATION_DIMS if d in set(dims)]
    unknown = set(dims) - set(SPECIALISATION_DIMS)
    if unknown:
        raise StrategyIndexError(
            f"unknown specialisation dimension(s) {sorted(unknown)}; "
            f"expected a subset of {SPECIALISATION_DIMS}"
        )
    return "+".join(ordered) if ordered else "global"


def fallback_chain(dims: Sequence[str]) -> List[str]:
    """The lattice walk for a query naming ``dims``.

    Every level whose dimensions are a subset of ``dims``, ordered
    most- to least-specialised (ties broken by :data:`LATTICE_LEVELS`
    order), ending with ``global`` and then ``baseline``.  The first
    level with a populated cell answers the query; serving any level
    after the first marks the response degraded.
    """
    asked = set(dims)
    return [
        level
        for level in LATTICE_LEVELS
        if set(LEVEL_DIMS[level]) <= asked
    ]


@dataclass(frozen=True)
class IndexEntry:
    """One precompiled recommendation: a cell of the strategy index."""

    level: str
    key: Tuple[str, ...]
    config: str  # OptConfig.key()
    #: geomean median(baseline)/median(config) over the partition's
    #: tests; ``None`` when no test had both cells measured.
    expected_speedup: Optional[float]
    #: geomean median(config)/median(oracle) over the partition's
    #: tests; ``None`` when no test had both cells measured.
    slowdown_vs_oracle: Optional[float]
    #: Tests of the partition present in the dataset.
    n_tests: int
    #: The partition's measured (test × configuration) cells.
    cells_present: int
    cells_expected: int

    @property
    def cell_fraction(self) -> float:
        if not self.cells_expected:
            return 1.0
        return self.cells_present / self.cells_expected

    def to_dict(self) -> dict:
        return {
            "key": list(self.key),
            "config": self.config,
            "expected_speedup": self.expected_speedup,
            "slowdown_vs_oracle": self.slowdown_vs_oracle,
            "n_tests": self.n_tests,
            "cells_present": self.cells_present,
            "cells_expected": self.cells_expected,
        }

    @classmethod
    def from_dict(cls, level: str, data: dict) -> "IndexEntry":
        try:
            return cls(
                level=level,
                key=tuple(data["key"]),
                config=data["config"],
                expected_speedup=data["expected_speedup"],
                slowdown_vs_oracle=data["slowdown_vs_oracle"],
                n_tests=data["n_tests"],
                cells_present=data["cells_present"],
                cells_expected=data["cells_expected"],
            )
        except (KeyError, TypeError) as exc:
            raise StrategyIndexError(
                f"malformed index entry at level {level!r}: {exc!r}"
            ) from exc


@dataclass(frozen=True)
class StrategyAnswer:
    """What one query returns: a configuration plus its provenance."""

    config: str
    label: str
    requested_level: str
    served_level: str
    degraded: bool
    expected_speedup: Optional[float]
    slowdown_vs_oracle: Optional[float]
    n_tests: int
    note: str

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "label": self.label,
            "requested_level": self.requested_level,
            "served_level": self.served_level,
            "degraded": self.degraded,
            "expected_speedup": self.expected_speedup,
            "slowdown_vs_oracle": self.slowdown_vs_oracle,
            "n_tests": self.n_tests,
            "note": self.note,
        }


@dataclass(frozen=True)
class PortfolioAnswer:
    """What one portfolio query returns: K configs plus provenance."""

    requested_level: str
    served_level: str
    degraded: bool
    note: str
    #: Number of configurations actually served (never more than the
    #: partition's curve holds).
    k: int
    #: The fraction-of-oracle target the query resolved to (``None``
    #: when an explicit ``k`` made the target irrelevant).
    target: Optional[float]
    #: Fraction of oracle the served set retains over the partition.
    coverage: float
    meets_target: Optional[bool]
    configs: Tuple[str, ...]
    #: The full K-vs-coverage curve with marginal-gain provenance.
    curve: Tuple[dict, ...]
    n_tests: int

    def to_dict(self) -> dict:
        return {
            "requested_level": self.requested_level,
            "served_level": self.served_level,
            "degraded": self.degraded,
            "note": self.note,
            "k": self.k,
            "target": self.target,
            "coverage": self.coverage,
            "meets_target": self.meets_target,
            "configs": list(self.configs),
            "curve": [dict(step) for step in self.curve],
            "n_tests": self.n_tests,
        }


def render_portfolio_answer(
    index: "StrategyIndex",
    chip: Optional[str] = None,
    app: Optional[str] = None,
    input: Optional[str] = None,
    k: Optional[int] = None,
    target: Optional[float] = None,
) -> Tuple[bytes, bool]:
    """Render one ``GET /v1/portfolio`` response body to bytes.

    Like :func:`render_answer`, this is *the* encoding of a portfolio
    answer: ``repro index --portfolios`` pre-serializes the default
    (no ``k``, no ``target``) answer of every lattice point through it,
    and the server uses it verbatim for everything else, so the served
    bytes and the offline :mod:`repro.core.portfolio` computation
    cannot drift.  Returns ``(body, degraded)``.
    """
    answer = index.lookup_portfolio(
        chip=chip, app=app, input=input, k=k, target=target
    )
    payload = {
        "query": {
            "chip": chip,
            "app": app,
            "input": input,
            "k": k,
            "target": target,
        }
    }
    payload.update(answer.to_dict())
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return body, answer.degraded


def render_answer(
    index: "StrategyIndex",
    chip: Optional[str] = None,
    app: Optional[str] = None,
    input: Optional[str] = None,
) -> Tuple[bytes, bool]:
    """Render one ``GET /v1/strategy`` response body to bytes.

    This is *the* encoding of a strategy answer: the index builder
    pre-serializes every lattice point through it, and the server uses
    it verbatim for coordinates outside the precompiled table, so the
    two paths cannot drift.  Returns ``(body, degraded)``.
    """
    answer = index.lookup(chip=chip, app=app, input=input)
    payload = {"query": {"chip": chip, "app": app, "input": input}}
    payload.update(answer.to_dict())
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return body, answer.degraded


class StrategyIndex:
    """The compiled advisor: every strategy level, ready to query."""

    def __init__(
        self,
        levels: Dict[str, Dict[Tuple[str, ...], IndexEntry]],
        coverage: Coverage,
        meta: Optional[dict] = None,
        answers: Optional[Dict[AnswerKey, Tuple[bytes, bool]]] = None,
        portfolios: Optional[PortfolioSet] = None,
        portfolio_answers: Optional[Dict[AnswerKey, Tuple[bytes, bool]]] = None,
    ) -> None:
        self.levels = levels
        #: Source-dataset coverage (audited: quarantined cells counted).
        self.coverage = coverage
        self.meta = dict(meta or {})
        #: Pre-serialized response bodies keyed by query coordinates;
        #: empty for artifacts written before the table existed (the
        #: server then encodes on miss).
        self.answers: Dict[AnswerKey, Tuple[bytes, bool]] = dict(answers or {})
        #: K-vs-coverage portfolio curves per lattice level; ``None``
        #: unless compiled with ``repro index --portfolios`` (the
        #: section is optional and backward compatible).
        self.portfolios = portfolios
        #: Pre-serialized default-parameter portfolio bodies, keyed
        #: like :attr:`answers`.
        self.portfolio_answers: Dict[AnswerKey, Tuple[bytes, bool]] = dict(
            portfolio_answers or {}
        )

    # -- queries -----------------------------------------------------------

    @property
    def n_entries(self) -> int:
        return sum(len(cells) for cells in self.levels.values())

    @property
    def n_answers(self) -> int:
        return len(self.answers)

    def answer(self, key: AnswerKey) -> Optional[Tuple[bytes, bool]]:
        """The pre-serialized ``(body, degraded)`` pair, if compiled."""
        return self.answers.get(key)

    def compile_answers(self) -> int:
        """Pre-serialize every lattice point's response body.

        Enumerates all combinations of the source dataset's coordinates
        (each dimension optionally unnamed), including the degraded
        fallback variants of holed or quarantined cells, and renders
        each through :func:`render_answer`.  Returns the table size.
        """
        chips = [None] + list(self.meta.get("chips", ()))
        apps = [None] + list(self.meta.get("apps", ()))
        inputs = [None] + list(self.meta.get("inputs", ()))
        answers: Dict[AnswerKey, Tuple[bytes, bool]] = {}
        for chip in chips:
            for app in apps:
                for inp in inputs:
                    answers[(chip, app, inp)] = render_answer(
                        self, chip=chip, app=app, input=inp
                    )
        self.answers = answers
        return len(answers)

    @property
    def n_portfolio_answers(self) -> int:
        return len(self.portfolio_answers)

    def portfolio_answer(
        self, key: AnswerKey
    ) -> Optional[Tuple[bytes, bool]]:
        """The pre-serialized default portfolio body, if compiled."""
        return self.portfolio_answers.get(key)

    def compile_portfolio_answers(self) -> int:
        """Pre-serialize every lattice point's default portfolio body.

        The default answer (no explicit ``k`` or ``target``) is the one
        enumerable response per coordinate triple; explicit parameters
        go through the response cache instead.  Returns the table size.
        """
        if self.portfolios is None:
            raise StrategyIndexError(
                "cannot pre-serialize portfolio answers: the index has "
                "no portfolios (rebuild with repro index --portfolios)"
            )
        chips = [None] + list(self.meta.get("chips", ()))
        apps = [None] + list(self.meta.get("apps", ()))
        inputs = [None] + list(self.meta.get("inputs", ()))
        answers: Dict[AnswerKey, Tuple[bytes, bool]] = {}
        for chip in chips:
            for app in apps:
                for inp in inputs:
                    answers[(chip, app, inp)] = render_portfolio_answer(
                        self, chip=chip, app=app, input=inp
                    )
        self.portfolio_answers = answers
        return len(answers)

    def lookup_portfolio(
        self,
        chip: Optional[str] = None,
        app: Optional[str] = None,
        input: Optional[str] = None,
        k: Optional[int] = None,
        target: Optional[float] = None,
    ) -> PortfolioAnswer:
        """Answer one portfolio query, falling back up the lattice.

        ``k`` pins the portfolio size (coverage reports what the best
        of those K retains); without it the smallest K meeting
        ``target`` (default :data:`~repro.core.portfolio.DEFAULT_TARGET`)
        is served.  Fallback and ``degraded`` marking follow
        :meth:`lookup` exactly, except the walk ends at ``global`` —
        every portfolio level has a whole-fleet curve of last resort.
        """
        if self.portfolios is None:
            raise StrategyIndexError(
                "this strategy index has no portfolios table; rebuild "
                "the artifact with repro index --portfolios"
            )
        if k is not None and k < 1:
            raise StrategyIndexError(
                f"portfolio size k must be positive, got {k}"
            )
        if target is not None and not 0.0 < target <= 1.0:
            raise StrategyIndexError(
                f"portfolio target must be in (0, 1], got {target}"
            )
        provided = {"chip": chip, "app": app, "input": input}
        dims = tuple(
            d for d in SPECIALISATION_DIMS if provided[d] is not None
        )
        requested = level_name(dims)
        served: Optional[PortfolioCurve] = None
        for level in fallback_chain(dims):
            if level == "baseline":
                continue
            key = tuple(provided[d] for d in LEVEL_DIMS[level])
            served = self.portfolios.curve(level, key)
            if served is not None:
                break
        if served is None:
            raise StrategyIndexError(
                "portfolio table has no global curve; the artifact is "
                "incomplete"
            )
        degraded = served.level != requested
        note = ""
        if degraded:
            asked = ", ".join(
                f"{d}={provided[d]}" for d in dims
            ) or "the portable query"
            note = (
                f"no {requested!r} portfolio for {asked}; fell back to "
                f"{served.level!r}"
            )
            if not self.coverage.complete:
                note += f" (index derived from {self.coverage.describe()})"
        elif not self.coverage.complete:
            note = f"derived from {self.coverage.describe()}"
        resolved_target = target
        if k is None and resolved_target is None:
            resolved_target = DEFAULT_TARGET
        if k is not None:
            n = min(k, len(served.steps))
        else:
            n = served.k_for(resolved_target)
        configs = tuple(served.configs_for(max(1, n))) if served.steps else ()
        coverage = served.coverage_at(max(1, n)) if served.steps else 1.0
        return PortfolioAnswer(
            requested_level=requested,
            served_level=served.level,
            degraded=degraded,
            note=note,
            k=len(configs),
            target=resolved_target,
            coverage=coverage,
            meets_target=(
                coverage >= resolved_target
                if resolved_target is not None
                else None
            ),
            configs=configs,
            curve=tuple(step.to_dict() for step in served.steps),
            n_tests=served.n_tests,
        )

    def entry(self, level: str, key: Sequence[str]) -> Optional[IndexEntry]:
        return self.levels.get(level, {}).get(tuple(key))

    def lookup(
        self,
        chip: Optional[str] = None,
        app: Optional[str] = None,
        input: Optional[str] = None,
    ) -> StrategyAnswer:
        """Answer one advisory query, falling back up the lattice.

        The named dimensions select the requested level (none →
        ``global``).  The most-specialised populated cell covering them
        answers; serving a less-specialised level than requested marks
        the answer ``degraded`` and the note carries the coverage
        footnote an offline report would print.
        """
        provided = {"chip": chip, "app": app, "input": input}
        dims = tuple(
            d for d in SPECIALISATION_DIMS if provided[d] is not None
        )
        requested = level_name(dims)
        served: Optional[IndexEntry] = None
        for level in fallback_chain(dims):
            key = tuple(provided[d] for d in LEVEL_DIMS[level])
            served = self.entry(level, key)
            if served is not None:
                break
        if served is None:
            # An index always carries a baseline entry; an artifact
            # without one is not an index we built.
            raise StrategyIndexError(
                "strategy index has no baseline entry; the artifact is "
                "incomplete"
            )
        degraded = served.level != requested
        note = ""
        if degraded:
            asked = ", ".join(
                f"{d}={provided[d]}" for d in dims
            ) or "the portable query"
            note = (
                f"no {requested!r} strategy for {asked}; fell back to "
                f"{served.level!r}"
            )
            if not self.coverage.complete:
                note += f" (index derived from {self.coverage.describe()})"
        elif not self.coverage.complete:
            note = f"derived from {self.coverage.describe()}"
        return StrategyAnswer(
            config=served.config,
            label=_config_label(served.config),
            requested_level=requested,
            served_level=served.level,
            degraded=degraded,
            expected_speedup=served.expected_speedup,
            slowdown_vs_oracle=served.slowdown_vs_oracle,
            n_tests=served.n_tests,
            note=note,
        )

    def describe(self) -> str:
        """One-line human summary for logs and the CLI."""
        per_level = ", ".join(
            f"{level}:{len(self.levels[level])}"
            for level in LATTICE_LEVELS
            if level in self.levels
        )
        answers = (
            f"{self.n_answers} pre-serialized answers; "
            if self.answers
            else ""
        )
        portfolios = (
            f"{self.portfolios.n_curves} portfolio curves; "
            if self.portfolios is not None
            else ""
        )
        return (
            f"{self.n_entries} entries ({per_level}); {answers}{portfolios}"
            f"source coverage {self.coverage.describe()}"
        )

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "meta": self.meta,
            "coverage": {
                "present": self.coverage.present,
                "expected": self.coverage.expected,
                "quarantined": self.coverage.quarantined,
                "holes": list(self.coverage.holes),
            },
            "levels": {
                level: [
                    entry.to_dict()
                    for _, entry in sorted(cells.items())
                ]
                for level, cells in self.levels.items()
            },
        }
        if self.answers:
            # Bodies are UTF-8 JSON text, stored as (escaped) strings;
            # keys are the JSON-encoded coordinate triple, so values
            # containing separators can never collide.
            data["answers"] = {
                json.dumps(list(key)): [body.decode("utf-8"), degraded]
                for key, (body, degraded) in self.answers.items()
            }
        if self.portfolios is not None:
            # Optional, like ``answers``: an artifact built without
            # --portfolios (or before the table existed) omits the key
            # entirely, so pre-portfolio files round-trip byte-for-byte.
            section: dict = {"levels": self.portfolios.to_dict()}
            if self.portfolio_answers:
                section["answers"] = {
                    json.dumps(list(key)): [body.decode("utf-8"), degraded]
                    for key, (body, degraded) in self.portfolio_answers.items()
                }
            data["portfolios"] = section
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "StrategyIndex":
        if not isinstance(data, dict) or not isinstance(
            data.get("levels"), dict
        ):
            raise StrategyIndexError(
                "malformed strategy index payload: expected an object "
                "with a 'levels' mapping"
            )
        levels: Dict[str, Dict[Tuple[str, ...], IndexEntry]] = {}
        for level, entries in data["levels"].items():
            if level not in LATTICE_LEVELS:
                raise StrategyIndexError(
                    f"unknown index level {level!r}; expected one of "
                    f"{LATTICE_LEVELS}"
                )
            cells: Dict[Tuple[str, ...], IndexEntry] = {}
            for raw in entries:
                entry = IndexEntry.from_dict(level, raw)
                cells[entry.key] = entry
            levels[level] = cells
        cov = data.get("coverage", {})
        coverage = Coverage(
            present=cov.get("present", 0),
            expected=cov.get("expected", 0),
            quarantined=cov.get("quarantined", 0),
            holes=tuple(cov.get("holes", ())),
        )
        answers = _parse_answer_table(data.get("answers", {}))
        portfolios: Optional[PortfolioSet] = None
        portfolio_answers: Dict[AnswerKey, Tuple[bytes, bool]] = {}
        raw_portfolios = data.get("portfolios")
        if raw_portfolios is not None:
            if not isinstance(raw_portfolios, dict):
                raise StrategyIndexError(
                    "malformed strategy index payload: 'portfolios' "
                    "must be an object with 'levels' (and optionally "
                    "'answers')"
                )
            try:
                portfolios = PortfolioSet.from_dict(
                    raw_portfolios.get("levels", {}), coverage=coverage
                )
            except AnalysisError as exc:
                raise StrategyIndexError(
                    f"malformed portfolios table: {exc}"
                ) from exc
            portfolio_answers = _parse_answer_table(
                raw_portfolios.get("answers", {})
            )
        return cls(
            levels,
            coverage,
            meta=data.get("meta", {}),
            answers=answers,
            portfolios=portfolios,
            portfolio_answers=portfolio_answers,
        )

    def save(self, path: str) -> None:
        """Atomically write the checksummed ``strategy-index-v1`` file."""
        body = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        payload = (
            f'{{"format": "{INDEX_FORMAT}", '
            f'"checksum": "{sha256_hex(body)}", '
            f'"index": {body}}}'
        )
        atomic_write_text(path, payload)

    @classmethod
    def load(cls, path: str) -> "StrategyIndex":
        """Load an index, refusing truncation, corruption or drift."""
        try:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        except OSError as exc:
            raise StrategyIndexError(
                f"cannot read strategy index {path!r}: {exc}"
            ) from exc
        except UnicodeDecodeError as exc:
            raise StrategyIndexError(
                f"corrupt strategy index {path!r}: not UTF-8 text ({exc})"
            ) from exc
        return cls.loads(text, source=path)

    @classmethod
    def loads(cls, text: str, source: str = "<memory>") -> "StrategyIndex":
        """Parse and validate artifact *text* (checksum + format tag).

        The hot-reload path reads the candidate file itself and hands
        the text here, so validation — and the rollback it triggers —
        is one shared code path with :meth:`load`; ``source`` only
        labels error messages.
        """
        try:
            parsed = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StrategyIndexError(
                f"corrupt strategy index {source!r}: truncated or invalid "
                f"JSON ({exc})"
            ) from exc
        if not isinstance(parsed, dict) or parsed.get("format") != INDEX_FORMAT:
            raise StrategyIndexError(
                f"unrecognised strategy index {source!r} "
                f"(expected format {INDEX_FORMAT!r})"
            )
        body = json.dumps(
            parsed.get("index", {}), sort_keys=True, separators=(",", ":")
        )
        if sha256_hex(body) != parsed.get("checksum"):
            raise StrategyIndexError(
                f"corrupt strategy index {source!r}: checksum mismatch "
                f"(the file was modified or partially written)"
            )
        return cls.from_dict(parsed["index"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StrategyIndex(entries={self.n_entries}, "
            f"levels={len(self.levels)})"
        )


def _parse_answer_table(
    raw: object,
) -> Dict[AnswerKey, Tuple[bytes, bool]]:
    """Decode a pre-serialized answer table from an artifact payload."""
    if not isinstance(raw, dict):
        raise StrategyIndexError(
            "malformed strategy index payload: 'answers' must be a "
            "mapping of coordinate keys to [body, degraded] pairs"
        )
    answers: Dict[AnswerKey, Tuple[bytes, bool]] = {}
    for key_str, pair in raw.items():
        try:
            coords = json.loads(key_str)
            body, degraded = pair
            if len(coords) != 3 or not isinstance(body, str):
                raise ValueError(f"bad answer entry {key_str!r}")
        except (ValueError, TypeError) as exc:
            raise StrategyIndexError(
                f"malformed pre-serialized answer {key_str!r}: {exc}"
            ) from exc
        answers[tuple(coords)] = (body.encode("utf-8"), bool(degraded))
    return answers


def _config_label(config_key: str) -> str:
    """Human label for a stored configuration key."""
    if config_key == "baseline":
        return "baseline"
    return OptConfig.from_names(config_key.split("+")).label()


def _entry_metadata(
    dataset: PerfDataset,
    tests: Sequence[TestCase],
    config: OptConfig,
    oracle: Dict[TestCase, Optional[OptConfig]],
    n_configs: int,
) -> Tuple[Optional[float], Optional[float], int, int]:
    """(expected_speedup, slowdown_vs_oracle, cells_present, cells_expected)."""
    speedups: List[float] = []
    slowdowns: List[float] = []
    cells_present = 0
    for test in tests:
        times_cfg = dataset.times_or_none(test, config)
        times_base = dataset.times_or_none(test, BASELINE)
        if times_cfg is not None and times_base is not None:
            m_cfg = _median(times_cfg)
            speedups.append(_median(times_base) / m_cfg)
            best = oracle.get(test)
            if best is not None:
                times_best = dataset.times_or_none(test, best)
                if times_best is not None:
                    slowdowns.append(m_cfg / _median(times_best))
        for cfg in dataset.configs:
            if dataset.has(test, cfg):
                cells_present += 1
    return (
        geomean(speedups) if speedups else None,
        geomean(slowdowns) if slowdowns else None,
        cells_present,
        len(tests) * n_configs,
    )


def _median(times: Tuple[float, ...]) -> float:
    ordered = sorted(times)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def build_index(
    dataset: PerfDataset,
    *,
    audit: Optional[DatasetAudit] = None,
    analysis: Optional[Analysis] = None,
    strategies: Optional[Dict[str, Strategy]] = None,
    recorder=None,
    portfolios: bool = False,
) -> StrategyIndex:
    """Compile a :class:`StrategyIndex` from a dataset.

    The dataset is audited first unless a prior
    :class:`~repro.study.audit.DatasetAudit` is supplied: quarantined
    cells never back a recommendation, and the artifact's coverage
    record includes the quarantine count.  ``analysis`` and
    ``strategies`` allow reuse of an existing Algorithm 1 run (e.g.
    the experiment cache); they must have been built on the *audited*
    dataset.  ``portfolios=True`` additionally compiles the greedy
    K-vs-coverage portfolio of every lattice partition (and its
    pre-serialized default answers) into the artifact's optional
    ``portfolios`` table — off by default so existing artifacts stay
    byte-identical.
    """
    rec = recorder if recorder is not None else get_recorder()
    with rec.span("index.build") as span:
        if audit is None:
            audit = audit_dataset(dataset)
        clean = audit.dataset
        if analysis is None:
            analysis = Analysis(clean)
        if strategies is None:
            strategies = build_strategies(clean, analysis)

        n_configs = len(clean.configs)
        oracle: Dict[TestCase, Optional[OptConfig]] = {}
        for test in clean.tests:
            try:
                oracle[test] = clean.best_config(test)
            except Exception:  # a test with no measurements at all
                oracle[test] = None

        levels: Dict[str, Dict[Tuple[str, ...], IndexEntry]] = {}
        for level, dims in STRATEGY_DIMS.items():
            partitions = analysis.partitions(dims)
            cells: Dict[Tuple[str, ...], IndexEntry] = {}
            with rec.span("index.level", level=level) as level_span:
                for key, config in strategies[level].assignment.items():
                    tests = partitions.get(key, [])
                    speedup, slowdown, present, expected = _entry_metadata(
                        clean, tests, config, oracle, n_configs
                    )
                    cells[key] = IndexEntry(
                        level=level,
                        key=key,
                        config=config.key(),
                        expected_speedup=speedup,
                        slowdown_vs_oracle=slowdown,
                        n_tests=len(tests),
                        cells_present=present,
                        cells_expected=expected,
                    )
                level_span.set("entries", len(cells))
            rec.count("index.entries", len(cells))
            levels[level] = cells

        # The recommendation of last resort: ship the baseline.  Its
        # expected speedup is identically 1; its slowdown vs oracle
        # quantifies what giving up entirely costs.
        all_tests = clean.tests
        speedup, slowdown, present, expected = _entry_metadata(
            clean, all_tests, BASELINE, oracle, n_configs
        )
        levels["baseline"] = {
            (): IndexEntry(
                level="baseline",
                key=(),
                config=BASELINE.key(),
                expected_speedup=speedup,
                slowdown_vs_oracle=slowdown,
                n_tests=len(all_tests),
                cells_present=present,
                cells_expected=expected,
            )
        }
        rec.count("index.entries", 1)

        coverage = audit.coverage
        meta = {
            "apps": clean.apps,
            "chips": clean.chips,
            "inputs": clean.graphs,
            "n_configs": n_configs,
            "n_tests": len(all_tests),
        }
        index = StrategyIndex(levels, coverage, meta=meta)
        # Pre-serialize every answer the index can give, so the server's
        # hot path is a dict lookup and a socket write — no per-request
        # JSON encoding (ISSUE 6's zero-encode contract).
        with rec.span("index.answers"):
            n_answers = index.compile_answers()
        rec.count("index.answers", n_answers)
        if portfolios:
            with rec.span("index.portfolios"):
                index.portfolios = build_portfolios(
                    clean, analysis=analysis, strategies=strategies
                )
                n_portfolio = index.compile_portfolio_answers()
            rec.count("index.portfolio_curves", index.portfolios.n_curves)
            rec.count("index.portfolio_answers", n_portfolio)
            span.set("portfolio_curves", index.portfolios.n_curves)
        span.set("entries", sum(len(c) for c in levels.values()))
        span.set("answers", n_answers)
    return index


def main(argv=None) -> int:
    """CLI: ``python -m repro index DATASET OUTPUT``."""
    import argparse
    import sys

    from ..cli import metrics_parent, save_run_report
    from ..errors import DatasetError, InsufficientCoverageError
    from ..obs import Recorder, recording
    from ..study.audit import DEFAULT_COVERAGE_FLOOR, require_coverage

    parser = argparse.ArgumentParser(
        prog="repro-index",
        parents=[metrics_parent()],
        description=(
            "Compile a checksummed strategy-index-v1 artifact from a "
            "study dataset, for python -m repro serve."
        ),
    )
    parser.add_argument(
        "dataset",
        help="input PerfDataset: JSON (.gz ok) or binary columnar (.v3)",
    )
    parser.add_argument("output", help="path for the strategy-index artifact")
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=DEFAULT_COVERAGE_FLOOR,
        metavar="FRACTION",
        help=(
            "refuse to compile below this audited cell-coverage "
            f"fraction (default {DEFAULT_COVERAGE_FLOOR}); degraded "
            "datasets above the floor compile with coverage metadata"
        ),
    )
    parser.add_argument(
        "--portfolios",
        action="store_true",
        help=(
            "also compile the greedy K-vs-coverage portfolio of every "
            "lattice partition into the artifact (enables GET "
            "/v1/portfolio on the server)"
        ),
    )
    args = parser.parse_args(argv)

    rec = Recorder() if args.metrics else None
    try:
        dataset = PerfDataset.load(args.dataset)
    except DatasetError as exc:
        print(f"[index] {exc}", file=sys.stderr)
        return 1
    audit = audit_dataset(dataset)
    try:
        require_coverage(audit.coverage, args.min_coverage)
    except InsufficientCoverageError as exc:
        print(f"[index] {exc}", file=sys.stderr)
        return 1
    if rec is not None:
        with recording(rec):
            index = build_index(
                audit.dataset,
                audit=audit,
                recorder=rec,
                portfolios=args.portfolios,
            )
    else:
        index = build_index(
            audit.dataset, audit=audit, portfolios=args.portfolios
        )
    index.save(args.output)
    print(f"[index] wrote {args.output}: {index.describe()}")
    if rec is not None:
        save_run_report(
            rec,
            args.metrics,
            meta={"dataset": args.dataset, "output": args.output},
        )
        print(f"[index] wrote run report to {args.metrics}", file=sys.stderr)
    return 0
