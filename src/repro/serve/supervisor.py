"""Worker-fleet supervision for ``repro serve --workers N``.

PR 2 taught the *study* pipeline that workers die: its pool requeues
shards, retries with backoff, and falls back in-process.  The serve
fleet needs the same discipline — a crashed ``SO_REUSEPORT`` worker
otherwise silently shrinks the fleet forever — but with a serving
twist: the supervisor must keep the fleet at N *indefinitely*, not
finish a work queue.

:class:`FleetSupervisor` is the bookkeeping engine: it owns one
:class:`WorkerSlot` per fleet position, spawns workers through an
injected ``spawn(worker_id, incarnation)`` callable (a real
``multiprocessing.Process`` in production, any object with
``is_alive()`` / ``exitcode`` / ``pid`` in tests), and exposes a
single non-blocking :meth:`poll` the parent calls from its queue loop.
``poll`` detects death by exit code, schedules a respawn after
exponential backoff (``backoff_base * 2**restarts``, capped), and
**escalates** — refuses further respawns so the parent can shut the
fleet down with a non-zero exit — once the global ``max_restarts``
budget is spent.  Every decision is driven by the injected clock, so
unit tests run the whole lifecycle in fake time.

:class:`AdminListener` is the fleet parent's loopback-only admin
surface: single-process servers bind ``--admin-port`` on their own
event loop, but the parent of a fleet has no loop, so a small
blocking-socket thread answers ``POST /admin/reload`` (forwarding
``SIGHUP`` to every live worker) and ``GET /admin/health`` (the
supervisor's fleet view) instead.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..errors import ServeError

__all__ = ["AdminListener", "FleetSupervisor", "WorkerSlot"]

#: Backoff delays are capped here (seconds) no matter the restart count.
MAX_BACKOFF = 30.0


@dataclass
class WorkerSlot:
    """One fleet position and its current occupant."""

    worker_id: int
    process: Optional[object] = None
    #: How many times this slot has been respawned (the occupant's
    #: incarnation number; 0 is the original spawn).
    restarts: int = 0
    #: Monotonic deadline after which a pending respawn may fire.
    respawn_at: Optional[float] = None
    #: Exit codes of every dead occupant, oldest first (provenance for
    #: the run report and the shutdown summary).
    exit_codes: List[Optional[int]] = field(default_factory=list)


class FleetSupervisor:
    """Keeps a ``--workers N`` fleet at N with bounded respawns.

    ``spawn(worker_id, incarnation)`` must return a started
    process-like object.  The parent drives the supervisor by calling
    :meth:`poll` regularly (its metrics-queue timeout is the natural
    cadence); each call returns the events that fired — ``("death",
    wid, exitcode)``, ``("backoff", wid, delay)``, ``("respawn", wid,
    incarnation)``, ``("escalate", wid, restarts)`` — for the parent
    to log and count.

    ``max_restarts`` is a *global* budget across all slots: a fleet
    that keeps dying is a broken deploy, and endless respawning would
    hide it.  When the budget is exhausted the supervisor escalates:
    :attr:`escalated` latches, no further respawns happen, and the
    parent is expected to terminate the fleet and exit non-zero.
    """

    def __init__(
        self,
        spawn: Callable[[int, int], object],
        n_workers: int,
        *,
        max_restarts: int = 8,
        backoff_base: float = 0.5,
        backoff_cap: float = MAX_BACKOFF,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if n_workers < 1:
            raise ServeError("n_workers must be positive")
        if max_restarts < 0:
            raise ServeError("max_restarts must be non-negative")
        if backoff_base < 0 or backoff_cap < 0:
            raise ServeError("backoff must be non-negative")
        self.spawn = spawn
        self.n_workers = n_workers
        self.max_restarts = max_restarts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._clock = clock
        self.slots = [WorkerSlot(wid) for wid in range(n_workers)]
        self.deaths = 0
        self.restarts = 0
        self.escalated = False
        self.stopping = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the initial fleet (incarnation 0 in every slot)."""
        for slot in self.slots:
            slot.process = self.spawn(slot.worker_id, 0)

    def stop(self) -> None:
        """Enter shutdown: deaths are expected now, never respawned."""
        self.stopping = True

    def poll(self) -> List[Tuple]:
        """Detect deaths, fire due respawns; returns the event list."""
        events: List[Tuple] = []
        if self.stopping or self.escalated:
            return events
        now = self._clock()
        for slot in self.slots:
            proc = slot.process
            if proc is not None:
                if proc.is_alive():
                    continue
                # The occupant died (any exit while not stopping is a
                # death — a serve worker has no reason to exit alone).
                # Escalation must not short-circuit this scan: sibling
                # deaths in the same interval still need their deaths
                # counter and exit-code provenance, or the shutdown
                # summary undercounts a multi-death crash loop.
                slot.process = None
                slot.exit_codes.append(proc.exitcode)
                self.deaths += 1
                events.append(("death", slot.worker_id, proc.exitcode))
                if self.escalated:
                    continue
                if self.restarts >= self.max_restarts:
                    self.escalated = True
                    events.append(
                        ("escalate", slot.worker_id, self.restarts)
                    )
                    continue
                delay = min(
                    self.backoff_cap,
                    self.backoff_base * (2.0 ** slot.restarts),
                )
                slot.respawn_at = now + delay
                events.append(("backoff", slot.worker_id, delay))
            elif (
                not self.escalated
                and slot.respawn_at is not None
                and now >= slot.respawn_at
            ):
                slot.respawn_at = None
                slot.restarts += 1
                self.restarts += 1
                slot.process = self.spawn(slot.worker_id, slot.restarts)
                events.append(
                    ("respawn", slot.worker_id, slot.restarts)
                )
        return events

    # -- views -------------------------------------------------------------

    def processes(self) -> List[object]:
        """Every live process object (for signal forwarding / joins)."""
        return [s.process for s in self.slots if s.process is not None]

    def all_exited(self) -> bool:
        """Whether every slot's occupant has terminated."""
        return all(
            s.process is None or s.process.exitcode is not None
            for s in self.slots
        )

    def stats(self) -> dict:
        """The fleet view ``GET /admin/health`` reports."""
        return {
            "workers": self.n_workers,
            "alive": sum(
                1
                for s in self.slots
                if s.process is not None and s.process.is_alive()
            ),
            "deaths": self.deaths,
            "restarts": self.restarts,
            "max_restarts": self.max_restarts,
            "escalated": self.escalated,
            "slots": {
                str(s.worker_id): {
                    "restarts": s.restarts,
                    "pid": getattr(s.process, "pid", None),
                    "exit_codes": list(s.exit_codes),
                }
                for s in self.slots
            },
        }


class AdminListener(threading.Thread):
    """Loopback-only admin HTTP endpoint for the fleet parent.

    A deliberately tiny blocking-socket server (the parent has no
    event loop): ``POST /admin/reload`` invokes ``on_reload`` — the
    parent forwards ``SIGHUP`` to the fleet — and ``GET /admin/health``
    returns ``on_health()``.  Binding is loopback-only by
    construction; reload is an operator action, not an API.
    """

    _MAX_REQUEST = 16384

    def __init__(
        self,
        port: int,
        on_reload: Callable[[], dict],
        on_health: Callable[[], dict],
    ) -> None:
        super().__init__(name="serve-admin", daemon=True)
        self._on_reload = on_reload
        self._on_health = on_health
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", port))
        self._sock.listen(8)
        self._sock.settimeout(0.25)
        self.port = self._sock.getsockname()[1]
        self._closing = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised e2e
        while not self._closing.is_set():
            try:
                client, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                client.settimeout(5.0)
                self._serve_one(client)
            except Exception:
                pass  # a broken admin client must never kill the parent
            finally:
                try:
                    client.close()
                except OSError:
                    pass
        try:
            self._sock.close()
        except OSError:
            pass

    def _serve_one(self, client: socket.socket) -> None:
        data = b""
        while b"\r\n\r\n" not in data and len(data) < self._MAX_REQUEST:
            chunk = client.recv(4096)
            if not chunk:
                return
            data += chunk
        request_line = data.split(b"\r\n", 1)[0].decode("latin-1")
        parts = request_line.split()
        if len(parts) != 3:
            self._respond(client, 400, {"error": "malformed request line"})
            return
        method, target = parts[0].upper(), parts[1].split("?", 1)[0]
        if target == "/admin/reload" and method == "POST":
            self._respond(client, 200, self._on_reload())
        elif target == "/admin/health" and method == "GET":
            self._respond(client, 200, self._on_health())
        else:
            self._respond(
                client,
                404,
                {"error": f"unknown admin endpoint {method} {target}"},
            )

    @staticmethod
    def _respond(client: socket.socket, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
            status, "Unknown"
        )
        client.sendall(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )

    def close(self) -> None:
        self._closing.set()
