"""Online explore/exploit: refine strategy answers from live traffic.

The strategy index is compiled offline from one study; a query for an
(app, input, chip) cell the study never measured can only fall back up
the specialisation lattice to a less-specialised (degraded) answer.
But a running server *sees* measurements: every successful
``POST /v1/predict`` prices a concrete (chip, app, input, config)
point.  ``GET /v1/strategy?refine=1`` opts into consulting those live
observations — the server-side half of the budgeted-autotuning loop
(:mod:`repro.core.search`): predict traffic explores the lattice, and
refined strategy answers exploit whatever it has learned so far.

:class:`ObservationStore` is the bounded memory between the two
endpoints.  It keeps, per (chip, app, input) cell, a running per-
configuration mean of observed medians, evicting whole cells LRU-wise
past ``capacity`` — a long-running server's store cannot grow without
bound, and a cell refreshed by traffic stays hot.  The best
configuration of a cell is the lowest mean median, ties broken by
lexicographic configuration key (the same order as
:mod:`repro.core.search`).

Refined responses are *additive*: they carry the normal answer schema
plus ``"refined": true``, a ``served_level`` of ``"refined"`` and a
provenance note naming the observation count — responses that are not
refined are byte-identical to the non-refine path, so precompiled
answers, goldens and caches are untouched.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..errors import ServeError

__all__ = ["DEFAULT_CAPACITY", "ObservationStore"]

#: Default bound on distinct (chip, app, input) cells remembered.
DEFAULT_CAPACITY = 256

#: One cell's accumulated evidence: config key -> [count, sum of medians].
_Cell = Dict[str, List[float]]


def _median(times: Tuple[float, ...]) -> float:
    ordered = sorted(times)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class ObservationStore:
    """Bounded LRU store of live per-cell prediction observations.

    Keys are full (chip, app, input) coordinate triples — the refine
    path only applies to fully-specified queries, matching the
    granularity ``/v1/predict`` prices at.  Thread-safe: the server's
    predict path records from executor callbacks while the strategy
    path reads.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ServeError(
                f"observation store capacity must be positive, got "
                f"{capacity}"
            )
        self.capacity = int(capacity)
        self._cells: "OrderedDict[Tuple[str, str, str], _Cell]" = (
            OrderedDict()
        )
        self._observations: Dict[Tuple[str, str, str], int] = {}
        self._lock = threading.Lock()
        self.recorded = 0
        self.evicted = 0

    def record(
        self,
        chip: str,
        app: str,
        input: str,
        config: str,
        times_us: Tuple[float, ...],
    ) -> None:
        """Fold one priced observation into its cell (LRU-refreshing)."""
        if not times_us:
            return
        med = _median(tuple(float(t) for t in times_us))
        key = (chip, app, input)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = {}
                self._cells[key] = cell
                self._observations[key] = 0
            else:
                self._cells.move_to_end(key)
            stat = cell.setdefault(config, [0.0, 0.0])
            stat[0] += 1
            stat[1] += med
            self._observations[key] += 1
            self.recorded += 1
            while len(self._cells) > self.capacity:
                evicted_key, _ = self._cells.popitem(last=False)
                del self._observations[evicted_key]
                self.evicted += 1

    def best(
        self, chip: str, app: str, input: str
    ) -> Optional[Tuple[str, float, int]]:
        """The cell's best configuration so far, or ``None``.

        Returns ``(config key, mean observed median in us, number of
        observations in the cell)``; lowest mean wins, ties break on
        lexicographic key.  Reading refreshes the cell's LRU position —
        a cell that answers queries is worth keeping.
        """
        key = (chip, app, input)
        with self._lock:
            cell = self._cells.get(key)
            if not cell:
                return None
            self._cells.move_to_end(key)
            mean, config = min(
                (total / n, k) for k, (n, total) in cell.items()
            )
            return config, mean, self._observations[key]

    def __len__(self) -> int:
        return len(self._cells)

    def stats(self) -> dict:
        """Counters for ``/metrics``: shape and lifetime totals."""
        with self._lock:
            return {
                "cells": len(self._cells),
                "capacity": self.capacity,
                "recorded": self.recorded,
                "evicted": self.evicted,
            }
