"""LRU + TTL response cache for the serving layer.

Strategy answers are immutable for the lifetime of a loaded index, but
operators hot-swap indexes by restarting the server, so entries carry
a time-to-live as a safety valve rather than living forever.  The
cache is a plain ordered dict under the event loop's single thread —
no locking — with LRU eviction at ``maxsize`` and lazy expiry on
access.  All timing goes through an injectable ``clock`` so tests
drive expiry deterministically.

Since the index pre-serializes every enumerable lattice coordinate
(:meth:`~repro.serve.index.StrategyIndex.compile_answers`), this cache
only sees the long tail the table cannot enumerate — queries naming
unknown chips, apps or inputs — and the server stores ready-to-write
``(body_bytes, degraded)`` tuples in it so even that tail encodes at
most once per TTL window.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional, Tuple

__all__ = ["TTLCache"]

#: Sentinel distinguishing "miss" from a cached falsy value.
_MISSING = object()


class TTLCache:
    """A bounded mapping with LRU eviction and per-entry expiry.

    ``maxsize=0`` disables the cache entirely (every ``get`` misses,
    ``put`` is a no-op) so the server can expose one code path either
    way.  ``hits`` / ``misses`` / ``evictions`` / ``expirations`` are
    the counters ``GET /metrics`` reports.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        ttl: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.maxsize = maxsize
        self.ttl = ttl
        self._clock = clock
        self._data: "OrderedDict[Hashable, Tuple[object, float]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def get(self, key: Hashable, default=None):
        """The cached value, or ``default`` on a miss or expiry."""
        entry = self._data.get(key, _MISSING)
        if entry is _MISSING:
            self.misses += 1
            return default
        value, expires_at = entry
        if self._clock() >= expires_at:
            del self._data[key]
            self.expirations += 1
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        if self.maxsize == 0:
            return
        if key in self._data:
            del self._data[key]
        elif len(self._data) >= self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1
        self._data[key] = (value, self._clock() + self.ttl)

    def purge(self) -> int:
        """Drop every expired entry; returns how many were dropped."""
        now = self._clock()
        expired = [k for k, (_, exp) in self._data.items() if now >= exp]
        for key in expired:
            del self._data[key]
        self.expirations += len(expired)
        return len(expired)

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> Dict[str, int]:
        """The counter snapshot ``GET /metrics`` embeds."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
        }

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        entry = self._data.get(key, _MISSING)
        return entry is not _MISSING and self._clock() < entry[1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TTLCache(size={len(self._data)}/{self.maxsize}, "
            f"ttl={self.ttl}, hits={self.hits}, misses={self.misses})"
        )
