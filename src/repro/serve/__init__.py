"""Online serving layer: the strategy advisor as a queryable service.

The paper's end product is advice — for any degree of specialisation
over {chip, application, input}, which optimisation configuration to
deploy.  The offline pipeline derives that advice in batch
(:mod:`repro.core.strategies`); this package makes it *servable*:

* :mod:`repro.serve.index` — compiles a checksummed
  ``strategy-index-v1`` artifact from a
  :class:`~repro.study.dataset.PerfDataset`: the precomputed
  Algorithm 1 strategy at every specialisation level, with
  expected-speedup, portability-slowdown and coverage metadata per
  entry, plus a table of pre-serialized response bytes for every
  lattice coordinate so the hot path never JSON-encodes.  Queries fall
  back *up* the specialisation lattice when the most-specialised cell
  is missing or quarantined, and such responses are marked
  ``degraded``.
* :mod:`repro.serve.server` — an asyncio, stdlib-only HTTP JSON API
  over a loaded index (``GET /v1/strategy``, ``POST /v1/predict``,
  ``GET /healthz``, ``GET /metrics``) with bounded concurrency,
  per-request timeouts, an LRU+TTL response cache, predict
  micro-batching, ``SO_REUSEPORT`` multi-worker scale-out
  (``--workers N``) and graceful drain-on-signal shutdown.
* :mod:`repro.serve.cache` — the LRU+TTL cache.
* :mod:`repro.serve.predict` — online single-point pricing through the
  vectorized batch engine, backing ``POST /v1/predict``;
  :meth:`~repro.serve.predict.Predictor.price_many` prices a coalesced
  micro-batch in one locked pass.

See ``docs/serving.md`` for the API reference and artifact format.
"""

from __future__ import annotations

from .admission import AdmissionController, CircuitBreaker
from .cache import TTLCache
from .index import (
    INDEX_FORMAT,
    IndexEntry,
    PortfolioAnswer,
    StrategyAnswer,
    StrategyIndex,
    build_index,
    render_answer,
    render_portfolio_answer,
)
from .predict import Predictor
from .refine import ObservationStore
from .server import PredictCoalescer, StrategyServer
from .supervisor import AdminListener, FleetSupervisor

__all__ = [
    "AdminListener",
    "AdmissionController",
    "CircuitBreaker",
    "FleetSupervisor",
    "INDEX_FORMAT",
    "IndexEntry",
    "ObservationStore",
    "PortfolioAnswer",
    "PredictCoalescer",
    "Predictor",
    "StrategyAnswer",
    "StrategyIndex",
    "StrategyServer",
    "TTLCache",
    "build_index",
    "render_answer",
    "render_portfolio_answer",
]
