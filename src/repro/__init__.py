"""repro — reproduction of *One Size Doesn't Fit All: Quantifying
Performance Portability of Graph Applications on GPUs* (IISWC 2019).

The package layers, bottom-up:

* :mod:`repro.graphs`    — CSR graphs, generators, the 3 study inputs;
* :mod:`repro.ocl`       — OpenCL execution-model abstractions;
* :mod:`repro.chips`     — the 6 study GPUs as calibrated models;
* :mod:`repro.dsl`       — the IrGL-style graph-algorithm DSL;
* :mod:`repro.compiler`  — the 96-point optimisation space + passes;
* :mod:`repro.runtime`   — functional execution and workload tracing;
* :mod:`repro.perfmodel` — the analytical GPU performance simulator;
* :mod:`repro.apps`      — the 17 study applications;
* :mod:`repro.microbench`— the explanatory microbenchmarks;
* :mod:`repro.study`     — the full-factorial sweep and its dataset;
* :mod:`repro.core`      — the paper's contribution: the rank-based
  specialisation analysis (Algorithm 1, strategies, evaluations);
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import run_study, StudyConfig, build_strategies
    dataset = run_study(StudyConfig(scale=0.2))
    strategies = build_strategies(dataset)
    print(strategies["global"].distinct_configs)
"""

from .apps import all_applications, get_application
from .chips import CHIPS, all_chips, get_chip
from .compiler import BASELINE, OptConfig, compile_program, enumerate_configs
from .core import Analysis, build_strategies
from .faults import FaultPlan
from .graphs import CSRGraph, get_input, study_inputs
from .obs import Recorder, RunReport
from .study import PerfDataset, StudyConfig, TestCase, run_study

__version__ = "1.0.0"

__all__ = [
    "all_applications",
    "get_application",
    "CHIPS",
    "all_chips",
    "get_chip",
    "BASELINE",
    "OptConfig",
    "compile_program",
    "enumerate_configs",
    "Analysis",
    "build_strategies",
    "CSRGraph",
    "FaultPlan",
    "get_input",
    "study_inputs",
    "PerfDataset",
    "Recorder",
    "RunReport",
    "StudyConfig",
    "TestCase",
    "run_study",
    "__version__",
]
