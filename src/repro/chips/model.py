"""Chip parameter model.

A :class:`ChipModel` captures everything the performance simulator
needs to know about a GPU *as a black box with structure*: the
execution-hierarchy geometry (CUs, subgroup size, occupancy limits) and
a small set of calibrated throughput/latency parameters corresponding
to the "performance parameters" column of the paper's Table VI —
kernel-launch and copy overhead, barrier throughput at each scope,
atomic RMW throughput, memory-divergence sensitivity — plus vendor
quirk flags (JIT atomic combining, lockstep subgroups) that the paper
identifies in Section VIII.

The absolute values are *calibrated, not measured*: the reproduction's
analysis consumes only relative runtimes, so what matters is that each
chip's parameter vector produces the per-chip phenomena the paper
reports (see ``repro.chips.database`` for the per-chip rationale).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from ..errors import ChipError
from ..ocl.progress import CUResources, discover_occupancy

__all__ = ["ChipModel"]


@dataclass(frozen=True)
class ChipModel:
    """Calibrated performance model of one GPU (plus runtime environment).

    The paper uses *chip* rather than *GPU* to include the runtime; the
    JIT and OS related flags below are part of that environment.
    """

    # -- identity (paper Table I) -------------------------------------
    name: str
    short_name: str
    vendor: str
    architecture: str
    integrated: bool
    os: str

    # -- execution geometry -------------------------------------------
    n_cus: int
    sg_size: int
    max_wg_size: int
    lockstep_subgroups: bool  # subgroup barriers are free when True
    supports_subgroups: bool  # False => sg_size is trivially 1 (MALI)
    cu: CUResources = field(
        default_factory=lambda: CUResources(
            max_workgroups=16, max_threads=1024, local_mem_bytes=32768
        )
    )
    threads_for_peak: int = 512  # threads/CU needed to hide latency

    # -- throughputs and latencies ------------------------------------
    edges_per_us_per_cu: float = 100.0  # edge-work throughput at peak
    node_cost_factor: float = 1.0  # node work relative to edge work
    launch_overhead_us: float = 20.0  # kernel launch latency
    copy_overhead_us: float = 10.0  # host<->device copy latency
    global_barrier_base_us: float = 2.0
    global_barrier_per_wg_ns: float = 150.0
    wg_barrier_ns: float = 30.0
    sg_barrier_ns: float = 8.0
    atomic_rmw_ns: float = 10.0  # serialised contended global RMW
    local_traffic_ns: float = 1.0  # per element moved through local mem

    # -- memory divergence (paper Section VIII-c) ----------------------
    divergence_sensitivity: float = 0.3
    barrier_divergence_relief: float = 0.9

    # -- vendor/runtime quirks (paper Sections VI-A, VIII) -------------
    jit_coop_cv: bool = False  # JIT already combines subgroup RMWs
    native_ocl2_atomics: bool = True  # else fence-emulated (slower)
    atomic_emulation_factor: float = 1.0  # cost multiplier when emulated

    # -- measurement noise ---------------------------------------------
    noise_sigma: float = 0.03  # log-normal sigma of one timing run

    def __post_init__(self) -> None:
        if self.n_cus < 1:
            raise ChipError(f"{self.name}: n_cus must be positive")
        if self.sg_size < 1:
            raise ChipError(f"{self.name}: sg_size must be positive")
        if not self.supports_subgroups and self.sg_size != 1:
            raise ChipError(
                f"{self.name}: chips without subgroup support must use sg_size 1"
            )
        if self.max_wg_size < 1:
            raise ChipError(f"{self.name}: max_wg_size must be positive")
        if self.edges_per_us_per_cu <= 0:
            raise ChipError(f"{self.name}: edge throughput must be positive")
        if not 0.0 <= self.barrier_divergence_relief <= 1.0:
            raise ChipError(
                f"{self.name}: barrier_divergence_relief must be in [0, 1]"
            )
        if self.noise_sigma < 0:
            raise ChipError(f"{self.name}: noise_sigma must be non-negative")

    # -- derived quantities --------------------------------------------

    @property
    def peak_edges_per_us(self) -> float:
        """Device-wide edge-work throughput at full occupancy."""
        return self.n_cus * self.edges_per_us_per_cu

    def effective_sg_barrier_ns(self) -> float:
        """Subgroup barrier cost; free on lockstep-subgroup hardware."""
        return 0.0 if self.lockstep_subgroups else self.sg_barrier_ns

    def effective_atomic_rmw_ns(self) -> float:
        """Global RMW cost including OpenCL 2.0 emulation overhead."""
        factor = 1.0 if self.native_ocl2_atomics else self.atomic_emulation_factor
        return self.atomic_rmw_ns * factor

    def supports_wg_size(self, wg_size: int) -> bool:
        return 1 <= wg_size <= self.max_wg_size

    def occupancy(self, workgroup_size: int, local_mem_per_wg: int = 0) -> int:
        """Device-wide co-resident workgroups for a kernel shape."""
        return discover_occupancy(
            self.cu, self.n_cus, workgroup_size, local_mem_per_wg
        )

    def utilisation(self, workgroup_size: int, local_mem_per_wg: int = 0) -> float:
        """Fraction of peak throughput reachable at this kernel shape.

        Resident threads per CU below :attr:`threads_for_peak` leave
        memory latency exposed; throughput scales roughly linearly in
        that regime (the classic occupancy curve).
        """
        resident = self.occupancy(workgroup_size, local_mem_per_wg)
        if resident == 0:
            return 0.0
        threads_per_cu = resident * workgroup_size / self.n_cus
        return min(1.0, threads_per_cu / self.threads_for_peak)

    def with_overrides(self, **kwargs) -> "ChipModel":
        """Return a copy with some parameters replaced (for what-if studies)."""
        return replace(self, **kwargs)

    def summary_row(self) -> Tuple[str, str, int, int, str]:
        """(vendor, chip, #CUs, subgroup size, short name) — Table I row."""
        return (self.vendor, self.name, self.n_cus, self.sg_size, self.short_name)
