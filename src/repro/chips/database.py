"""The six study chips (paper Table I) with calibrated parameters.

Per-chip rationale, tied to the paper's observations:

* **M4000 / GTX1080 (Nvidia)** — very low kernel-launch and copy
  overhead (Fig 5: highest utilisation at small kernel times), which is
  why their strategies *disable* ``oitergb``; their OpenCL JIT already
  performs subgroup RMW combining (Table X ``sg-cmb`` ≈ 1×), so
  ``coop-cv`` only adds overhead; subgroups are exposed via inline PTX
  and the OpenCL 2.0 memory model is fence-emulated.  GTX1080 (Pascal)
  has higher raw throughput but is more occupancy-sensitive than
  M4000 (Maxwell), producing the paper's asymmetric intra-vendor
  porting (M4000 runs fine with GTX1080 settings, not vice versa).
* **HD5500 / IRIS (Intel Broadwell GT2/GT3)** — identical architecture
  at different tiers, so settings port between them almost freely
  (Fig 1); high launch overhead (driver stack), so ``oitergb`` is
  enabled; HD5500's JIT combines subgroup atomics but IRIS's code path
  does not (paper Section VIII-b), so only IRIS enables ``coop-cv``.
* **R9 (AMD)** — large subgroups (64) with slow contended global RMWs:
  the biggest ``coop-cv`` winner (Table X: ≈ 22×); discrete-card
  launch overhead makes ``oitergb`` profitable.
* **MALI (ARM Mali-T628)** — mobile part: no subgroups (size 1), tiny
  occupancy, very high launch overhead, extreme sensitivity to
  intra-workgroup memory divergence (Table X ``m-divg`` ≈ 6.45×) —
  the reason ``sg`` helps despite trivial subgroups (its gratuitous
  workgroup barriers keep threads in lockstep) — and the noisiest
  timings (no device timers; calibration-loop measurement).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ChipError
from ..ocl.progress import CUResources
from .model import ChipModel

__all__ = ["CHIPS", "CHIP_NAMES", "get_chip", "all_chips", "chips_by_vendor"]


def _nvidia_m4000() -> ChipModel:
    return ChipModel(
        name="Quadro M4000",
        short_name="M4000",
        vendor="Nvidia",
        architecture="Maxwell",
        integrated=False,
        os="Linux",
        n_cus=13,
        sg_size=32,
        max_wg_size=1024,
        lockstep_subgroups=True,
        supports_subgroups=True,
        cu=CUResources(max_workgroups=32, max_threads=2048, local_mem_bytes=49152),
        threads_for_peak=512,
        edges_per_us_per_cu=420.0,
        launch_overhead_us=7.0,
        copy_overhead_us=4.0,
        global_barrier_base_us=13.0,
        global_barrier_per_wg_ns=25.0,
        wg_barrier_ns=22.0,
        sg_barrier_ns=0.0,
        atomic_rmw_ns=1.6,
        local_traffic_ns=0.7,
        divergence_sensitivity=0.30,
        barrier_divergence_relief=0.85,
        jit_coop_cv=True,
        native_ocl2_atomics=False,
        atomic_emulation_factor=1.25,
        noise_sigma=0.035,
    )


def _nvidia_gtx1080() -> ChipModel:
    return ChipModel(
        name="GTX 1080",
        short_name="GTX1080",
        vendor="Nvidia",
        architecture="Pascal",
        integrated=False,
        os="Linux",
        n_cus=20,
        sg_size=32,
        max_wg_size=1024,
        lockstep_subgroups=True,
        supports_subgroups=True,
        cu=CUResources(max_workgroups=32, max_threads=2048, local_mem_bytes=65536),
        threads_for_peak=896,
        edges_per_us_per_cu=760.0,
        launch_overhead_us=6.0,
        copy_overhead_us=3.5,
        global_barrier_base_us=14.0,
        global_barrier_per_wg_ns=25.0,
        wg_barrier_ns=18.0,
        sg_barrier_ns=0.0,
        atomic_rmw_ns=1.2,
        local_traffic_ns=0.5,
        divergence_sensitivity=0.45,
        barrier_divergence_relief=0.85,
        jit_coop_cv=True,
        native_ocl2_atomics=False,
        atomic_emulation_factor=1.2,
        noise_sigma=0.035,
    )


def _intel_hd5500() -> ChipModel:
    return ChipModel(
        name="HD 5500",
        short_name="HD5500",
        vendor="Intel",
        architecture="Broadwell GT2",
        integrated=True,
        os="Windows",
        n_cus=24,
        sg_size=16,
        max_wg_size=256,
        lockstep_subgroups=False,
        supports_subgroups=True,
        cu=CUResources(max_workgroups=16, max_threads=448, local_mem_bytes=65536),
        threads_for_peak=224,
        edges_per_us_per_cu=55.0,
        launch_overhead_us=20.0,
        copy_overhead_us=8.0,
        global_barrier_base_us=7.0,
        global_barrier_per_wg_ns=12.0,
        wg_barrier_ns=45.0,
        sg_barrier_ns=10.0,
        atomic_rmw_ns=6.0,
        local_traffic_ns=1.2,
        divergence_sensitivity=0.22,
        barrier_divergence_relief=0.85,
        jit_coop_cv=True,
        native_ocl2_atomics=True,
        noise_sigma=0.055,
    )


def _intel_iris6100() -> ChipModel:
    return ChipModel(
        name="Iris 6100",
        short_name="IRIS",
        vendor="Intel",
        architecture="Broadwell GT3",
        integrated=True,
        os="Windows",
        n_cus=47,
        sg_size=16,
        max_wg_size=256,
        lockstep_subgroups=False,
        supports_subgroups=True,
        cu=CUResources(max_workgroups=16, max_threads=448, local_mem_bytes=65536),
        threads_for_peak=224,
        edges_per_us_per_cu=58.0,
        launch_overhead_us=18.0,
        copy_overhead_us=8.0,
        global_barrier_base_us=7.0,
        global_barrier_per_wg_ns=12.0,
        wg_barrier_ns=42.0,
        sg_barrier_ns=9.0,
        atomic_rmw_ns=6.5,
        local_traffic_ns=1.1,
        divergence_sensitivity=0.25,
        barrier_divergence_relief=0.85,
        jit_coop_cv=False,
        native_ocl2_atomics=True,
        noise_sigma=0.055,
    )


def _amd_r9() -> ChipModel:
    return ChipModel(
        name="Radeon R9",
        short_name="R9",
        vendor="AMD",
        architecture="GCN",
        integrated=False,
        os="Windows",
        n_cus=28,
        sg_size=64,
        max_wg_size=256,
        lockstep_subgroups=True,
        supports_subgroups=True,
        cu=CUResources(max_workgroups=40, max_threads=2560, local_mem_bytes=65536),
        threads_for_peak=768,
        edges_per_us_per_cu=560.0,
        launch_overhead_us=14.0,
        copy_overhead_us=7.0,
        global_barrier_base_us=6.0,
        global_barrier_per_wg_ns=10.0,
        wg_barrier_ns=28.0,
        sg_barrier_ns=0.0,
        atomic_rmw_ns=6.0,
        local_traffic_ns=0.6,
        divergence_sensitivity=0.35,
        barrier_divergence_relief=0.85,
        jit_coop_cv=False,
        native_ocl2_atomics=True,
        noise_sigma=0.045,
    )


def _arm_mali() -> ChipModel:
    return ChipModel(
        name="Mali-T628",
        short_name="MALI",
        vendor="ARM",
        architecture="Midgard",
        integrated=True,
        os="Linux",
        n_cus=4,
        sg_size=1,
        max_wg_size=256,
        lockstep_subgroups=False,
        supports_subgroups=False,
        cu=CUResources(max_workgroups=4, max_threads=256, local_mem_bytes=32768),
        threads_for_peak=128,
        edges_per_us_per_cu=40.0,
        launch_overhead_us=50.0,
        copy_overhead_us=25.0,
        global_barrier_base_us=8.0,
        global_barrier_per_wg_ns=100.0,
        wg_barrier_ns=60.0,
        sg_barrier_ns=20.0,
        atomic_rmw_ns=8.0,
        local_traffic_ns=2.0,
        divergence_sensitivity=15.0,
        barrier_divergence_relief=0.92,
        jit_coop_cv=False,
        native_ocl2_atomics=False,
        atomic_emulation_factor=1.4,
        noise_sigma=0.12,
    )


def all_chips() -> List[ChipModel]:
    """The six chips of the study, in Table I order."""
    return [
        _nvidia_m4000(),
        _nvidia_gtx1080(),
        _intel_hd5500(),
        _intel_iris6100(),
        _amd_r9(),
        _arm_mali(),
    ]


CHIPS: Dict[str, ChipModel] = {chip.short_name: chip for chip in all_chips()}
CHIP_NAMES: Tuple[str, ...] = tuple(CHIPS)


def get_chip(short_name: str) -> ChipModel:
    """Look up a study chip by its Table I short name."""
    try:
        return CHIPS[short_name]
    except KeyError:
        raise ChipError(
            f"unknown chip {short_name!r}; known chips: {', '.join(CHIP_NAMES)}"
        ) from None


def chips_by_vendor(vendor: str) -> List[ChipModel]:
    """All study chips from one vendor (case-insensitive)."""
    found = [c for c in all_chips() if c.vendor.lower() == vendor.lower()]
    if not found:
        vendors = sorted({c.vendor for c in all_chips()})
        raise ChipError(
            f"unknown vendor {vendor!r}; known vendors: {', '.join(vendors)}"
        )
    return found
