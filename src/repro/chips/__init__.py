"""Chip parameter models and the six study GPUs (paper Table I)."""

from .database import CHIP_NAMES, CHIPS, all_chips, chips_by_vendor, get_chip
from .model import ChipModel

__all__ = [
    "ChipModel",
    "CHIPS",
    "CHIP_NAMES",
    "get_chip",
    "all_chips",
    "chips_by_vendor",
]
