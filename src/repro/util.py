"""Small shared numeric and filesystem helpers."""

from __future__ import annotations

import hashlib
import os
from typing import Iterable, Union

import numpy as np

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "expand_segments",
    "fnv1a_extend",
    "fnv1a_state",
    "geomean",
    "sha256_hex",
    "stable_hash",
]


def sha256_hex(data: Union[bytes, str]) -> str:
    """Hex SHA-256 digest of ``data`` (strings are UTF-8 encoded)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (write-temp-then-rename).

    The bytes are flushed and fsynced to a sibling temporary file which
    is then renamed over ``path``; a crash mid-write can leave a stale
    temporary behind but never a truncated ``path``.  Readers always
    observe either the previous complete file or the new complete file.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - crash-path cleanup
            try:
                os.unlink(tmp)
            except OSError:
                pass


def atomic_write_text(path: str, text: str) -> None:
    """UTF-8 variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


def expand_segments(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Expand per-segment (start, count) pairs into flat indices.

    For segments ``(s_i, c_i)`` returns the concatenation of
    ``[s_i, s_i + 1, ..., s_i + c_i - 1]`` — the vectorised equivalent
    of iterating CSR adjacency lists, used throughout the functional
    executor.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg_begin = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - seg_begin + np.repeat(starts, counts)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; 1.0 for an empty input.

    The paper summarises relative performance with geometric means
    throughout; an empty set of ratios is the multiplicative identity.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 1.0
    if np.any(arr <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.log(arr).mean()))


_FNV_OFFSET = 14695981039346656037
_FNV_PRIME = 1099511628211
_MASK64 = (1 << 64) - 1
_MASK63 = (1 << 63) - 1


def fnv1a_state(*parts: object) -> int:
    """Raw (unmasked) FNV-1a state after hashing the joined parts.

    The state can be extended with more parts via :func:`fnv1a_extend`;
    splitting a :func:`stable_hash` computation this way lets a fixed
    prefix (e.g. chip/program/graph) be hashed once and reused for many
    suffixes (e.g. configuration × repetition seeds).
    """
    h = _FNV_OFFSET
    for ch in "\x1f".join(str(p) for p in parts).encode("utf-8"):
        h = ((h ^ ch) * _FNV_PRIME) & _MASK64
    return h


def fnv1a_extend(state: int, *parts: object) -> int:
    """Finish a :func:`fnv1a_state` prefix with more parts.

    ``fnv1a_extend(fnv1a_state(*a), *b) == stable_hash(*a, *b)`` for
    any non-empty ``a`` and ``b``.
    """
    h = state
    for ch in ("\x1f" + "\x1f".join(str(p) for p in parts)).encode("utf-8"):
        h = ((h ^ ch) * _FNV_PRIME) & _MASK64
    return h & _MASK63


def stable_hash(*parts: object) -> int:
    """A deterministic 63-bit hash of string-convertible parts.

    Python's built-in ``hash`` is salted per process; experiment seeds
    must be reproducible across runs, so we use FNV-1a over the joined
    string representation.
    """
    return fnv1a_state(*parts) & _MASK63
