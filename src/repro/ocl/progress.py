"""Occupancy-bound execution and the portable global barrier.

The OpenCL standard gives no forward-progress guarantee between
workgroups, so a blocking inter-workgroup barrier can hang.  Prior work
(Sorensen et al., the "recipe" cited in the paper as [17]) shows GPUs
empirically provide *occupancy-bound execution*: workgroups that are
co-resident on the chip keep making progress.  A portable global
barrier therefore (1) discovers at runtime how many workgroups can be
co-resident and (2) launches exactly that many, virtualising any extra
work inside them.

This module implements the occupancy calculation and the safety check;
:mod:`repro.compiler.passes.iteration_outlining` uses it when lowering
``oitergb``, and the performance model uses the same numbers to price
utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ForwardProgressError

__all__ = ["CUResources", "occupant_workgroups", "discover_occupancy", "validate_global_barrier"]


@dataclass(frozen=True)
class CUResources:
    """Per-compute-unit scheduling limits of a chip."""

    max_workgroups: int  # scheduler slots per CU
    max_threads: int  # resident thread limit per CU
    local_mem_bytes: int  # CU-local memory capacity

    def __post_init__(self) -> None:
        if self.max_workgroups < 1 or self.max_threads < 1:
            raise ValueError("CU limits must be positive")
        if self.local_mem_bytes < 0:
            raise ValueError("local memory size must be non-negative")


def occupant_workgroups(
    resources: CUResources,
    workgroup_size: int,
    local_mem_per_wg: int = 0,
) -> int:
    """Workgroups of a kernel that can be co-resident on one CU.

    The minimum over the three limiting resources: scheduler slots,
    resident threads, and CU-local memory.  Returns 0 when the kernel
    cannot fit at all (e.g. local memory demand exceeds capacity).
    """
    if workgroup_size < 1:
        raise ValueError("workgroup size must be positive")
    if local_mem_per_wg < 0:
        raise ValueError("local memory demand must be non-negative")
    by_slots = resources.max_workgroups
    by_threads = resources.max_threads // workgroup_size
    if local_mem_per_wg == 0:
        by_local = by_slots
    else:
        by_local = resources.local_mem_bytes // local_mem_per_wg
    return max(0, min(by_slots, by_threads, by_local))


def discover_occupancy(
    resources: CUResources,
    n_cus: int,
    workgroup_size: int,
    local_mem_per_wg: int = 0,
) -> int:
    """Total safely co-resident workgroups across the device.

    This models the runtime occupancy-discovery step of the portable
    global barrier: the number returned is the largest launch for
    which occupancy-bound execution guarantees the barrier terminates.
    """
    if n_cus < 1:
        raise ValueError("device must have at least one CU")
    return n_cus * occupant_workgroups(resources, workgroup_size, local_mem_per_wg)


def validate_global_barrier(n_workgroups: int, safe_occupancy: int) -> None:
    """Raise :class:`ForwardProgressError` for an unsafe barrier launch.

    A global barrier executed by more workgroups than can be
    co-resident deadlocks under the occupancy-bound execution model:
    resident workgroups spin at the barrier while the workgroups they
    wait for are never scheduled.
    """
    if safe_occupancy < 1:
        raise ForwardProgressError(
            "kernel cannot be resident on the device at all; "
            "global barrier would never be reached"
        )
    if n_workgroups > safe_occupancy:
        raise ForwardProgressError(
            f"global barrier launched with {n_workgroups} workgroups but only "
            f"{safe_occupancy} can be co-resident; excess workgroups would "
            "starve and the barrier would hang"
        )
