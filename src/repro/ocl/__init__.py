"""Abstract OpenCL machine model: hierarchy, memory, barriers, progress."""

from .barriers import BarrierScope
from .hierarchy import LaunchGeometry
from .memory import AccessPattern, AtomicOp, MemoryRegion, MemoryScope
from .progress import (
    CUResources,
    discover_occupancy,
    occupant_workgroups,
    validate_global_barrier,
)

__all__ = [
    "BarrierScope",
    "LaunchGeometry",
    "AccessPattern",
    "AtomicOp",
    "MemoryRegion",
    "MemoryScope",
    "CUResources",
    "discover_occupancy",
    "occupant_workgroups",
    "validate_global_barrier",
]
