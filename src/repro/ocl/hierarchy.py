"""The OpenCL execution hierarchy (paper Section IV-A).

Threads are partitioned into subgroups; subgroups into workgroups; a
kernel is executed by an NDRange of workgroups.  These classes model
the *geometry* of a launch — how many threads/subgroups/workgroups
exist and how ids decompose — which both the compiler (to reason about
cooperative schemes) and the performance model (to reason about
occupancy and divergence) consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DSLError

__all__ = ["LaunchGeometry"]


@dataclass(frozen=True)
class LaunchGeometry:
    """Geometry of a 1-D kernel launch.

    Parameters mirror OpenCL's ``clEnqueueNDRangeKernel``: a global
    size decomposed into workgroups of ``workgroup_size`` threads, each
    made of subgroups of ``subgroup_size`` threads.  A subgroup never
    spans workgroups; the final subgroup of a workgroup may be partial
    on devices whose subgroup size does not divide the workgroup size.
    """

    n_workgroups: int
    workgroup_size: int
    subgroup_size: int

    def __post_init__(self) -> None:
        if self.n_workgroups < 1:
            raise DSLError("launch requires at least one workgroup")
        if self.workgroup_size < 1:
            raise DSLError("workgroup size must be positive")
        if self.subgroup_size < 1:
            raise DSLError("subgroup size must be positive")

    @property
    def global_size(self) -> int:
        """Total number of threads in the launch."""
        return self.n_workgroups * self.workgroup_size

    @property
    def subgroups_per_workgroup(self) -> int:
        """Number of (possibly partial) subgroups in each workgroup."""
        return -(-self.workgroup_size // self.subgroup_size)

    @property
    def n_subgroups(self) -> int:
        return self.n_workgroups * self.subgroups_per_workgroup

    def workgroup_of(self, global_id: int) -> int:
        self._check_thread(global_id)
        return global_id // self.workgroup_size

    def local_id_of(self, global_id: int) -> int:
        self._check_thread(global_id)
        return global_id % self.workgroup_size

    def subgroup_of(self, global_id: int) -> int:
        """Global subgroup index of a thread."""
        wg = self.workgroup_of(global_id)
        return wg * self.subgroups_per_workgroup + (
            self.local_id_of(global_id) // self.subgroup_size
        )

    def subgroup_lane_of(self, global_id: int) -> int:
        return self.local_id_of(global_id) % self.subgroup_size

    def _check_thread(self, global_id: int) -> None:
        if not 0 <= global_id < self.global_size:
            raise DSLError(
                f"thread id {global_id} out of range [0, {self.global_size})"
            )
