"""OpenCL memory regions, scopes and atomic operations (Section IV-A).

These enums label DSL operations and kernel-plan cost items: where a
memory access lands (private registers, CU-local memory, device global
memory), the scope at which an atomic or fence synchronises, and which
read-modify-write operation is used.  The performance model prices
each (region, operation) pair per chip.
"""

from __future__ import annotations

import enum

__all__ = ["MemoryRegion", "MemoryScope", "AtomicOp", "AccessPattern"]


class MemoryRegion(enum.Enum):
    """Where data lives in the OpenCL memory hierarchy."""

    PRIVATE = "private"  # per-thread registers
    LOCAL = "local"  # per-workgroup CU-local memory
    GLOBAL = "global"  # device memory, visible to all threads


class MemoryScope(enum.Enum):
    """Synchronisation scope of an atomic or fence (OpenCL 2.0)."""

    SUBGROUP = "subgroup"
    WORKGROUP = "workgroup"
    DEVICE = "device"


class AtomicOp(enum.Enum):
    """Read-modify-write operations used by the graph applications."""

    ADD = "add"
    MIN = "min"
    MAX = "max"
    CAS = "cas"
    EXCHANGE = "exchange"


class AccessPattern(enum.Enum):
    """Spatial pattern of a memory access stream.

    Drives the memory-divergence model: coalesced streams use full
    cache lines; strided and irregular (graph-neighbour) streams touch
    many lines per subgroup access, which some chips (notably MALI in
    the paper's Table X) penalise heavily.
    """

    COALESCED = "coalesced"
    STRIDED = "strided"
    IRREGULAR = "irregular"
