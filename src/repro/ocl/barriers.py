"""Barrier flavours of the OpenCL model (paper Section IV-A-b).

OpenCL provides intra-workgroup and subgroup barriers natively; the
inter-workgroup (global) barrier is *not* provided by the standard and
must be built on top of the occupancy-bound execution model
(:mod:`repro.ocl.progress`).  The compiler inserts barriers when
lowering cooperative schemes, and the performance model prices each
flavour per chip.
"""

from __future__ import annotations

import enum

__all__ = ["BarrierScope"]


class BarrierScope(enum.Enum):
    """Scope of a barrier synchronisation."""

    SUBGROUP = "subgroup"
    WORKGROUP = "workgroup"
    GLOBAL = "global"

    @property
    def is_portable(self) -> bool:
        """Whether plain OpenCL guarantees this barrier terminates.

        Global barriers rely on empirical forward-progress properties
        (occupancy-bound execution); they are functionally portable
        only when launched with at most the co-resident workgroup
        count discovered at runtime.
        """
        return self is not BarrierScope.GLOBAL
