"""``python -m repro`` — top-level command dispatch.

Subcommands:

* ``study OUTPUT [--scale S] [--repetitions N] [--jobs N] [--engine E]
  [--resume] [--checkpoint DIR] [--no-checkpoint] [--retries N]``
  — run the full study and save the dataset (delegates to
  :mod:`repro.study.runner`; ``--jobs`` shards the pricing sweep over
  worker processes, ``--engine`` picks the vectorized ``batch`` path or
  the ``scalar`` reference — both produce the identical dataset).
  Completed shards are checkpointed to ``OUTPUT.ckpt`` as the sweep
  runs; an interrupted run resumes with ``--resume``, skipping
  already-priced shards;
* ``report [EXPERIMENT ...]`` — regenerate paper tables/figures
  (delegates to :mod:`repro.experiments.report`);
* ``profile REPORT.json [--spans N]`` — render a study RunReport
  (written by ``study --metrics PATH``) as a human-readable summary
  (delegates to :mod:`repro.obs.report`);
* ``doctor PATH [--fingerprint HEX] [--export DATASET]`` — diagnose a
  dataset file or checkpoint directory: damaged shards, stale
  fingerprints, quarantinable cells, and the ``--resume`` repair plan
  (delegates to :mod:`repro.study.doctor`; exits non-zero on unusable
  state);
* ``validate`` — run every application against its oracle on small
  instances of the three input classes.
"""

from __future__ import annotations

import sys

__all__ = ["main"]

_USAGE = """usage: python -m repro <command> [args]

commands:
  study OUTPUT [--scale S] [--repetitions N] [--jobs N] [--engine E]
               [--resume] [--checkpoint DIR] [--retries N]
               [--metrics PATH]
                                               run the full study
                                               (checkpointed; resumable)
  report [EXPERIMENT ...] [--min-coverage F]   regenerate tables/figures
  profile REPORT.json [--spans N]              render a study run report
  doctor PATH [--fingerprint HEX]
              [--export DATASET]               diagnose a dataset or
                                               checkpoint directory
  validate                                     oracle-check all applications
"""


def _validate() -> int:
    from .apps.registry import all_applications
    from .graphs.inputs import study_inputs

    inputs = study_inputs(scale=0.05)
    failures = 0
    for inp in inputs.values():
        for app in all_applications():
            if app.requires_weights and not inp.graph.has_weights:
                continue
            ok = app.validate(inp.graph, source=0)
            print(f"{app.name:14s} on {inp.name:12s}: {'ok' if ok else 'FAIL'}")
            failures += not ok
    print(f"\n{failures} failures")
    return 1 if failures else 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "study":
        from .study import runner

        sys.argv = ["repro-study"] + rest
        runner.main()
        return 0
    if command == "report":
        from .experiments.report import main as report_main

        return report_main(rest)
    if command == "profile":
        from .obs.report import main as profile_main

        return profile_main(rest)
    if command == "doctor":
        from .study.doctor import main as doctor_main

        return doctor_main(rest)
    if command == "validate":
        return _validate()
    print(f"unknown command {command!r}", file=sys.stderr)
    print(_USAGE, file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
