"""``python -m repro`` — top-level command dispatch.

The subcommand registry lives in :data:`repro.cli.SUBCOMMANDS`; the
usage text below renders from it, so the dispatcher, the ``--help``
epilog and the tests can never disagree about what exists.

* ``study`` — run the full study and save the dataset (delegates to
  :mod:`repro.study.runner`; checkpointed, resumable, shardable over
  worker processes; ``--store v3`` spills binary columnar shards);
* ``dataset`` — convert between the JSON ``perf-dataset-v2`` family
  and the binary columnar ``perf-dataset-v3``, inspect headers, and
  run full checksum verification (:mod:`repro.store.cli`);
* ``report`` — regenerate paper tables/figures
  (:mod:`repro.experiments.report`);
* ``index`` — compile a ``strategy-index-v1`` artifact from a dataset
  (:mod:`repro.serve.index`), the input of ``serve``;
  ``--portfolios`` additionally compiles the greedy K-vs-coverage
  portfolio table backing ``GET /v1/portfolio``;
* ``portfolio`` — the "few fit most" analysis offline: greedy
  K-vs-coverage configuration portfolios per lattice level
  (:mod:`repro.core.portfolio`);
* ``search`` — replay budgeted search strategies (random, lattice
  local search, successive halving) against a dataset's exhaustive
  oracle and report fraction-of-oracle at each budget
  (:mod:`repro.core.search_eval`);
* ``serve`` — answer strategy/prediction queries over an asyncio HTTP
  JSON API (:mod:`repro.serve.server`): pre-serialized zero-encode
  strategy answers, ``--workers N`` SO_REUSEPORT scale-out with merged
  per-worker metrics, and micro-batched predict pricing; SIGTERM/SIGINT
  drain in-flight requests (all workers) and exit 0;
* ``profile`` — render a RunReport artifact (written by any
  subcommand's ``--metrics PATH``) as a human-readable summary
  (:mod:`repro.obs.report`);
* ``doctor`` — diagnose a dataset file or checkpoint directory
  (:mod:`repro.study.doctor`; exits non-zero on unusable state);
* ``validate`` — run every application against its oracle on small
  instances of the three input classes.
"""

from __future__ import annotations

import sys

from .cli import subcommand_epilog

__all__ = ["main"]

_USAGE = f"""usage: python -m repro <command> [args]

{subcommand_epilog()}
"""


def _validate() -> int:
    from .apps.registry import all_applications
    from .graphs.inputs import study_inputs

    inputs = study_inputs(scale=0.05)
    failures = 0
    for inp in inputs.values():
        for app in all_applications():
            if app.requires_weights and not inp.graph.has_weights:
                continue
            ok = app.validate(inp.graph, source=0)
            print(f"{app.name:14s} on {inp.name:12s}: {'ok' if ok else 'FAIL'}")
            failures += not ok
    print(f"\n{failures} failures")
    return 1 if failures else 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE)
        return 0
    command, rest = argv[0], argv[1:]
    if command == "study":
        from .study import runner

        sys.argv = ["repro-study"] + rest
        runner.main()
        return 0
    if command == "dataset":
        from .store.cli import main as dataset_main

        return dataset_main(rest)
    if command == "report":
        from .experiments.report import main as report_main

        return report_main(rest)
    if command == "index":
        from .serve.index import main as index_main

        return index_main(rest)
    if command == "portfolio":
        from .core.portfolio import main as portfolio_main

        return portfolio_main(rest)
    if command == "search":
        from .core.search_eval import main as search_main

        return search_main(rest)
    if command == "serve":
        from .serve.server import main as serve_main

        return serve_main(rest)
    if command == "profile":
        from .obs.report import main as profile_main

        return profile_main(rest)
    if command == "doctor":
        from .study.doctor import main as doctor_main

        return doctor_main(rest)
    if command == "validate":
        return _validate()
    print(f"unknown command {command!r}", file=sys.stderr)
    print(_USAGE, file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
