"""Shared CLI plumbing for the ``python -m repro`` subcommands.

Every subcommand that can emit an observability artifact takes the
same ``--metrics PATH`` option.  Rather than each subcommand declaring
(and slowly diverging on) its own copy, :func:`metrics_parent` builds
the one shared `argparse parent parser`_ that ``study``, ``report``,
``profile``, ``index`` and ``serve`` all include via ``parents=[...]``,
and :func:`save_run_report` is the one way a recorder becomes a
:class:`~repro.obs.report.RunReport` artifact on disk.

:data:`SUBCOMMANDS` is the single registry of subcommands — the
top-level dispatcher, its usage epilog and the tests all read it, so a
new subcommand shows up everywhere by adding one row here.

.. _argparse parent parser:
   https://docs.python.org/3/library/argparse.html#parents
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Tuple

__all__ = [
    "SUBCOMMANDS",
    "metrics_parent",
    "save_run_report",
    "subcommand_epilog",
]

#: (name, argument synopsis, one-line summary) of every subcommand, in
#: presentation order.  The dispatcher in :mod:`repro.__main__` routes
#: exactly these names; the usage epilog renders from this table.
SUBCOMMANDS: List[Tuple[str, str, str]] = [
    (
        "study",
        "OUTPUT [--scale S] [--repetitions N] [--jobs N] [--engine E]\n"
        "        [--resume] [--checkpoint DIR] [--retries N]\n"
        "        [--shard-timeout S] [--store S] [--metrics PATH]",
        "run the full study (checkpointed; resumable)",
    ),
    (
        "dataset",
        "{convert IN OUT [--format F] | info PATH [--json] | verify PATH}",
        "convert/inspect/verify dataset files (v2 JSON, v3 columnar)",
    ),
    (
        "report",
        "[EXPERIMENT ...] [--min-coverage F] [--metrics PATH]",
        "regenerate tables/figures",
    ),
    (
        "index",
        "DATASET OUTPUT [--min-coverage F] [--portfolios]\n"
        "        [--metrics PATH]",
        "compile a strategy-index artifact from a dataset",
    ),
    (
        "portfolio",
        "DATASET [--target F] [--k-max N] [--min-coverage F]\n"
        "        [--output PATH] [--metrics PATH]",
        "greedy K-vs-coverage configuration portfolios",
    ),
    (
        "search",
        "DATASET [--strategy S] [--budget N ...] [--seed N]\n"
        "        [--trials N] [--by DIM] [--min-coverage F]\n"
        "        [--metrics PATH]",
        "replay budgeted search strategies against the oracle",
    ),
    (
        "serve",
        "INDEX [--host H] [--port P] [--workers N]\n"
        "        [--max-concurrency N] [--timeout S] [--cache-size N]\n"
        "        [--cache-ttl S] [--no-predict] [--predict-window-ms MS]\n"
        "        [--predict-max-batch N] [--predict-flush-timeout S]\n"
        "        [--max-restarts N] [--restart-backoff S]\n"
        "        [--heartbeat-interval S] [--admin-port P]\n"
        "        [--admission-depth N] [--admission-predict-depth N]\n"
        "        [--latency-watermark-ms MS] [--breaker-threshold N]\n"
        "        [--breaker-reset S] [--faults DIR] [--metrics PATH]",
        "serve strategy queries over HTTP (async JSON API)",
    ),
    (
        "profile",
        "REPORT.json [--spans N] [--metrics PATH]",
        "render a study run report",
    ),
    (
        "doctor",
        "PATH [--fingerprint HEX] [--export DATASET]",
        "diagnose a dataset, checkpoint dir, or run report",
    ),
    (
        "validate",
        "",
        "oracle-check all applications",
    ),
]


def metrics_parent() -> argparse.ArgumentParser:
    """The shared ``--metrics PATH`` parent parser.

    Include it via ``argparse.ArgumentParser(parents=[metrics_parent()])``
    so every subcommand spells the option identically.  The parser is
    built fresh per call (argparse parents must not be reused across
    parsers that might mutate them).
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help=(
            "write a RunReport JSON artifact (counters, spans, "
            "histograms) to PATH; render it with "
            "`python -m repro profile PATH`"
        ),
    )
    return parent


def subcommand_epilog() -> str:
    """The ``commands:`` epilog listing every subcommand."""
    lines = ["commands:"]
    for name, synopsis, summary in SUBCOMMANDS:
        first, *rest = (synopsis or "").split("\n")
        head = f"  {name} {first}".rstrip()
        if len(head) <= 45:
            lines.append(f"{head:45s} {summary}")
        else:
            lines.append(head)
            lines.append(f"{'':45s} {summary}")
        lines.extend(f"  {cont}" for cont in rest)
    return "\n".join(lines)


def save_run_report(recorder, path: str, meta: Optional[dict] = None):
    """Persist ``recorder``'s state as a RunReport artifact at ``path``.

    Returns the saved :class:`~repro.obs.report.RunReport` so callers
    can additionally render it.
    """
    from .obs import RunReport

    report = RunReport.from_recorder(recorder, meta=meta)
    report.save(path)
    return report
