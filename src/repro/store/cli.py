"""``repro dataset``: convert, inspect and verify dataset files.

Three verbs, one per operational question:

* ``convert IN OUT`` — re-serialise a dataset between the JSON
  ``perf-dataset-v2`` family (``.json`` / ``.json.gz``, legacy v1) and
  the binary columnar ``perf-dataset-v3`` (``.v3``), either direction,
  autodetected from the output extension (``--format`` overrides);
* ``info PATH`` — header, axes and section summary without loading
  the timing column (``--json`` for machine consumption);
* ``verify PATH`` — full integrity walk: every checksum including the
  timing column, plus a load round-trip.  Exit 1 on damage.

Exit codes follow ``repro doctor``: 0 usable, 1 damaged/unusable,
2 bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..errors import DatasetError
from ..study.dataset import PerfDataset, peek_format
from .columnar import COLUMNAR_FORMAT, ColumnarDataset, inspect_columnar

__all__ = ["main"]


def _convert(args) -> int:
    fmt: Optional[str] = None if args.format == "auto" else args.format
    try:
        dataset = PerfDataset.load(args.input)
    except DatasetError as exc:
        print(f"[dataset] {exc}", file=sys.stderr)
        return 1
    try:
        dataset.save(args.output, format=fmt)
    except (DatasetError, OSError) as exc:
        print(f"[dataset] cannot write {args.output!r}: {exc}", file=sys.stderr)
        return 1
    resolved = fmt or ("v3" if args.output.endswith(".v3") else "v2")
    print(
        f"converted {args.input} ({dataset.n_measurements} measurements, "
        f"{len(dataset)} tests) -> {args.output} [{resolved}]"
    )
    return 0


def _info(args) -> int:
    fmt = peek_format(args.path)
    try:
        if fmt == COLUMNAR_FORMAT:
            info = inspect_columnar(args.path)
        else:
            dataset = PerfDataset.load(args.path)
            info = {
                "format": fmt or "perf-dataset-v1 (legacy, untagged)",
                "path": args.path,
                "tests": len(dataset),
                "cells": dataset.n_measurements,
                "apps": dataset.apps,
                "inputs": dataset.graphs,
                "chips": dataset.chips,
                "configs": len(dataset.configs),
            }
    except DatasetError as exc:
        print(f"[dataset] {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(f"format:   {info['format']}")
    print(f"tests:    {info['tests']}")
    print(f"cells:    {info['cells']}")
    if "timings" in info:
        print(f"timings:  {info['timings']}")
    print(f"apps:     {len(info['apps'])} ({', '.join(info['apps'][:6])}" + (", ..." if len(info["apps"]) > 6 else "") + ")")
    print(f"inputs:   {len(info['inputs'])} ({', '.join(info['inputs'])})")
    print(f"chips:    {len(info['chips'])} ({', '.join(info['chips'])})")
    print(f"configs:  {info['configs']}")
    if "sections" in info:
        print(f"file:     {info['file_bytes']} bytes")
        for name, sec in info["sections"].items():
            print(f"  section {name:8s} offset={sec['offset']:<10d} {sec['bytes']} bytes")
    return 0


def _verify(args) -> int:
    try:
        dataset = PerfDataset.load(args.path)
        if isinstance(dataset, ColumnarDataset):
            dataset.verify()
    except DatasetError as exc:
        print(f"[dataset] FAIL: {exc}", file=sys.stderr)
        return 1
    fmt = peek_format(args.path) or "perf-dataset-v1 (legacy, untagged)"
    print(
        f"[dataset] OK: {args.path} [{fmt}] — {dataset.n_measurements} "
        f"measurements across {len(dataset)} tests, all checksums verified"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro dataset",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="verb")

    convert = sub.add_parser(
        "convert", help="re-serialise a dataset (v2 JSON <-> v3 columnar)"
    )
    convert.add_argument("input", help="source dataset (.json/.json.gz/.v3)")
    convert.add_argument("output", help="destination dataset")
    convert.add_argument(
        "--format",
        choices=("auto", "v2", "v3"),
        default="auto",
        help="output format (default: auto — v3 when OUTPUT ends in .v3)",
    )

    info = sub.add_parser(
        "info", help="header/axes/section summary (no timing load)"
    )
    info.add_argument("path")
    info.add_argument("--json", action="store_true", help="machine-readable")

    verify = sub.add_parser(
        "verify", help="full checksum walk, timing column included"
    )
    verify.add_argument("path")

    args = parser.parse_args(argv)
    if args.verb == "convert":
        return _convert(args)
    if args.verb == "info":
        return _info(args)
    if args.verb == "verify":
        return _verify(args)
    parser.print_help(sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
