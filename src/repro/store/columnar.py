"""The ``perf-dataset-v3`` columnar on-disk format.

Layout of a ``.v3`` file (all integers little-endian)::

    header (308 bytes)
      0   magic            8s   b"RPDCOL3\\0"
      8   version          u16  1
      10  flags            u16  reserved (0)
      12  n_tests          u64
      20  n_cells          u64
      28  n_times          u64
      36  5 × section descriptor (offset u64, length u64, sha256 32B)
          in order: strings, tests, cells, offsets, times
      276 sha256 of bytes [0:276]

    strings   four interned tables (apps, inputs, chips, config keys),
              each  u32 count  then per entry  u32 length + UTF-8 bytes
    tests     n_tests × (app u32, input u32, chip u32)
    cells     n_cells × (test u32, config u32)
    offsets   (n_cells + 1) × u64 — cell *i*'s repeated timings are
              ``times[offsets[i]:offsets[i+1]]``
    times     n_times × f64 — every timing, exact

Sections start 8-byte aligned and each carries its own SHA-256.
:meth:`ColumnarDataset.load` verifies the header and every section
*except* ``times`` — the timing column is by far the largest and stays
unread in the mapped file until a cell is queried, which is what makes
the load effectively free; :meth:`ColumnarDataset.verify` (and ``repro
dataset verify``) hashes everything.

Cells appear in insertion order and the string tables in first-use
order, so converting a :class:`~repro.study.dataset.PerfDataset` to v3
and back preserves iteration order exactly — the golden tables render
byte-identically from either backend.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import struct
import sys
from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..compiler.options import OptConfig
from ..errors import DatasetError, InvalidConfigError
from ..study.dataset import PerfDataset, TestCase
from ..util import atomic_write_bytes

__all__ = [
    "COLUMNAR_FORMAT",
    "COLUMNAR_MAGIC",
    "HEADER_SIZE",
    "ColumnWriter",
    "ColumnarDataset",
    "columnar_from_dataset",
    "inspect_columnar",
    "salvage_columnar",
    "write_columnar",
]

#: Format tag reported by ``peek_format`` / ``repro dataset info``.
COLUMNAR_FORMAT = "perf-dataset-v3"

#: First eight bytes of every ``perf-dataset-v3`` file.
COLUMNAR_MAGIC = b"RPDCOL3\x00"

_VERSION = 1
_COUNTS_FMT = "<8sHHQQQ"  # magic, version, flags, n_tests, n_cells, n_times
_COUNTS_SIZE = struct.calcsize(_COUNTS_FMT)
_SECTION_FMT = "<QQ32s"  # offset, length, sha256
_SECTION_SIZE = struct.calcsize(_SECTION_FMT)
_SECTIONS = ("strings", "tests", "cells", "offsets", "times")
_HEADER_BODY = _COUNTS_SIZE + len(_SECTIONS) * _SECTION_SIZE

#: Total header size, including its trailing SHA-256.
HEADER_SIZE = _HEADER_BODY + 32

_TEST_ROW = 3 * 4  # bytes per tests-section row
_CELL_ROW = 2 * 4  # bytes per cells-section row


def _le(arr: array) -> array:
    """The array with little-endian byte order (on-disk order)."""
    if sys.byteorder == "big":  # pragma: no cover - LE hosts everywhere
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr


def _array_from_le(typecode: str, data) -> array:
    """A native array decoded from little-endian bytes."""
    arr = array(typecode)
    arr.frombytes(bytes(data))
    if sys.byteorder == "big":  # pragma: no cover - LE hosts everywhere
        arr.byteswap()
    return arr


def _config_from_key(key: str) -> OptConfig:
    """Rebuild an :class:`OptConfig` from its stable dataset key."""
    if key == "baseline":
        return OptConfig()
    return OptConfig.from_names(key.split("+"))


def _corrupt(path: str, reason: str) -> DatasetError:
    return DatasetError(f"corrupt dataset {path!r}: {reason}")


# -- writing -----------------------------------------------------------------


class ColumnWriter:
    """Append-only builder of a ``perf-dataset-v3`` payload.

    Cells are appended one at a time (:meth:`add`) or a whole chunk at
    once (:meth:`append_chunk`, segment concatenation — the parallel
    study runner's merge path).  :meth:`commit` writes the file
    atomically (temp + rename), so an interrupted commit leaves the
    previous complete file in place.

    Re-adding a cell with identical timings is a no-op; differing
    timings raise :class:`~repro.errors.DatasetError`, mirroring
    :meth:`PerfDataset.update`'s shard-conflict check.
    """

    def __init__(self) -> None:
        self._apps: Dict[str, int] = {}
        self._graphs: Dict[str, int] = {}
        self._chips: Dict[str, int] = {}
        self._config_keys: Dict[str, int] = {}
        self._tests: Dict[Tuple[int, int, int], int] = {}
        self._cells = array("I")  # flat (test_idx, cfg_idx) pairs
        self._cell_index: Dict[Tuple[int, int], int] = {}
        self._offsets = array("Q", [0])
        self._times = array("d")

    @property
    def n_cells(self) -> int:
        return len(self._cell_index)

    @property
    def n_times(self) -> int:
        return len(self._times)

    @staticmethod
    def _intern(table: Dict[str, int], value: str) -> int:
        idx = table.get(value)
        if idx is None:
            idx = len(table)
            table[value] = idx
        return idx

    def _intern_test(self, app: str, graph: str, chip: str) -> int:
        row = (
            self._intern(self._apps, app),
            self._intern(self._graphs, graph),
            self._intern(self._chips, chip),
        )
        idx = self._tests.get(row)
        if idx is None:
            idx = len(self._tests)
            self._tests[row] = idx
        return idx

    def add(
        self,
        test: TestCase,
        config: Union[OptConfig, str],
        times: Sequence[float],
    ) -> None:
        """Append one cell's repeated timings."""
        if not times:
            raise DatasetError(f"no timings provided for {test}")
        key = config.key() if isinstance(config, OptConfig) else str(config)
        t_idx = self._intern_test(test.app, test.graph, test.chip)
        c_idx = self._intern(self._config_keys, key)
        vals = [float(t) for t in times]
        seen = self._cell_index.get((t_idx, c_idx))
        if seen is not None:
            lo, hi = self._offsets[seen], self._offsets[seen + 1]
            if self._times[lo:hi].tolist() != vals:
                raise DatasetError(
                    f"conflicting timings for test {test} under config "
                    f"{key!r}: {tuple(self._times[lo:hi])} vs {tuple(vals)}"
                )
            return
        self._cell_index[(t_idx, c_idx)] = len(self._offsets) - 1
        self._cells.append(t_idx)
        self._cells.append(c_idx)
        self._times.extend(vals)
        self._offsets.append(len(self._times))

    def append_chunk(self, chunk: "ColumnarDataset") -> None:
        """Concatenate a whole chunk's columns onto this writer.

        The chunk's timing column is appended as raw bytes (one
        ``frombytes``, no per-cell materialisation); only the small
        index columns are remapped through this writer's interned
        tables.  A chunk sharing cells with already-written data falls
        back to the per-cell :meth:`add` path so the duplicate check
        still applies.
        """
        tabs = chunk.string_tables()
        app_map = [self._intern(self._apps, a) for a in tabs["apps"]]
        graph_map = [self._intern(self._graphs, g) for g in tabs["inputs"]]
        chip_map = [self._intern(self._chips, c) for c in tabs["chips"]]
        cfg_map = [
            self._intern(self._config_keys, k) for k in tabs["configs"]
        ]
        rows = chunk._test_rows
        test_map = []
        for i in range(len(rows)):
            a, g, c = (int(rows[i, 0]), int(rows[i, 1]), int(rows[i, 2]))
            test_map.append(
                self._intern_test_row(app_map[a], graph_map[g], chip_map[c])
            )
        cells = chunk._cell_rows
        if any(
            (test_map[int(cells[i, 0])], cfg_map[int(cells[i, 1])])
            in self._cell_index
            for i in range(len(cells))
        ):
            for test, key, times in chunk.iter_cells():
                self.add(test, key, times)
            return
        base = len(self._times)
        self._times.frombytes(bytes(chunk._times_raw()))
        if sys.byteorder == "big":  # pragma: no cover - LE hosts everywhere
            swapped = self._times[base:]
            swapped.byteswap()
            self._times[base:] = swapped
        offs = chunk._offset_column
        for i in range(len(cells)):
            t_idx = test_map[int(cells[i, 0])]
            c_idx = cfg_map[int(cells[i, 1])]
            self._cell_index[(t_idx, c_idx)] = len(self._offsets) - 1
            self._cells.append(t_idx)
            self._cells.append(c_idx)
            self._offsets.append(base + int(offs[i + 1]))

    def _intern_test_row(self, a: int, g: int, c: int) -> int:
        idx = self._tests.get((a, g, c))
        if idx is None:
            idx = len(self._tests)
            self._tests[(a, g, c)] = idx
        return idx

    # -- serialisation ---------------------------------------------------

    @staticmethod
    def _encode_strings(tables: List[Dict[str, int]]) -> bytes:
        out = bytearray()
        for table in tables:
            out += struct.pack("<I", len(table))
            for value in table:  # insertion (first-use) order
                raw = value.encode("utf-8")
                out += struct.pack("<I", len(raw))
                out += raw
        return bytes(out)

    def payload(self) -> bytes:
        """The complete checksummed ``perf-dataset-v3`` byte string."""
        tests_col = array("I")
        for row in self._tests:
            tests_col.extend(row)
        sections = [
            self._encode_strings(
                [self._apps, self._graphs, self._chips, self._config_keys]
            ),
            _le(tests_col).tobytes(),
            _le(self._cells).tobytes(),
            _le(self._offsets).tobytes(),
            _le(self._times).tobytes(),
        ]
        out = bytearray(HEADER_SIZE)
        descriptors = []
        for data in sections:
            out += b"\x00" * (-len(out) % 8)
            descriptors.append(
                (len(out), len(data), hashlib.sha256(data).digest())
            )
            out += data
        struct.pack_into(
            _COUNTS_FMT,
            out,
            0,
            COLUMNAR_MAGIC,
            _VERSION,
            0,
            len(self._tests),
            len(self._cell_index),
            len(self._times),
        )
        pos = _COUNTS_SIZE
        for offset, length, digest in descriptors:
            struct.pack_into(_SECTION_FMT, out, pos, offset, length, digest)
            pos += _SECTION_SIZE
        out[_HEADER_BODY:HEADER_SIZE] = hashlib.sha256(
            out[:_HEADER_BODY]
        ).digest()
        return bytes(out)

    def commit(self, path: str, faults=None) -> None:
        """Atomically write the payload to ``path`` (temp + rename).

        ``faults`` (a :class:`repro.faults.FaultPlan`, testing only)
        truncates the payload when a ``corrupt`` fault is armed for
        this file's basename, simulating a disk failure past the
        atomicity guarantee.
        """
        data = self.payload()
        if faults is not None and faults.fire(
            "corrupt", os.path.basename(path)
        ):
            data = data[: max(1, len(data) // 2)]  # simulated disk failure
        atomic_write_bytes(path, data)


def write_columnar(dataset: PerfDataset, path: str, faults=None) -> None:
    """Convert any :class:`PerfDataset` to a ``.v3`` file on disk."""
    writer = ColumnWriter()
    for test, key, times in dataset.iter_cells():
        writer.add(test, key, times)
    writer.commit(path, faults=faults)


def columnar_from_dataset(dataset: PerfDataset) -> "ColumnarDataset":
    """An in-memory columnar copy of ``dataset`` (no file involved)."""
    writer = ColumnWriter()
    for test, key, times in dataset.iter_cells():
        writer.add(test, key, times)
    return ColumnarDataset.from_payload(writer.payload())


# -- parsing -----------------------------------------------------------------


class _Parsed:
    """The decoded skeleton of a v3 buffer (no timing materialised)."""

    __slots__ = (
        "n_tests",
        "n_cells",
        "n_times",
        "sections",
        "apps",
        "graphs",
        "chips",
        "config_keys",
        "test_rows",
        "cell_rows",
        "offsets",
        "times",
    )


def _section_digest(buf, span) -> bytes:
    offset, length, _ = span
    return hashlib.sha256(bytes(buf[offset : offset + length])).digest()


def _check_section(buf, path: str, name: str, span) -> None:
    if _section_digest(buf, span) != span[2]:
        raise _corrupt(
            path,
            f"{name} section checksum mismatch (the file was modified "
            f"or partially written)",
        )


def _parse_counts(buf, path: str):
    if len(buf) < HEADER_SIZE:
        raise _corrupt(
            path,
            f"truncated header ({len(buf)} bytes, need {HEADER_SIZE})",
        )
    magic, version, _flags, n_tests, n_cells, n_times = struct.unpack_from(
        _COUNTS_FMT, buf, 0
    )
    if magic != COLUMNAR_MAGIC:
        raise _corrupt(
            path, f"bad magic {magic!r} — not a {COLUMNAR_FORMAT} file"
        )
    if version != _VERSION:
        raise _corrupt(
            path, f"unsupported {COLUMNAR_FORMAT} version {version}"
        )
    return n_tests, n_cells, n_times


def _parse_sections(buf, path: str) -> Dict[str, Tuple[int, int, bytes]]:
    sections = {}
    pos = _COUNTS_SIZE
    for name in _SECTIONS:
        offset, length, digest = struct.unpack_from(_SECTION_FMT, buf, pos)
        pos += _SECTION_SIZE
        if offset < HEADER_SIZE or offset + length > len(buf):
            raise _corrupt(
                path,
                f"{name} section [{offset}:{offset + length}] exceeds the "
                f"{len(buf)}-byte file (truncated or rewritten)",
            )
        sections[name] = (offset, length, digest)
    return sections


def _decode_strings(buf, path: str, span) -> List[List[str]]:
    offset, length, _ = span
    end = offset + length
    pos = offset
    tables: List[List[str]] = []
    for _ in range(4):
        if pos + 4 > end:
            raise _corrupt(path, "truncated string table")
        (count,) = struct.unpack_from("<I", buf, pos)
        pos += 4
        entries: List[str] = []
        for _ in range(count):
            if pos + 4 > end:
                raise _corrupt(path, "truncated string table")
            (n,) = struct.unpack_from("<I", buf, pos)
            pos += 4
            if pos + n > end:
                raise _corrupt(path, "truncated string table entry")
            try:
                entries.append(bytes(buf[pos : pos + n]).decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise _corrupt(
                    path, f"undecodable string table entry ({exc})"
                ) from exc
            pos += n
        tables.append(entries)
    return tables


def _parse(buf, path: str, *, verify_times: bool = False) -> _Parsed:
    """Decode and validate a v3 buffer (header, tables, index columns).

    The ``times`` column is bounds- and length-checked but its checksum
    is only verified with ``verify_times=True`` — the lazy default is
    what keeps :meth:`ColumnarDataset.load` independent of grid size.
    """
    n_tests, n_cells, n_times = _parse_counts(buf, path)
    if hashlib.sha256(bytes(buf[:_HEADER_BODY])).digest() != bytes(
        buf[_HEADER_BODY:HEADER_SIZE]
    ):
        raise _corrupt(
            path,
            "header checksum mismatch (the file was modified or "
            "partially written)",
        )
    sections = _parse_sections(buf, path)
    for name in ("strings", "tests", "cells", "offsets"):
        _check_section(buf, path, name, sections[name])
    if verify_times:
        _check_section(buf, path, "times", sections["times"])

    p = _Parsed()
    p.n_tests, p.n_cells, p.n_times = n_tests, n_cells, n_times
    p.sections = sections
    p.apps, p.graphs, p.chips, p.config_keys = _decode_strings(
        buf, path, sections["strings"]
    )

    offset, length, _ = sections["tests"]
    if length != n_tests * _TEST_ROW:
        raise _corrupt(
            path, f"tests section holds {length} bytes for {n_tests} tests"
        )
    p.test_rows = np.frombuffer(
        buf, dtype="<u4", count=n_tests * 3, offset=offset
    ).reshape(n_tests, 3)
    if n_tests and (
        int(p.test_rows[:, 0].max()) >= len(p.apps)
        or int(p.test_rows[:, 1].max()) >= len(p.graphs)
        or int(p.test_rows[:, 2].max()) >= len(p.chips)
    ):
        raise _corrupt(path, "test row references a missing string entry")

    offset, length, _ = sections["cells"]
    if length != n_cells * _CELL_ROW:
        raise _corrupt(
            path, f"cells section holds {length} bytes for {n_cells} cells"
        )
    p.cell_rows = np.frombuffer(
        buf, dtype="<u4", count=n_cells * 2, offset=offset
    ).reshape(n_cells, 2)
    if n_cells and (
        int(p.cell_rows[:, 0].max()) >= n_tests
        or int(p.cell_rows[:, 1].max()) >= len(p.config_keys)
    ):
        raise _corrupt(path, "cell references a missing test or config")

    offset, length, _ = sections["offsets"]
    if length != (n_cells + 1) * 8:
        raise _corrupt(
            path,
            f"offsets section holds {length} bytes for {n_cells} cells",
        )
    p.offsets = np.frombuffer(buf, dtype="<u8", count=n_cells + 1, offset=offset)
    if (
        int(p.offsets[0]) != 0
        or int(p.offsets[-1]) != n_times
        or (n_cells and bool(np.any(np.diff(p.offsets.astype(np.int64)) < 0)))
    ):
        raise _corrupt(path, "repetition offsets are not a monotone span")

    offset, length, _ = sections["times"]
    if length != n_times * 8:
        raise _corrupt(
            path,
            f"times section holds {length} bytes for {n_times} timings",
        )
    p.times = np.frombuffer(buf, dtype="<f8", count=n_times, offset=offset)
    return p


# -- reading -----------------------------------------------------------------


class _SegmentTable:
    """A read-only mapping view over the columnar timing segments.

    Stands in for ``PerfDataset._times``: keys are ``(TestCase,
    config_key)`` pairs, values are tuples materialised on demand from
    the mapped timing column.  A bounded memo keeps hot cells cheap
    without ever pinning the whole grid in memory.
    """

    _MEMO_CAP = 1 << 16

    def __init__(
        self,
        tests: List[TestCase],
        config_keys: List[str],
        cell_rows,
        offsets,
        times,
    ) -> None:
        self._test_list = tests
        self._config_keys = config_keys
        self._cell_rows = cell_rows
        self._offsets = offsets
        self._times = times
        self._index: Optional[Dict[Tuple[TestCase, str], int]] = None
        self._memo: Dict[Tuple[TestCase, str], Tuple[float, ...]] = {}

    def _ensure_index(self) -> Dict[Tuple[TestCase, str], int]:
        if self._index is None:
            index: Dict[Tuple[TestCase, str], int] = {}
            tests, keys, rows = self._test_list, self._config_keys, self._cell_rows
            for i in range(len(rows)):
                index[(tests[int(rows[i, 0])], keys[int(rows[i, 1])])] = i
            if len(index) != len(rows):
                raise DatasetError(
                    "corrupt dataset: duplicate (test, config) cells"
                )
            self._index = index
        return self._index

    def _segment(self, ordinal: int) -> Tuple[float, ...]:
        lo = int(self._offsets[ordinal])
        hi = int(self._offsets[ordinal + 1])
        return tuple(self._times[lo:hi].tolist())

    def __getitem__(self, key) -> Tuple[float, ...]:
        got = self._memo.get(key)
        if got is None:
            ordinal = self._ensure_index()[key]
            got = self._segment(ordinal)
            if len(self._memo) >= self._MEMO_CAP:
                self._memo.clear()
            self._memo[key] = got
        return got

    def get(self, key, default=None):
        if key not in self._ensure_index():
            return default
        return self[key]

    def __contains__(self, key) -> bool:
        return key in self._ensure_index()

    def __iter__(self):
        return iter(self._ensure_index())

    def keys(self):
        return self._ensure_index().keys()

    def items(self):
        for key, ordinal in self._ensure_index().items():
            yield key, self._segment(ordinal)

    def values(self):
        for ordinal in self._ensure_index().values():
            yield self._segment(ordinal)

    def __len__(self) -> int:
        return len(self._cell_rows)

    @staticmethod
    def _segments_equal(a, b) -> bool:
        # Exact float equality, except NaN compares equal to NaN: a
        # dict-backed dataset's NaN cells survive comparison via
        # CPython's identity shortcut, which freshly materialised
        # tuples cannot rely on.
        return len(a) == len(b) and all(
            x == y or (x != x and y != y) for x, y in zip(a, b)
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, (dict, _SegmentTable)):
            if len(other) != len(self):
                return False
            index = self._ensure_index()
            try:
                return all(
                    self._segments_equal(other[key], self._segment(ordinal))
                    for key, ordinal in index.items()
                )
            except KeyError:
                return False
        return NotImplemented

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    __hash__ = None  # mutable-mapping semantics: unhashable


class ColumnarDataset(PerfDataset):
    """A read-only :class:`PerfDataset` backed by a v3 columnar buffer.

    Every protocol query (``times`` / ``times_or_none`` / ``coverage``
    / ``best_config`` / ``subset`` / …) works unchanged; timings live
    in the mapped file and are materialised per cell on first access.
    Mutation (:meth:`add` / :meth:`update`) raises — convert with
    :func:`columnar_from_dataset` round-tripped through a
    :class:`ColumnWriter` to build new data.
    """

    def __init__(self) -> None:  # pragma: no cover - guard rail
        raise TypeError(
            "ColumnarDataset is built via load()/from_payload(), "
            "not constructed empty"
        )

    # -- construction ----------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "ColumnarDataset":
        """Memory-map and validate a ``.v3`` file.

        Raises :class:`~repro.errors.DatasetError` on truncation, a
        checksum mismatch in the header or index columns, or any
        structural damage.  The timing column itself is validated
        lazily — run :meth:`verify` (or ``repro dataset verify``) for
        a full integrity walk.
        """
        try:
            with open(path, "rb") as f:
                try:
                    buf = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
                except (ValueError, OSError):  # empty file / no mmap
                    buf = f.read()
        except OSError as exc:
            raise DatasetError(
                f"cannot read dataset {path!r}: {exc}"
            ) from exc
        return cls._build(buf, path)

    @classmethod
    def from_payload(
        cls, data: bytes, path: str = "<memory>"
    ) -> "ColumnarDataset":
        """Build from an in-memory payload (e.g. a fresh writer's)."""
        return cls._build(bytes(data), path)

    @classmethod
    def _build(cls, buf, path: str) -> "ColumnarDataset":
        try:
            parsed = _parse(buf, path)
            test_list = [
                TestCase(
                    parsed.apps[int(parsed.test_rows[i, 0])],
                    parsed.graphs[int(parsed.test_rows[i, 1])],
                    parsed.chips[int(parsed.test_rows[i, 2])],
                )
                for i in range(parsed.n_tests)
            ]
            tests: Dict[TestCase, None] = {t: None for t in test_list}
            if len(tests) != parsed.n_tests:
                raise _corrupt(path, "duplicate test rows")
            configs: Dict[str, OptConfig] = {}
            for key in parsed.config_keys:
                try:
                    configs[key] = _config_from_key(key)
                except (InvalidConfigError, ValueError) as exc:
                    raise _corrupt(
                        path, f"invalid config key {key!r} ({exc})"
                    ) from exc
            if len(configs) != len(parsed.config_keys):
                raise _corrupt(path, "duplicate config keys")
        except DatasetError:
            if isinstance(buf, mmap.mmap):
                buf.close()
            raise
        self = object.__new__(cls)
        self._path = path
        self._buf = buf
        self._parsed = parsed
        self._test_list = test_list
        self._test_rows = parsed.test_rows
        self._cell_rows = parsed.cell_rows
        self._offset_column = parsed.offsets
        self._time_column = parsed.times
        self._tests = tests
        self._configs = configs
        self._table = _SegmentTable(
            test_list,
            parsed.config_keys,
            parsed.cell_rows,
            parsed.offsets,
            parsed.times,
        )
        return self

    # -- storage protocol -------------------------------------------------

    @property
    def _times(self) -> _SegmentTable:
        return self._table

    @property
    def n_measurements(self) -> int:
        return len(self._cell_rows)

    def add(self, test, config, times) -> None:
        raise DatasetError(
            f"columnar dataset {self._path!r} is read-only; build new "
            f"data with a ColumnWriter and reload"
        )

    def update(self, other) -> None:
        raise DatasetError(
            f"columnar dataset {self._path!r} is read-only; merge into "
            f"a fresh PerfDataset or ColumnWriter instead"
        )

    def iter_cells(
        self,
    ) -> Iterator[Tuple[TestCase, str, Tuple[float, ...]]]:
        """Stream ``(test, config_key, times)`` in insertion order.

        Unlike dict-backed iteration this never touches the lazy memo:
        each segment tuple is yielded and dropped, so full-grid
        consumers (audit, conversion, strategy derivation) run in
        constant memory over the mapped column.
        """
        tests, keys = self._test_list, self._parsed.config_keys
        rows, offs, col = self._cell_rows, self._offset_column, self._time_column
        for i in range(len(rows)):
            lo, hi = int(offs[i]), int(offs[i + 1])
            yield (
                tests[int(rows[i, 0])],
                keys[int(rows[i, 1])],
                tuple(col[lo:hi].tolist()),
            )

    def iter_measurements(self):
        for test, key, times in self.iter_cells():
            yield test, self._configs[key], times

    # -- introspection ----------------------------------------------------

    def string_tables(self) -> Dict[str, List[str]]:
        """The four interned axis tables, in on-disk (first-use) order."""
        return {
            "apps": list(self._parsed.apps),
            "inputs": list(self._parsed.graphs),
            "chips": list(self._parsed.chips),
            "configs": list(self._parsed.config_keys),
        }

    def _times_raw(self):
        """The raw little-endian bytes of the times column."""
        offset, length, _ = self._parsed.sections["times"]
        return memoryview(self._buf)[offset : offset + length]

    def verify(self) -> None:
        """Full integrity walk: every section checksum, times included.

        Raises :class:`~repro.errors.DatasetError` naming the damaged
        section.  This reads the whole file (unlike :meth:`load`).
        """
        for name in _SECTIONS:
            _check_section(
                self._buf, self._path, name, self._parsed.sections[name]
            )

    def close(self) -> None:
        """Release the underlying mmap (the dataset is unusable after)."""
        if isinstance(self._buf, mmap.mmap):
            # The index columns are zero-copy views into the mmap; drop
            # them first or the close would fail with exported pointers.
            self._test_rows = self._cell_rows = None
            self._offset_column = self._time_column = None
            self._table = None
            try:
                self._buf.close()
            except BufferError:  # view still held by a caller; GC closes
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ColumnarDataset({self._path!r}, tests={len(self._tests)}, "
            f"configs={len(self._configs)}, "
            f"measurements={len(self._cell_rows)})"
        )


# -- tooling -----------------------------------------------------------------


def inspect_columnar(path: str) -> Dict:
    """Header/axis/section summary of a ``.v3`` file (``dataset info``).

    Validates the header and index columns (raising
    :class:`~repro.errors.DatasetError` on damage) but does not hash
    the timing column — use :meth:`ColumnarDataset.verify` for that.
    """
    with open(path, "rb") as f:
        buf = f.read()
    parsed = _parse(buf, path)
    return {
        "format": COLUMNAR_FORMAT,
        "path": path,
        "file_bytes": len(buf),
        "tests": parsed.n_tests,
        "cells": parsed.n_cells,
        "timings": parsed.n_times,
        "apps": list(parsed.apps),
        "inputs": list(parsed.graphs),
        "chips": list(parsed.chips),
        "configs": len(parsed.config_keys),
        "sections": {
            name: {
                "offset": parsed.sections[name][0],
                "bytes": parsed.sections[name][1],
            }
            for name in _SECTIONS
        },
    }


def salvage_columnar(path: str):
    """Best-effort recovery of intact cells from a damaged ``.v3`` file.

    Ignores checksums entirely and walks the columns structurally,
    keeping every cell whose test/config references and timing segment
    fall inside the readable file.  Returns ``(dataset, salvaged,
    declared, notes)`` — a plain :class:`PerfDataset` of the salvaged
    cells, how many of the header's declared cells survived, and notes
    describing where the walk stopped.  Raises
    :class:`~repro.errors.DatasetError` when nothing is salvageable
    (bad magic, unreadable string tables).
    """
    try:
        with open(path, "rb") as f:
            buf = f.read()
    except OSError as exc:
        raise DatasetError(f"cannot read dataset {path!r}: {exc}") from exc
    if len(buf) < _HEADER_BODY:
        raise _corrupt(path, "truncated before the section table")
    magic, version, _flags, n_tests, n_cells, n_times = struct.unpack_from(
        _COUNTS_FMT, buf, 0
    )
    if magic != COLUMNAR_MAGIC:
        raise _corrupt(
            path, f"bad magic {magic!r} — not a {COLUMNAR_FORMAT} file"
        )
    sections = {}
    pos = _COUNTS_SIZE
    for name in _SECTIONS:
        offset, length, digest = struct.unpack_from(_SECTION_FMT, buf, pos)
        pos += _SECTION_SIZE
        sections[name] = (offset, min(length, max(0, len(buf) - offset)), digest)

    apps, graphs, chips, config_keys = _decode_strings(
        buf, path, sections["strings"]
    )
    notes: List[str] = []

    def _column(name: str, dtype: str, rowbytes: int, count: int):
        offset, avail, _ = sections[name]
        usable = min(count, avail // rowbytes)
        if usable < count:
            notes.append(
                f"{name} column truncated: {usable}/{count} rows readable"
            )
        return (
            np.frombuffer(
                buf,
                dtype=dtype,
                count=usable * (rowbytes // int(dtype[-1])),
                offset=min(offset, len(buf)),
            ),
            usable,
        )

    test_col, avail_tests = _column("tests", "<u4", _TEST_ROW, n_tests)
    test_col = test_col.reshape(avail_tests, 3)
    cell_col, avail_cells = _column("cells", "<u4", _CELL_ROW, n_cells)
    cell_col = cell_col.reshape(avail_cells, 2)
    off_col, avail_offsets = _column("offsets", "<u8", 8, n_cells + 1)
    time_col, avail_times = _column("times", "<f8", 8, n_times)

    configs: Dict[str, OptConfig] = {}
    ds = PerfDataset()
    salvaged = 0
    limit = min(avail_cells, max(0, avail_offsets - 1))
    for i in range(limit):
        t_idx, c_idx = int(cell_col[i, 0]), int(cell_col[i, 1])
        if t_idx >= avail_tests or c_idx >= len(config_keys):
            notes.append(
                f"stopping at cell {i}: reference to unreadable test/config"
            )
            break
        lo, hi = int(off_col[i]), int(off_col[i + 1])
        if not 0 <= lo <= hi <= avail_times:
            notes.append(
                f"stopping at cell {i}: timing segment [{lo}:{hi}] is "
                f"outside the readable column ({avail_times} timings)"
            )
            break
        key = config_keys[c_idx]
        config = configs.get(key)
        if config is None:
            try:
                config = _config_from_key(key)
            except (InvalidConfigError, ValueError):
                notes.append(f"skipping cell {i}: invalid config key {key!r}")
                continue
            configs[key] = config
        vals = time_col[lo:hi].tolist()
        if not vals:
            continue
        test = TestCase(
            apps[int(test_col[t_idx, 0])],
            graphs[int(test_col[t_idx, 1])],
            chips[int(test_col[t_idx, 2])],
        )
        # Direct insertion: salvage must keep degraded cells (NaN,
        # non-positive) for the audit to quarantine, which add() rejects.
        ds._times[(test, key)] = tuple(vals)
        ds._configs.setdefault(key, config)
        ds._tests.setdefault(test, None)
        salvaged += 1
    else:
        if limit < n_cells:
            notes.append(
                f"stopping at cell {limit}: remaining cells are past the "
                f"readable columns"
            )
    return ds, salvaged, n_cells, notes
