"""Write-once compiled-trace cache shared through the checkpoint dir.

A parallel study (``--jobs N``) used to ship the full collected-trace
dictionary to every worker through the pool initializer — re-pickled
per worker *per pool build*, so a sweep that rebuilt its pool after a
crash paid the serialisation again each time.  Instead the parent now
writes the traces once to ``traces-<fingerprint>.bin`` inside the
checkpoint directory and workers load them from disk:

* the file is keyed by :func:`~repro.study.checkpoint.study_fingerprint`,
  so a resumed run (same fingerprint) reuses it and a different study
  never can;
* it is *write-once*: a valid existing file is left alone, so
  concurrent pool rebuilds and resumed runs share one copy;
* the payload carries a SHA-256 — a worker finding a damaged cache
  raises, and the runner's ordinary pool-rebuild / in-process fallback
  machinery recovers (the parent always keeps its own traces).

Workers count ``study.traces.shared`` when they load from the cache
and ``study.traces.rebuilt`` when the traces had to be pickled to them
directly (no checkpoint directory), so a run report shows which path
a sweep took.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import Dict, Optional

from ..errors import DatasetError
from ..util import atomic_write_bytes

__all__ = ["load_trace_cache", "save_trace_cache", "trace_cache_path"]

#: First eight bytes of every trace-cache file.
TRACE_CACHE_MAGIC = b"RPTRC1\x00\x00"


def trace_cache_path(directory: str, fingerprint: str) -> str:
    """Where the trace cache for ``fingerprint`` lives in ``directory``."""
    return os.path.join(directory, f"traces-{fingerprint}.bin")


def save_trace_cache(path: str, fingerprint: str, traces: Dict) -> bool:
    """Write the cache unless a valid one already exists (write-once).

    Returns ``True`` when the file was (re)written, ``False`` when an
    existing valid cache for the same fingerprint was kept.
    """
    if os.path.exists(path):
        try:
            load_trace_cache(path, fingerprint)
            return False
        except DatasetError:
            pass  # damaged or stale: rewrite below
    payload = pickle.dumps(
        {"fingerprint": fingerprint, "traces": traces},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    atomic_write_bytes(
        path,
        TRACE_CACHE_MAGIC + hashlib.sha256(payload).digest() + payload,
    )
    return True


def load_trace_cache(path: str, fingerprint: Optional[str] = None) -> Dict:
    """Load and verify a trace cache; return the traces dict.

    Raises :class:`~repro.errors.DatasetError` on a missing file, bad
    magic, checksum mismatch, undecodable payload, or (when given) a
    fingerprint that does not match — a worker must price against
    exactly the parent's traces or not at all.
    """
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError as exc:
        raise DatasetError(
            f"cannot read trace cache {path!r}: {exc}"
        ) from exc
    if len(data) < len(TRACE_CACHE_MAGIC) + 32 or not data.startswith(
        TRACE_CACHE_MAGIC
    ):
        raise DatasetError(
            f"corrupt trace cache {path!r}: bad magic or truncated header"
        )
    digest = data[len(TRACE_CACHE_MAGIC) : len(TRACE_CACHE_MAGIC) + 32]
    payload = data[len(TRACE_CACHE_MAGIC) + 32 :]
    if hashlib.sha256(payload).digest() != digest:
        raise DatasetError(
            f"corrupt trace cache {path!r}: checksum mismatch (the file "
            f"was modified or partially written)"
        )
    try:
        record = pickle.loads(payload)
        traces = record["traces"]
        cached_fp = record["fingerprint"]
    except Exception as exc:  # pickle raises almost anything on garbage
        raise DatasetError(
            f"corrupt trace cache {path!r}: undecodable payload ({exc})"
        ) from exc
    if fingerprint is not None and cached_fp != fingerprint:
        raise DatasetError(
            f"stale trace cache {path!r}: fingerprint {cached_fp!r} does "
            f"not match this study's {fingerprint!r}"
        )
    return traces
