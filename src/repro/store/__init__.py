"""Columnar measurement store: the ``perf-dataset-v3`` binary format.

The JSON ``perf-dataset-v2`` format must be fully parsed and
materialised as Python dicts before any analysis can start; at the
paper's full grid (17 apps × 3 inputs × 6 chips × 96 configurations)
and beyond, that parse dominates every consumer's start-up.  This
package stores the same measurements in a checksummed binary columnar
layout built from stdlib ``struct``/``array``/``mmap``:

* :class:`~repro.store.columnar.ColumnarDataset` mmaps a ``.v3`` file
  read-only and serves the full :class:`~repro.study.dataset.PerfDataset`
  protocol — timings stay in the mapped file until a cell is queried;
* :class:`~repro.store.columnar.ColumnWriter` appends cells (or whole
  chunks, by segment concatenation) and commits atomically;
* :mod:`~repro.store.tracecache` shares compiled traces across study
  workers through the checkpoint directory instead of re-pickling them
  per worker pool;
* :mod:`~repro.store.cli` is the ``repro dataset`` subcommand
  (``convert`` / ``info`` / ``verify``).

See ``docs/dataset.md`` for the on-disk layout and conversion
workflow.
"""

from .columnar import (
    COLUMNAR_FORMAT,
    COLUMNAR_MAGIC,
    ColumnarDataset,
    ColumnWriter,
    columnar_from_dataset,
    inspect_columnar,
    salvage_columnar,
    write_columnar,
)
from .tracecache import load_trace_cache, save_trace_cache, trace_cache_path

__all__ = [
    "COLUMNAR_FORMAT",
    "COLUMNAR_MAGIC",
    "ColumnWriter",
    "ColumnarDataset",
    "columnar_from_dataset",
    "inspect_columnar",
    "load_trace_cache",
    "salvage_columnar",
    "save_trace_cache",
    "trace_cache_path",
    "write_columnar",
]
