"""Plain-text renderers for the experiment tables and figures.

Every experiment module renders through these helpers so that the
benchmark harness prints consistent, diffable output (the textual
equivalents of the paper's tables and figure series).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["render_table", "render_heatmap", "render_bar_series", "render_csv"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_heatmap(
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Dict[Tuple[str, str], float],
    title: str = "",
    corner: str = "",
) -> str:
    """ASCII heatmap: rows × columns of formatted values."""
    headers = [corner] + list(col_labels)
    rows = [
        [r] + [_fmt(values.get((r, c), float("nan"))) for c in col_labels]
        for r in row_labels
    ]
    return render_table(headers, rows, title=title)


def render_bar_series(
    labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    title: str = "",
    width: int = 40,
) -> str:
    """Textual stand-in for a stacked/grouped bar figure.

    One row per label; each named series is printed as a numeric
    column plus a proportional bar of ``#`` characters scaled to the
    series' maximum.
    """
    out: List[str] = []
    if title:
        out.append(title)
    label_w = max((len(s) for s in labels), default=0)
    for name, values in series.items():
        out.append(f"-- {name} --")
        peak = max((abs(v) for v in values), default=1.0) or 1.0
        for label, value in zip(labels, values):
            bar = "#" * int(round(width * abs(value) / peak))
            out.append(f"{label.ljust(label_w)}  {value:>8.2f}  {bar}")
    return "\n".join(out)


def render_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """CSV rendering of the same (headers, rows) the tables use.

    Minimal quoting: fields containing commas, quotes or newlines are
    double-quoted per RFC 4180.
    """

    def field(value: object) -> str:
        text = _fmt(value)
        if any(ch in text for ch in ',"\n'):
            return '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(field(h) for h in headers)]
    lines.extend(",".join(field(c) for c in row) for row in rows)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
