"""Methodological ablations of the analysis itself.

The paper argues two design choices are load-bearing: the rank-based
(magnitude-agnostic) test and the per-comparison significance filter.
These ablations quantify both on any dataset:

* :func:`magnitude_vs_rank` swaps the Mann-Whitney U decision for a
  magnitude-based one (one-sample t-test on log normalised runtimes)
  and reports where the verdicts diverge — the Section II-C bias,
  measured rather than argued;
* :func:`confidence_ablation` sweeps the CI confidence level of the
  significance filter and reports how the recommended configurations
  move — the robustness check reviewers asked the paper's statistics
  to carry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.options import OPT_NAMES, OptConfig
from ..study.dataset import PerfDataset
from .algorithm1 import Analysis
from .stats.tdist import t_cdf

__all__ = [
    "magnitude_decide",
    "MagnitudeComparison",
    "magnitude_vs_rank",
    "ConfidencePoint",
    "confidence_ablation",
]


def magnitude_decide(ratios: Sequence[float], alpha: float = 0.05) -> bool:
    """A magnitude-based stand-in for ENABLE_OPT.

    One-sample t-test of log normalised runtimes against 0: enable the
    optimisation when the *mean log ratio* is significantly below 0.
    Unlike the MWU this weights a 20x swing 20 times harder than a
    1.05x one — the bias the paper's method avoids.
    """
    ratios = np.asarray(list(ratios), dtype=np.float64)
    if ratios.size < 3:
        return False
    logs = np.log(ratios)
    mean = float(logs.mean())
    std = float(logs.std(ddof=1))
    if std == 0.0:
        return mean < 0.0
    t = mean / (std / math.sqrt(logs.size))
    p = 2.0 * min(t_cdf(t, logs.size - 1), 1.0 - t_cdf(t, logs.size - 1))
    return p < alpha and mean < 0.0


@dataclass(frozen=True)
class MagnitudeComparison:
    """Verdicts of the two decision rules for one (partition, opt)."""

    partition: Tuple
    opt: str
    rank_enabled: bool
    magnitude_enabled: bool

    @property
    def diverges(self) -> bool:
        return self.rank_enabled != self.magnitude_enabled


def magnitude_vs_rank(
    dataset: PerfDataset,
    dims: Tuple[str, ...] = (),
    analysis: Optional[Analysis] = None,
) -> List[MagnitudeComparison]:
    """Compare the MWU decisions with magnitude-based ones.

    Both rules consume the *same* CI-filtered comparison lists; only
    the final statistical decision differs, isolating the
    rank-vs-magnitude choice.
    """
    if analysis is None:
        analysis = Analysis(dataset)
    results: List[MagnitudeComparison] = []
    for key, tests in analysis.partitions(dims).items():
        for opt in OPT_NAMES:
            # Pure per-optimisation statistical verdicts on both sides
            # (the fg/fg8 mutual-exclusion arbitration is a separate,
            # shared post-processing step and would mask the contrast).
            rank = analysis.decide(tests, opt)
            a, _ = analysis.comparison_lists(tests, opt)
            results.append(
                MagnitudeComparison(
                    partition=key,
                    opt=opt,
                    rank_enabled=rank.enabled,
                    magnitude_enabled=magnitude_decide(a, analysis.alpha),
                )
            )
    return results


@dataclass(frozen=True)
class ConfidencePoint:
    """Recommended configurations at one significance-filter level."""

    confidence: float
    configs: Dict[Tuple, OptConfig]

    def agreement_with(self, other: "ConfidencePoint") -> float:
        """Fraction of (partition, opt) verdicts shared with ``other``."""
        agree = total = 0
        for key, config in self.configs.items():
            other_config = other.configs[key]
            for opt in OPT_NAMES:
                total += 1
                agree += config.has(opt) == other_config.has(opt)
        return agree / total if total else 1.0


def confidence_ablation(
    dataset: PerfDataset,
    levels: Sequence[float] = (0.80, 0.90, 0.95, 0.99),
    dims: Tuple[str, ...] = ("chip",),
) -> List[ConfidencePoint]:
    """Recommended configurations across CI confidence levels."""
    points = []
    for level in levels:
        analysis = Analysis(dataset, confidence=level)
        points.append(
            ConfidencePoint(confidence=level, configs=analysis.specialise(dims))
        )
    return points
