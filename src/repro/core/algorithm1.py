"""Algorithm 1: finding optimisation strategies from empirical data.

The paper's central procedure.  For a data partition (all tests, or
the tests sharing a chip, an application, an input, or a combination):

1. For each optimisation ``opt``, every configuration with ``opt``
   enabled is paired with its *mirror* (identical but ``opt``
   disabled).
2. For every test in the partition, if the two timings differ
   significantly (95 % CI), the normalised runtime
   ``median(enabled) / median(disabled)`` joins list ``A`` and the
   constant 1.0 joins list ``B``.
3. A Mann-Whitney U test on (A, B) decides whether ``opt`` changed
   runtimes; ``opt`` is enabled only for a significant change whose
   median indicates a speedup (``median(A) < 1``).

The procedure is magnitude-agnostic by construction: step 3 is
rank-based, so a chip on which the optimisation produces 20× swings
gets exactly the same vote as one with 1.05× swings.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..compiler.options import OPT_NAMES, OptConfig, configs_with, disable_opt
from ..errors import InsufficientDataError
from ..obs import get_recorder
from ..study.dataset import PerfDataset, TestCase
from .significance import significant_difference
from .stats.effect import cl_effect_size
from .stats.mwu import mann_whitney_u
from .stats.summary import median

__all__ = ["OptDecision", "Analysis", "SPECIALISATION_DIMS"]

#: The three specialisation dimensions, in the paper's naming.  The
#: dataset calls inputs "graphs"; ``input`` here maps onto that axis.
SPECIALISATION_DIMS: Tuple[str, ...] = ("chip", "app", "input")


@dataclass(frozen=True)
class OptDecision:
    """The analysis verdict for one optimisation on one partition."""

    opt: str
    enabled: bool
    inconclusive: bool  # too few significant samples to decide
    p_value: float
    effect_size: float  # CL: P(random pair shows a speedup)
    median_ratio: float  # median normalised runtime (NaN if no samples)
    n_samples: int

    def mark(self) -> str:
        """Table IX cell: ✓ enabled, ✗ disabled, ? inconclusive."""
        if self.inconclusive:
            return "?"
        return "+" if self.enabled else "-"


class Analysis:
    """Algorithm 1 over a dataset, with memoised comparisons."""

    def __init__(
        self,
        dataset: PerfDataset,
        confidence: float = 0.95,
        alpha: float = 0.05,
        min_samples: int = 3,
        recorder=None,
    ) -> None:
        self.dataset = dataset
        self.confidence = confidence
        self.alpha = alpha
        self.min_samples = min_samples
        #: Cell coverage of the analysed dataset; attached to derived
        #: strategies so reports can footnote degraded runs.
        self.coverage = dataset.coverage()
        self._sig_cache: Dict[Tuple[TestCase, str, str], Optional[float]] = {}
        # None defers to the process-wide current recorder at call time,
        # so ``with obs.recording(rec):`` captures analyses transparently.
        self._recorder = recorder

    def _rec(self):
        return self._recorder if self._recorder is not None else get_recorder()

    # -- the inner comparison (lines 11-16) -----------------------------

    def _normalised_ratio(
        self, test: TestCase, enabled_cfg: OptConfig, disabled_cfg: OptConfig
    ) -> Optional[float]:
        """Significant normalised runtime for one test, else None."""
        key = (test, enabled_cfg.key(), disabled_cfg.key())
        if key not in self._sig_cache:
            times_on = self.dataset.times(test, enabled_cfg)
            times_off = self.dataset.times(test, disabled_cfg)
            if significant_difference(times_on, times_off, self.confidence):
                ratio = median(times_on) / median(times_off)
                self._rec().count("analysis.filter.significant")
            else:
                ratio = None
                self._rec().count("analysis.filter.insignificant")
            self._sig_cache[key] = ratio
        return self._sig_cache[key]

    def comparison_lists(
        self, tests: Sequence[TestCase], opt: str
    ) -> Tuple[List[float], List[float]]:
        """Algorithm 1's A and B lists for one optimisation."""
        a: List[float] = []
        for cfg in configs_with(opt):
            mirror = disable_opt(cfg, opt)
            for test in tests:
                if not (
                    self.dataset.has(test, cfg) and self.dataset.has(test, mirror)
                ):
                    # Degraded dataset: one side of the mirror pair was
                    # never measured (or was quarantined), so the pair
                    # contributes no sample rather than crashing.
                    self._rec().count("analysis.pairs.missing")
                    continue
                ratio = self._normalised_ratio(test, cfg, mirror)
                if ratio is not None:
                    a.append(ratio)
        return a, [1.0] * len(a)

    # -- ENABLE_OPT (lines 20-22) ----------------------------------------

    def decide(self, tests: Sequence[TestCase], opt: str) -> OptDecision:
        """Run the MWU decision for one optimisation on a partition."""
        a, b = self.comparison_lists(tests, opt)
        effect = cl_effect_size(a, b)
        med = median(a) if a else float("nan")
        try:
            result = mann_whitney_u(a, b, min_samples=self.min_samples)
            self._rec().count("analysis.mwu.tests")
        except InsufficientDataError:
            self._rec().count("analysis.mwu.insufficient")
            return OptDecision(
                opt=opt,
                enabled=False,
                inconclusive=True,
                p_value=float("nan"),
                effect_size=effect,
                median_ratio=med,
                n_samples=len(a),
            )
        enabled = result.reject_null(self.alpha) and med < 1.0
        return OptDecision(
            opt=opt,
            enabled=enabled,
            inconclusive=False,
            p_value=result.p_value,
            effect_size=effect,
            median_ratio=med,
            n_samples=len(a),
        )

    # -- OPTS_FOR_PARTITION (lines 7-19) -----------------------------------

    def opts_for_partition(
        self, tests: Sequence[TestCase]
    ) -> Dict[str, OptDecision]:
        """Decisions for every optimisation on one partition.

        ``fg`` and ``fg8`` are mutually exclusive variants of one
        numeric parameter; if the analysis recommends both, the one
        with the stronger effect size wins (the paper evaluates them
        as separate binary optimisations with the same constraint).
        """
        decisions = {opt: self.decide(tests, opt) for opt in OPT_NAMES}
        if decisions["fg"].enabled and decisions["fg8"].enabled:
            weaker = (
                "fg"
                if decisions["fg"].effect_size <= decisions["fg8"].effect_size
                else "fg8"
            )
            d = decisions[weaker]
            decisions[weaker] = OptDecision(
                opt=d.opt,
                enabled=False,
                inconclusive=d.inconclusive,
                p_value=d.p_value,
                effect_size=d.effect_size,
                median_ratio=d.median_ratio,
                n_samples=d.n_samples,
            )
        return decisions

    def config_for_partition(self, tests: Sequence[TestCase]) -> OptConfig:
        """The partition's recommended configuration."""
        decisions = self.opts_for_partition(tests)
        return OptConfig.from_names(
            name for name, d in decisions.items() if d.enabled
        )

    # -- SPECIALISE_FOR_* (lines 1-6), generalised over dimensions ----------

    def _partition_key(self, test: TestCase, dims: Sequence[str]) -> Tuple:
        values = []
        for dim in dims:
            if dim == "chip":
                values.append(test.chip)
            elif dim == "app":
                values.append(test.app)
            elif dim == "input":
                values.append(test.graph)
            else:
                raise ValueError(
                    f"unknown specialisation dimension {dim!r}; "
                    f"expected a subset of {SPECIALISATION_DIMS}"
                )
        return tuple(values)

    def partitions(
        self, dims: Sequence[str], tests: Optional[Iterable[TestCase]] = None
    ) -> Dict[Tuple, List[TestCase]]:
        """Group tests by their values along the given dimensions."""
        groups: Dict[Tuple, List[TestCase]] = {}
        for test in tests if tests is not None else self.dataset.tests:
            groups.setdefault(self._partition_key(test, dims), []).append(test)
        return groups

    def specialise(self, dims: Sequence[str]) -> Dict[Tuple, OptConfig]:
        """One recommended configuration per partition.

        ``dims=()`` is the fully portable *global* strategy;
        ``dims=("chip",)`` reproduces the paper's
        ``SPECIALISE_FOR_CHIP``; multi-dimension tuples give the
        semi-specialised strategies of Section VII.
        """
        with self._specialise_span(dims) as finish:
            result = {
                key: self.config_for_partition(tests)
                for key, tests in self.partitions(dims).items()
            }
            finish(len(result))
        return result

    def specialise_decisions(
        self, dims: Sequence[str]
    ) -> Dict[Tuple, Dict[str, OptDecision]]:
        """Like :meth:`specialise` but keeping full decision detail
        (needed for Table IX's effect sizes and ? entries)."""
        with self._specialise_span(dims) as finish:
            result = {
                key: self.opts_for_partition(tests)
                for key, tests in self.partitions(dims).items()
            }
            finish(len(result))
        return result

    @contextmanager
    def _specialise_span(self, dims: Sequence[str]):
        """An ``analysis.specialise`` span carrying per-level counts.

        The yielded callable closes the bookkeeping: called with the
        partition count, it attaches the number of MWU tests run and
        comparisons filtered *at this specialisation level* (deltas of
        the analysis counters, so memoised comparisons from earlier
        levels are not re-counted)."""
        rec = self._rec()
        level = "+".join(dims) if dims else "global"
        before = {
            name: rec.counter_value(name)
            for name in (
                "analysis.mwu.tests",
                "analysis.mwu.insufficient",
                "analysis.filter.significant",
                "analysis.filter.insignificant",
                "analysis.pairs.missing",
            )
        }
        with rec.span("analysis.specialise", level=level) as span:

            def finish(n_partitions: int) -> None:
                span.set("partitions", n_partitions)
                for name, start in before.items():
                    span.set(
                        name.split("analysis.", 1)[1].replace(".", "_"),
                        rec.counter_value(name) - start,
                    )

            yield finish
