"""The optimisation-strategy functions of the paper's Table V.

A *strategy* maps an (application, input, chip) tuple to an
optimisation configuration.  Nine strategies come from Algorithm 1 at
every degree of specialisation — the baseline (everything off), the
fully portable *global* function, the three single-dimension
functions, the three two-dimension functions, and the fully
specialised three-dimension function — plus the *oracle*, which simply
queries the dataset for the best configuration of each test (the
upper bound any strategy can reach).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.options import BASELINE, OptConfig
from ..errors import AnalysisError
from ..study.dataset import Coverage, PerfDataset, TestCase
from .algorithm1 import Analysis

__all__ = [
    "Strategy",
    "STRATEGY_ORDER",
    "STRATEGY_DIMS",
    "build_strategies",
    "oracle_assignment",
    "save_strategies",
    "load_strategies",
]

#: Paper presentation order, least to most specialised.
STRATEGY_ORDER: Tuple[str, ...] = (
    "baseline",
    "global",
    "chip",
    "app",
    "input",
    "chip+app",
    "chip+input",
    "app+input",
    "chip+app+input",
    "oracle",
)

#: The specialisation dimensions of each Algorithm 1 strategy.
STRATEGY_DIMS: Dict[str, Tuple[str, ...]] = {
    "global": (),
    "chip": ("chip",),
    "app": ("app",),
    "input": ("input",),
    "chip+app": ("chip", "app"),
    "chip+input": ("chip", "input"),
    "app+input": ("app", "input"),
    "chip+app+input": ("chip", "app", "input"),
}


@dataclass
class Strategy:
    """A named mapping from tests to configurations."""

    name: str
    dims: Tuple[str, ...]
    assignment: Dict[Tuple, OptConfig] = field(default_factory=dict)
    #: Cell coverage of the dataset the strategy was derived from;
    #: ``None`` for strategies built before coverage tracking existed.
    coverage: Optional[Coverage] = None

    def key_for(self, test: TestCase) -> Tuple:
        values = []
        for dim in self.dims:
            if dim == "chip":
                values.append(test.chip)
            elif dim == "app":
                values.append(test.app)
            elif dim == "input":
                values.append(test.graph)
            else:  # pragma: no cover - constructed internally
                raise AnalysisError(f"unknown dimension {dim!r}")
        return tuple(values)

    def config_for(self, test: TestCase) -> OptConfig:
        """The configuration this strategy deploys for a test."""
        key = self.key_for(test)
        try:
            return self.assignment[key]
        except KeyError:
            raise AnalysisError(
                f"strategy {self.name!r} has no assignment for {test} "
                f"(partition key {key!r})"
            ) from None

    @property
    def distinct_configs(self) -> List[OptConfig]:
        seen: Dict[str, OptConfig] = {}
        for cfg in self.assignment.values():
            seen.setdefault(cfg.key(), cfg)
        return list(seen.values())

    # -- persistence ---------------------------------------------------

    def to_dict(self) -> Dict:
        data = {
            "name": self.name,
            "dims": list(self.dims),
            "assignment": [
                {"key": list(key), "config": cfg.key()}
                for key, cfg in self.assignment.items()
            ],
        }
        if self.coverage is not None:
            data["coverage"] = {
                "present": self.coverage.present,
                "expected": self.coverage.expected,
                "quarantined": self.coverage.quarantined,
            }
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "Strategy":
        assignment = {
            tuple(entry["key"]): (
                BASELINE
                if entry["config"] == "baseline"
                else OptConfig.from_names(entry["config"].split("+"))
            )
            for entry in data["assignment"]
        }
        coverage = None
        if "coverage" in data:
            coverage = Coverage(
                present=data["coverage"]["present"],
                expected=data["coverage"]["expected"],
                quarantined=data["coverage"].get("quarantined", 0),
            )
        return cls(
            name=data["name"],
            dims=tuple(data["dims"]),
            assignment=assignment,
            coverage=coverage,
        )


def oracle_assignment(
    dataset: PerfDataset, tests: Optional[Sequence[TestCase]] = None
) -> Dict[Tuple, OptConfig]:
    """Best configuration per (app, input, chip), queried exhaustively."""
    tests = list(tests) if tests is not None else dataset.tests
    return {
        (t.app, t.graph, t.chip): dataset.best_config(t) for t in tests
    }


def save_strategies(strategies: Dict[str, Strategy], path: str) -> None:
    """Persist a set of strategies as JSON.

    This is the artifact a domain compiler would ship: the optimisation
    policy derived from one study, deployable without the dataset.
    """
    with open(path, "w") as f:
        json.dump({name: s.to_dict() for name, s in strategies.items()}, f)


def load_strategies(path: str) -> Dict[str, Strategy]:
    """Load strategies persisted by :func:`save_strategies`."""
    with open(path) as f:
        data = json.load(f)
    return {name: Strategy.from_dict(d) for name, d in data.items()}


def build_strategies(
    dataset: PerfDataset, analysis: Optional[Analysis] = None
) -> Dict[str, Strategy]:
    """Construct all ten Table V strategies from a dataset."""
    if analysis is None:
        analysis = Analysis(dataset)

    cov = analysis.coverage
    strategies: Dict[str, Strategy] = {
        "baseline": Strategy("baseline", (), {(): BASELINE}, coverage=cov)
    }
    for name, dims in STRATEGY_DIMS.items():
        strategies[name] = Strategy(
            name, dims, analysis.specialise(dims), coverage=cov
        )
    strategies["oracle"] = Strategy(
        "oracle",
        ("app", "input", "chip"),
        oracle_assignment(dataset),
        coverage=cov,
    )
    return strategies
