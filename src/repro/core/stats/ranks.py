"""Rank utilities for the non-parametric tests."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["rankdata", "tie_groups"]


def rankdata(values: Sequence[float]) -> np.ndarray:
    """Ranks (1-based) with ties assigned their average rank.

    Matches the standard mid-rank convention used by the Mann-Whitney
    U test.
    """
    values = np.asarray(values, dtype=np.float64)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        # Positions i..j (0-based) share the average of ranks i+1..j+1.
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def tie_groups(values: Sequence[float]) -> Tuple[int, ...]:
    """Sizes of groups of tied values (size >= 2 only)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    groups = []
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and values[j + 1] == values[i]:
            j += 1
        if j > i:
            groups.append(j - i + 1)
        i = j + 1
    return tuple(groups)
