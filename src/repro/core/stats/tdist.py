"""Student's t distribution, from scratch.

Needed by the 95 % confidence-interval significance filter that
Algorithm 1 applies to each individual timing comparison (line 14 of
the paper's listing) before the rank analysis.  Implemented via the
regularised incomplete beta function (continued-fraction evaluation,
Numerical Recipes style); validated against SciPy in the tests.
"""

from __future__ import annotations

import math
from functools import lru_cache

__all__ = ["t_cdf", "t_ppf", "betainc_regularized"]

_MAX_ITER = 300
_EPS = 3e-14


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function."""
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < 1e-300:
        d = 1e-300
    d = 1.0 / d
    h = d
    for m in range(1, _MAX_ITER + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < 1e-300:
            d = 1e-300
        c = 1.0 + aa / c
        if abs(c) < 1e-300:
            c = 1e-300
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < 1e-300:
            d = 1e-300
        c = 1.0 + aa / c
        if abs(c) < 1e-300:
            c = 1e-300
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < _EPS:
            return h
    raise ArithmeticError("incomplete beta continued fraction did not converge")


def betainc_regularized(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta function I_x(a, b)."""
    if not 0.0 <= x <= 1.0:
        raise ValueError("x must lie in [0, 1]")
    if x == 0.0 or x == 1.0:
        return x
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def t_cdf(t: float, df: float) -> float:
    """CDF of Student's t with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    tail = 0.5 * betainc_regularized(df / 2.0, 0.5, x)
    return 1.0 - tail if t > 0 else tail


@lru_cache(maxsize=65536)
def t_ppf(q: float, df: float) -> float:
    """Quantile (inverse CDF) of Student's t, by bisection.

    Cached: the significance filter calls this for every timing
    comparison with a small set of recurring degrees of freedom.
    """
    if not 0.0 < q < 1.0:
        raise ValueError("q must lie in (0, 1)")
    if q == 0.5:
        return 0.0
    lo, hi = -1e6, 1e6
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if t_cdf(mid, df) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-10 * max(1.0, abs(mid)):
            break
    return 0.5 * (lo + hi)
