"""Summary statistics used throughout the analysis and reports."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ...util import geomean

__all__ = ["geomean", "median", "speedup_ratio"]


def median(values: Sequence[float]) -> float:
    values = list(values)
    if not values:
        raise ValueError("median of an empty sequence")
    return float(np.median(np.asarray(values, dtype=np.float64)))


def speedup_ratio(baseline_times: Sequence[float], times: Sequence[float]) -> float:
    """Median-based speedup of ``times`` over ``baseline_times`` (>1 is faster)."""
    return median(baseline_times) / median(times)
