"""From-scratch statistical machinery of the analysis core."""

from .effect import cl_effect_size, cl_from_u
from .mwu import MWUResult, mann_whitney_u
from .ranks import rankdata, tie_groups
from .summary import geomean, median, speedup_ratio
from .tdist import betainc_regularized, t_cdf, t_ppf

__all__ = [
    "cl_effect_size",
    "cl_from_u",
    "MWUResult",
    "mann_whitney_u",
    "rankdata",
    "tie_groups",
    "geomean",
    "median",
    "speedup_ratio",
    "betainc_regularized",
    "t_cdf",
    "t_ppf",
]
