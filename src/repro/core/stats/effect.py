"""Common-language effect size (paper Table IX, the "CL" column).

For the per-chip optimisation decisions the paper reports, alongside
each enable/disable recommendation, the probability that a randomly
chosen (program, input) pair shows a speedup under the optimisation —
the common-language effect size of the normalised-runtime sample
against the baseline sample.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["cl_effect_size", "cl_from_u"]


def cl_effect_size(a: Sequence[float], b: Sequence[float]) -> float:
    """P(a < b) + 0.5 · P(a = b) over all cross pairs.

    In Algorithm 1's usage ``a`` holds normalised runtimes (enabled /
    disabled) and ``b`` holds the all-ones baseline, so the value is
    the probability a random comparison shows a speedup.
    """
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    if a.size == 0 or b.size == 0:
        return 0.5
    less = np.count_nonzero(a[:, None] < b[None, :])
    equal = np.count_nonzero(a[:, None] == b[None, :])
    return float((less + 0.5 * equal) / (a.size * b.size))


def cl_from_u(u1: float, n1: int, n2: int) -> float:
    """Effect size recovered from a U statistic: ``1 - U1/(n1·n2)``.

    ``U1`` counts pairs where the first sample exceeds the second, so
    the probability of the first being *smaller* (a speedup, for
    runtime ratios) is its complement.
    """
    if n1 == 0 or n2 == 0:
        return 0.5
    return 1.0 - u1 / (n1 * n2)
