"""Mann-Whitney U test, implemented from scratch (paper Section III-A).

The paper's analysis is deliberately *rank-based and
magnitude-agnostic*: the MWU test asks whether one sample is
stochastically larger than the other without regard to how much
larger, which is what protects the optimisation-selection procedure
from being biased by chips (or applications, or inputs) that happen to
be very sensitive to optimisations (paper Section II-C).

This implementation uses the normal approximation with tie correction
and continuity correction — appropriate for the large comparison lists
Algorithm 1 builds — and is validated against SciPy in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...errors import InsufficientDataError
from .ranks import rankdata, tie_groups

__all__ = ["MWUResult", "mann_whitney_u"]


@dataclass(frozen=True)
class MWUResult:
    """Outcome of a Mann-Whitney U test."""

    u1: float  # U statistic of the first sample
    u2: float  # U statistic of the second sample
    z: float  # normal-approximation z score (continuity corrected)
    p_value: float  # two-sided p
    n1: int
    n2: int

    @property
    def u(self) -> float:
        """The conventional test statistic: min(U1, U2)."""
        return min(self.u1, self.u2)

    def reject_null(self, alpha: float = 0.05) -> bool:
        """Whether the samples differ significantly at level ``alpha``."""
        return self.p_value < alpha


def _phi(z: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def mann_whitney_u(
    a: Sequence[float], b: Sequence[float], min_samples: int = 3
) -> MWUResult:
    """Two-sided Mann-Whitney U test of samples ``a`` and ``b``.

    Raises :class:`~repro.errors.InsufficientDataError` when either
    sample has fewer than ``min_samples`` values — the paper's
    "not enough results ... to make a confident decision" case
    (Table IX, ``fg8`` on MALI).
    """
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    n1, n2 = a.size, b.size
    if n1 < min_samples or n2 < min_samples:
        raise InsufficientDataError(
            f"Mann-Whitney U needs at least {min_samples} samples per "
            f"side (got {n1} and {n2})"
        )

    combined = np.concatenate([a, b])
    ranks = rankdata(combined)
    r1 = float(ranks[:n1].sum())
    u1 = r1 - n1 * (n1 + 1) / 2.0
    u2 = n1 * n2 - u1

    # Normal approximation with tie correction.
    n = n1 + n2
    ties = tie_groups(combined)
    tie_term = sum(t ** 3 - t for t in ties)
    sigma_sq = n1 * n2 / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    mean_u = n1 * n2 / 2.0
    if sigma_sq <= 0:
        # All values identical: no evidence of difference.
        return MWUResult(u1=u1, u2=u2, z=0.0, p_value=1.0, n1=n1, n2=n2)
    # Continuity correction towards the mean.
    diff = u1 - mean_u
    correction = -0.5 if diff > 0 else (0.5 if diff < 0 else 0.0)
    z = (diff + correction) / math.sqrt(sigma_sq)
    p = 2.0 * (1.0 - _phi(abs(z)))
    return MWUResult(u1=u1, u2=u2, z=z, p_value=min(1.0, p), n1=n1, n2=n2)
