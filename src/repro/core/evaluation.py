"""Quantifying semi-specialisation (paper Section VII, Figs 3 and 4).

Evaluates every Table V strategy over the dataset:

* **outcome shares** (Fig 3) — for each strategy, the percentage of
  tests whose deployed configuration gives a significant speedup,
  slowdown or no change versus the baseline.  Following the paper,
  tests where even the oracle provides no significant speedup are
  excluded (43 % of tests in the paper's data).
* **slowdown versus oracle** (Fig 4) — the geometric-mean factor by
  which each strategy trails the per-test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..compiler.options import BASELINE
from ..study.dataset import PerfDataset, TestCase
from .significance import classify_outcome
from .stats.summary import geomean, median
from .strategies import Strategy

__all__ = [
    "StrategyOutcomes",
    "optimisable_tests",
    "strategy_outcomes",
    "strategy_slowdown_vs_oracle",
    "evaluate_strategies",
]


@dataclass(frozen=True)
class StrategyOutcomes:
    """Fig 3 bar for one strategy."""

    strategy: str
    speedups: int
    slowdowns: int
    no_change: int

    @property
    def n_tests(self) -> int:
        return self.speedups + self.slowdowns + self.no_change

    @property
    def pct_speedup(self) -> float:
        return 100.0 * self.speedups / max(1, self.n_tests)

    @property
    def pct_slowdown(self) -> float:
        return 100.0 * self.slowdowns / max(1, self.n_tests)

    @property
    def pct_no_change(self) -> float:
        return 100.0 * self.no_change / max(1, self.n_tests)


def optimisable_tests(
    dataset: PerfDataset, oracle: Strategy
) -> List[TestCase]:
    """Tests where some configuration beats the baseline significantly.

    The complement (no configuration helps — 43 % of the paper's
    tests) is excluded from the Fig 3 outcome shares.
    """
    kept = []
    for test in dataset.tests:
        base = dataset.times_or_none(test, BASELINE)
        if base is None:
            continue
        best = dataset.times_or_none(test, oracle.config_for(test))
        if best is None:
            continue
        if classify_outcome(base, best) == "speedup":
            kept.append(test)
    return kept


def strategy_outcomes(
    dataset: PerfDataset,
    strategy: Strategy,
    tests: Sequence[TestCase],
) -> StrategyOutcomes:
    """Classify every test's outcome under a strategy (vs. baseline)."""
    counts = {"speedup": 0, "slowdown": 0, "no-change": 0}
    for test in tests:
        base = dataset.times_or_none(test, BASELINE)
        times = dataset.times_or_none(test, strategy.config_for(test))
        if base is None or times is None:
            # The strategy deploys a configuration that was never
            # measured for this test; a degraded dataset cannot
            # classify the outcome, so the test is excluded.
            continue
        counts[classify_outcome(base, times)] += 1
    return StrategyOutcomes(
        strategy=strategy.name,
        speedups=counts["speedup"],
        slowdowns=counts["slowdown"],
        no_change=counts["no-change"],
    )


def strategy_slowdown_vs_oracle(
    dataset: PerfDataset,
    strategy: Strategy,
    oracle: Strategy,
    tests: Optional[Sequence[TestCase]] = None,
) -> float:
    """Fig 4: geomean of median(strategy) / median(oracle) over tests."""
    tests = list(tests) if tests is not None else dataset.tests
    ratios = []
    for test in tests:
        t_strategy = dataset.times_or_none(test, strategy.config_for(test))
        t_oracle = dataset.times_or_none(test, oracle.config_for(test))
        if t_strategy is None or t_oracle is None:
            continue
        ratios.append(median(t_strategy) / median(t_oracle))
    return geomean(ratios)


def evaluate_strategies(
    dataset: PerfDataset, strategies: Dict[str, Strategy]
) -> Dict[str, Dict[str, float]]:
    """Joint Fig 3 + Fig 4 evaluation of all strategies.

    Returns, per strategy: speedup/slowdown/no-change counts and
    percentages over the optimisable tests, and the geomean slowdown
    versus the oracle over all tests.
    """
    oracle = strategies["oracle"]
    kept = optimisable_tests(dataset, oracle)
    summary: Dict[str, Dict[str, float]] = {}
    for name, strategy in strategies.items():
        outcomes = strategy_outcomes(dataset, strategy, kept)
        summary[name] = {
            "speedups": outcomes.speedups,
            "slowdowns": outcomes.slowdowns,
            "no_change": outcomes.no_change,
            "pct_speedup": outcomes.pct_speedup,
            "pct_slowdown": outcomes.pct_slowdown,
            "pct_no_change": outcomes.pct_no_change,
            "slowdown_vs_oracle": strategy_slowdown_vs_oracle(
                dataset, strategy, oracle
            ),
        }
    return summary
