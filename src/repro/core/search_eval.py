"""Replay budgeted searches against a measured dataset — the oracle.

The evaluation harness for :mod:`repro.core.search`.  Nothing is
re-simulated: a search asking for configuration C on test T is answered
straight from the :class:`~repro.study.dataset.PerfDataset`, so the
dataset's exhaustive sweep *is* the oracle a search is scored against.

**Fraction of oracle.**  A replay's recommendation is scored on the
*full-fidelity* dataset median — even when the strategy only screened
the configuration at reduced fidelity — so screening honesty is never
conflated with evaluation honesty::

    fraction = median(oracle config) / median(recommended config)

in ``(0, 1]``.  The oracle is the measured configuration with the
lowest median, ties broken by lexicographic configuration key (the
same ``(median, key)`` order the strategies use, so ``budget >= pool``
recovers the oracle *exactly*, key and all).  A replay that observed
nothing (every probe hit a hole) scores the pessimal deploy —
``median(oracle) / median(worst measured config)`` — mirroring
:mod:`repro.core.portfolio`; tests with no measurements at all are
skipped.

**Determinism.**  Each replay derives its own ``random.Random`` from
:func:`repro.util.stable_hash` of the strategy name, the test
coordinates, the budget and the (seed, trial) pair — no RNG state is
ever shared between replays, so sharded or shuffled runs can never
correlate draws (see ``docs/autotuning.md``).

Counters (on the current :mod:`repro.obs` recorder): ``search.replays``
(one per replay), ``search.evaluations`` (observations that returned
data) and ``search.holes`` (probes that hit missing cells).

Also home of the ``repro search`` CLI (:func:`main`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SearchError
from ..obs import count
from ..study.dataset import PerfDataset, TestCase
from ..util import geomean, stable_hash
from .search import SEARCH_STRATEGIES, _median, make_strategy

__all__ = [
    "DEFAULT_BUDGETS",
    "ReplayResult",
    "budget_fractions",
    "main",
    "oracle_best",
    "partition_fractions",
    "replay_search",
]

#: Budgets the ``budget`` experiment sweeps: full-fidelity evaluation
#: counts out of the 96-configuration lattice (96 = the exhaustive
#: sweep, i.e. Algorithm 1's input).  The grid starts at 8 — one more
#: than the seven option dimensions; smaller budgets cannot even span
#: the lattice axes and measure draw luck, not search quality.
DEFAULT_BUDGETS: Tuple[int, ...] = (8, 16, 32, 64, 96)


@dataclass(frozen=True)
class ReplayResult:
    """One search replayed over one test, scored against the oracle."""

    test: TestCase
    strategy: str
    budget: int
    trial: int
    chosen: Optional[str]  # recommended config key (None: saw nothing)
    chosen_median: Optional[float]  # full dataset median of `chosen`
    oracle: Optional[str]  # oracle config key (None: unmeasured test)
    oracle_median: Optional[float]
    fraction: Optional[float]  # fraction of oracle, None if no oracle
    spent: float  # budget units actually charged
    evaluations: int  # observations that returned data

    def to_dict(self) -> dict:
        return {
            "test": {
                "app": self.test.app,
                "input": self.test.graph,
                "chip": self.test.chip,
            },
            "strategy": self.strategy,
            "budget": self.budget,
            "trial": self.trial,
            "chosen": self.chosen,
            "chosen_median": self.chosen_median,
            "oracle": self.oracle,
            "oracle_median": self.oracle_median,
            "fraction": self.fraction,
            "spent": self.spent,
            "evaluations": self.evaluations,
        }


def _test_medians(dataset: PerfDataset, test: TestCase) -> Dict[str, float]:
    """Config key -> full-fidelity median, for every measured cell.

    Medians are the exact stdlib computation the strategies use, so a
    full-budget search and the oracle agree bit for bit.
    """
    medians: Dict[str, float] = {}
    for config in dataset.configs:
        times = dataset.times_or_none(test, config)
        if times is not None:
            medians[config.key()] = _median(times)
    return medians


def oracle_best(
    dataset: PerfDataset, test: TestCase
) -> Optional[Tuple[str, float]]:
    """The exhaustive-sweep answer: ``(config key, median)`` or ``None``.

    The measured configuration with the lowest full-fidelity median,
    ties broken by lexicographic key — the same ``(median, key)`` order
    the search strategies track, so this is the exact fixed point a
    budget-of-the-whole-pool search converges to.  ``None`` for a test
    with no measurements at all.
    """
    medians = _test_medians(dataset, test)
    if not medians:
        return None
    med, key = min((m, k) for k, m in medians.items())
    return key, med


def replay_search(
    dataset: PerfDataset,
    test: TestCase,
    strategy: str,
    budget: int,
    *,
    seed: int = 0,
    trial: int = 0,
) -> ReplayResult:
    """Replay one search over one test, answering from the dataset.

    The candidate pool is the dataset's configuration axis; full
    fidelity is the test's largest repetition count (reduced-fidelity
    proposals see a prefix of the recorded repetitions).  Holes —
    configurations never measured for this test — cost nothing and
    teach the search nothing, exactly like a failed measurement in a
    live study.
    """
    medians = _test_medians(dataset, test)
    repetitions = max(
        (
            len(times)
            for config in dataset.configs
            if (times := dataset.times_or_none(test, config)) is not None
        ),
        default=1,
    )
    rng = random.Random(
        stable_hash(
            "search", strategy, test.app, test.graph, test.chip,
            budget, seed, trial,
        )
    )
    searcher = make_strategy(
        strategy,
        dataset.configs,
        budget=budget,
        rng=rng,
        repetitions=repetitions,
    )
    holes = 0
    while (prop := searcher.propose()) is not None:
        times = dataset.times_or_none(test, prop.config)
        if times is not None and prop.repetitions is not None:
            times = times[: prop.repetitions]
        if times is None:
            holes += 1
        searcher.observe(prop, times)
    count("search.replays")
    count("search.evaluations", searcher.evaluations)
    count("search.holes", holes)

    best = searcher.best()
    oracle = oracle_best(dataset, test)
    chosen = best[0] if best is not None else None
    chosen_median = medians.get(chosen) if chosen is not None else None
    fraction: Optional[float] = None
    if oracle is not None:
        # Score on the full dataset median; a search that saw nothing
        # (all holes) scores the pessimal deploy, like core.portfolio.
        denom = (
            chosen_median
            if chosen_median is not None
            else max(medians.values())
        )
        fraction = oracle[1] / denom
    return ReplayResult(
        test=test,
        strategy=strategy,
        budget=budget,
        trial=trial,
        chosen=chosen,
        chosen_median=chosen_median,
        oracle=oracle[0] if oracle is not None else None,
        oracle_median=oracle[1] if oracle is not None else None,
        fraction=fraction,
        spent=searcher.spent,
        evaluations=searcher.evaluations,
    )


def _scoreable_tests(dataset: PerfDataset) -> List[TestCase]:
    """Tests with at least one measurement, in canonical order."""
    return [
        t for t in sorted(dataset.tests) if oracle_best(dataset, t) is not None
    ]


def budget_fractions(
    dataset: PerfDataset,
    *,
    strategies: Optional[Sequence[str]] = None,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    trials: int = 8,
    seed: int = 0,
) -> Dict[str, Dict[int, float]]:
    """Aggregate quality-vs-budget curves: strategy -> budget -> fraction.

    The fraction at each (strategy, budget) is the geometric mean over
    every scoreable test and every trial of the replay's fraction of
    oracle.  Budgets larger than the configuration pool are clamped
    (they buy nothing extra); ``trials`` re-runs each replay under
    distinct derived seeds to average out draw luck.
    """
    if trials < 1:
        raise SearchError(f"trials must be positive, got {trials}")
    names = list(strategies) if strategies is not None else sorted(
        SEARCH_STRATEGIES
    )
    tests = _scoreable_tests(dataset)
    out: Dict[str, Dict[int, float]] = {}
    for name in names:
        per_budget: Dict[int, float] = {}
        for budget in budgets:
            fractions = [
                result.fraction
                for test in tests
                for trial in range(trials)
                if (
                    result := replay_search(
                        dataset, test, name, budget, seed=seed, trial=trial
                    )
                ).fraction is not None
            ]
            per_budget[budget] = geomean(fractions)
        out[name] = per_budget
    return out


def partition_fractions(
    dataset: PerfDataset,
    strategy: str,
    *,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    dims: Sequence[str] = ("chip",),
    trials: int = 8,
    seed: int = 0,
) -> Dict[Tuple[str, ...], Dict[int, float]]:
    """Per-lattice-partition curves: partition key -> budget -> fraction.

    ``dims`` picks the partitioning axes from ``("chip", "app",
    "input")`` — the same lattice the Table V strategies specialise on.
    Each partition aggregates (geomean) the fractions of its tests
    across ``trials`` replays.
    """
    axes = {"chip": "chip", "app": "app", "input": "graph"}
    unknown = [d for d in dims if d not in axes]
    if unknown:
        raise SearchError(
            f"unknown partition dim(s) {unknown}; expected a subset of "
            f"{sorted(axes)}"
        )
    groups: Dict[Tuple[str, ...], List[TestCase]] = {}
    for test in _scoreable_tests(dataset):
        key = tuple(getattr(test, axes[d]) for d in dims)
        groups.setdefault(key, []).append(test)
    out: Dict[Tuple[str, ...], Dict[int, float]] = {}
    for key in sorted(groups):
        per_budget: Dict[int, float] = {}
        for budget in budgets:
            fractions = [
                result.fraction
                for test in groups[key]
                for trial in range(trials)
                if (
                    result := replay_search(
                        dataset, test, strategy, budget,
                        seed=seed, trial=trial,
                    )
                ).fraction is not None
            ]
            per_budget[budget] = geomean(fractions)
        out[key] = per_budget
    return out


def main(argv=None) -> int:
    """CLI: ``python -m repro search DATASET``."""
    import argparse
    import sys

    from ..cli import metrics_parent, save_run_report
    from ..errors import DatasetError, InsufficientCoverageError
    from ..obs import Recorder, recording
    from ..study.audit import (
        DEFAULT_COVERAGE_FLOOR,
        audit_dataset,
        require_coverage,
    )
    from .reporting import render_table

    parser = argparse.ArgumentParser(
        prog="repro-search",
        parents=[metrics_parent()],
        description=(
            "Replay budgeted search strategies against a study dataset "
            "(the exhaustive oracle) and report fraction-of-oracle at "
            "each budget."
        ),
    )
    parser.add_argument("dataset", help="input PerfDataset JSON (.gz ok)")
    parser.add_argument(
        "--strategy",
        choices=sorted(SEARCH_STRATEGIES) + ["all"],
        default="all",
        help="search strategy to replay (default: all)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        action="append",
        default=None,
        metavar="N",
        help=(
            "evaluation budget(s), repeatable "
            f"(default {' '.join(str(b) for b in DEFAULT_BUDGETS)})"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base replay seed (default 0)"
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=8,
        metavar="N",
        help="replays per (test, budget) to average draw luck (default 8)",
    )
    parser.add_argument(
        "--by",
        choices=["chip", "app", "input"],
        action="append",
        default=None,
        help=(
            "also print per-partition curves along these dims "
            "(repeatable; default: chip)"
        ),
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=DEFAULT_COVERAGE_FLOOR,
        metavar="FRACTION",
        help=(
            "refuse to analyse below this audited cell-coverage "
            f"fraction (default {DEFAULT_COVERAGE_FLOOR})"
        ),
    )
    args = parser.parse_args(argv)
    if args.budget is not None and any(b < 1 for b in args.budget):
        print("[search] --budget must be positive", file=sys.stderr)
        return 1
    if args.trials < 1:
        print("[search] --trials must be positive", file=sys.stderr)
        return 1

    try:
        dataset = PerfDataset.load(args.dataset)
    except DatasetError as exc:
        print(f"[search] {exc}", file=sys.stderr)
        return 1
    audit = audit_dataset(dataset)
    try:
        require_coverage(audit.coverage, args.min_coverage)
    except InsufficientCoverageError as exc:
        print(f"[search] {exc}", file=sys.stderr)
        return 1

    budgets = tuple(args.budget) if args.budget else DEFAULT_BUDGETS
    names = (
        sorted(SEARCH_STRATEGIES)
        if args.strategy == "all"
        else [args.strategy]
    )
    dims = tuple(args.by) if args.by else ("chip",)
    rec = Recorder() if args.metrics else None

    def _render() -> str:
        from ..experiments import budget_curve as experiment

        sections = [
            experiment.run(
                audit.dataset,
                strategies=names,
                budgets=budgets,
                trials=args.trials,
                seed=args.seed,
            )
        ]
        for name in names:
            per_part = partition_fractions(
                audit.dataset,
                name,
                budgets=budgets,
                dims=dims,
                trials=args.trials,
                seed=args.seed,
            )
            rows = [
                ["/".join(key)]
                + [f"{curve[b]:.1%}" for b in budgets]
                for key, curve in per_part.items()
            ]
            sections.append(
                render_table(
                    ["/".join(dims)] + [f"B={b}" for b in budgets],
                    rows,
                    title=(
                        f"Fraction of oracle by {'/'.join(dims)} "
                        f"partition — strategy: {name}"
                    ),
                )
            )
        return "\n\n".join(sections)

    if rec is not None:
        with recording(rec):
            with rec.span("search.replay"):
                output = _render()
    else:
        output = _render()
    print(output)
    if rec is not None:
        save_run_report(
            rec,
            args.metrics,
            meta={"dataset": args.dataset, "seed": args.seed},
        )
        print(f"[search] wrote run report to {args.metrics}", file=sys.stderr)
    return 0
