"""Budgeted autotuning: search the 96-config lattice, don't sweep it.

The paper's Algorithm 1 and Table V assume an *exhaustive* sweep —
every configuration measured for every (app, input, chip) cell.
PAPERS.md's *Towards a Benchmarking Suite for Kernel Tuners* reframes
that sweep as a search problem: given a hard evaluation budget, how
close to the exhaustive oracle can a search strategy get?  This module
provides the strategies; :mod:`repro.core.search_eval` replays them
against a measured :class:`~repro.study.dataset.PerfDataset` (the
dataset *is* the oracle — nothing is re-simulated).

**Protocol.**  A :class:`SearchStrategy` is driven by a propose/observe
loop::

    while (prop := strategy.propose()) is not None:
        times = measure(prop.config, prop.repetitions)  # None on a hole
        strategy.observe(prop, times)
    best = strategy.best()  # (config key, best observed median) or None

All randomness flows through one **explicitly injected**
``random.Random`` — there is no module-level RNG anywhere in this
package, so concurrently sharded runs (``--jobs``) can never correlate
draws by accident (each replay derives its own seed via
:func:`repro.util.stable_hash`).

**Budget semantics.**  One unit of budget buys one configuration at
full fidelity (all ``repetitions`` noise repetitions).  Strategies
that screen at reduced fidelity — :class:`SuccessiveHalving` observes
candidates at fewer repetitions first — pay fractionally: observing
``r`` new repetitions of a configuration costs ``r / repetitions``
units.  ``spent`` never exceeds ``budget``: a proposal that would is
never issued, and the search ends.  Replaying a cell whose measurement
is missing (a hole in a degraded dataset) costs nothing — no data was
collected — and the configuration is marked unavailable.

**Determinism.**  The candidate pool is canonically sorted by
configuration key before any draw, every tie breaks on
``(median, key)``, and all randomness comes from the injected RNG —
so a fixed seed gives bit-identical trajectories regardless of the
dataset's insertion order (mirroring :mod:`repro.core.portfolio`).

Three strategies ship:

* :class:`RandomSearch` — uniform draws without replacement;
* :class:`LocalSearch` — best-improvement hill climbing over the
  option lattice (neighbour = flip exactly one optimisation name),
  with random restarts while budget remains;
* :class:`SuccessiveHalving` — screen many configurations at one
  noise repetition, promote the best half at doubled fidelity until
  full fidelity is reached.  When the budget affords the exhaustive
  sweep it simply runs the sweep (screening cannot beat measuring
  everything), which makes ``budget >= len(pool)`` recover the
  exhaustive oracle exactly for every strategy.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..compiler.options import OPT_NAMES, OptConfig, enumerate_configs
from ..errors import SearchError

__all__ = [
    "SEARCH_STRATEGIES",
    "LocalSearch",
    "Observation",
    "Proposal",
    "RandomSearch",
    "SearchStrategy",
    "SuccessiveHalving",
    "lattice_neighbours",
    "make_strategy",
]

#: Cost-accounting tolerance: fractional successive-halving costs are
#: sums of ``r / repetitions`` terms and may carry float dust.
_EPS = 1e-9


@dataclass(frozen=True)
class Proposal:
    """One requested evaluation: a configuration and a fidelity.

    ``repetitions=None`` asks for full fidelity (every repetition the
    study measured); an integer asks for that many repetitions only —
    the successive-halving screen.
    """

    config: OptConfig
    repetitions: Optional[int] = None


@dataclass(frozen=True)
class Observation:
    """One completed evaluation, with the best-so-far trajectory.

    ``cost`` is the cumulative budget spent *after* this observation.
    ``best_median`` is a running minimum over every *full-fidelity*
    median observed so far — monotone non-increasing along the history
    by construction.  Reduced-fidelity screening observations (the
    successive-halving rungs) never enter the best-so-far: a lucky
    single-repetition median is evidence for promotion, not a
    recommendation.  ``best_config``/``best_median`` are ``None`` until
    the first full-fidelity observation lands.
    """

    config: str  # OptConfig.key()
    n_times: int  # repetitions actually observed
    median: float  # median of the observed repetitions
    cost: float
    best_config: Optional[str]
    best_median: Optional[float]

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "n_times": self.n_times,
            "median": self.median,
            "cost": self.cost,
            "best_config": self.best_config,
            "best_median": self.best_median,
        }


def _median(times: Sequence[float]) -> float:
    ordered = sorted(times)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def lattice_neighbours(config: OptConfig) -> List[OptConfig]:
    """Every configuration differing from ``config`` in one option.

    The neighbourhood of the option lattice: flip exactly one name of
    :data:`~repro.compiler.options.OPT_NAMES` on or off.  Flips that
    would violate the ``fg``/``fg8`` mutual exclusion (enabling one
    while the other is on) are not single-option flips and are
    excluded; the lattice stays connected through the configurations
    with neither enabled.
    """
    enabled = config.enabled_names()
    out: List[OptConfig] = []
    for name in OPT_NAMES:
        if name in enabled:
            flipped = enabled - {name}
        else:
            if name == "fg" and "fg8" in enabled:
                continue
            if name == "fg8" and "fg" in enabled:
                continue
            flipped = enabled | {name}
        out.append(OptConfig.from_names(flipped))
    return out


class SearchStrategy:
    """Base class: budget accounting, history, best-so-far tracking.

    Subclasses implement :meth:`_run`, a generator yielding
    :class:`Proposal` objects; between yields they read the base
    class's observation state (``_medians``, ``_fidelity``,
    ``_unavailable``).  The base enforces the protocol: propose →
    observe → propose, hard budget cap, no duplicate accounting.
    """

    name = "abstract"

    def __init__(
        self,
        pool: Optional[Sequence[OptConfig]] = None,
        *,
        budget: int,
        rng: random.Random,
        repetitions: int = 3,
    ) -> None:
        if not isinstance(rng, random.Random):
            raise SearchError(
                "a search strategy requires an explicitly injected "
                "random.Random (shared module-level RNG state would "
                "correlate draws across sharded runs)"
            )
        if budget < 1:
            raise SearchError(f"budget must be at least 1, got {budget}")
        if repetitions < 1:
            raise SearchError(
                f"repetitions must be positive, got {repetitions}"
            )
        configs = list(pool) if pool is not None else enumerate_configs()
        if not configs:
            raise SearchError("the candidate pool is empty")
        #: Canonical candidate ordering: sorted by configuration key,
        #: so the strategy is independent of dataset insertion order.
        self.pool: List[OptConfig] = sorted(configs, key=OptConfig.key)
        if len({c.key() for c in self.pool}) != len(self.pool):
            raise SearchError("the candidate pool has duplicate configs")
        self.budget = int(budget)
        self.rng = rng
        self.repetitions = int(repetitions)
        self.spent = 0.0
        self.history: List[Observation] = []
        self._by_key: Dict[str, OptConfig] = {
            c.key(): c for c in self.pool
        }
        self._fidelity: Dict[str, int] = {}  # key -> repetitions seen
        self._medians: Dict[str, float] = {}  # key -> highest-fidelity median
        self._unavailable: Set[str] = set()  # holes in the dataset
        self._best: Optional[Tuple[float, str]] = None  # (median, key)
        self._pending: Optional[Proposal] = None
        self._gen: Optional[Iterator[Proposal]] = None
        self._finished = False

    # -- protocol ----------------------------------------------------------

    def propose(self) -> Optional[Proposal]:
        """The next evaluation to run, or ``None`` when the search ends.

        Returns ``None`` once the generator is exhausted *or* the next
        desired evaluation would overrun the budget — the hard cap.
        """
        if self._pending is not None:
            raise SearchError(
                "observe() the pending proposal before proposing again"
            )
        if self._finished:
            return None
        if self._gen is None:
            self._gen = self._run()
        try:
            prop = next(self._gen)
        except StopIteration:
            self._finished = True
            return None
        if self.spent + self._cost_of(prop) > self.budget + _EPS:
            self._finished = True
            return None
        self._pending = prop
        return prop

    def observe(
        self, proposal: Proposal, times: Optional[Sequence[float]]
    ) -> None:
        """Record the measured ``times`` for a pending ``proposal``.

        ``times=None`` marks the cell as a hole (nothing was measured,
        nothing is charged).  Otherwise the incremental repetitions
        beyond the configuration's previously observed fidelity are
        charged at ``1 / repetitions`` each, the observed median updates
        the per-configuration record, and the best-so-far trajectory
        extends by one :class:`Observation`.
        """
        if self._pending is None or proposal is not self._pending:
            raise SearchError(
                "observe() must be called with the proposal returned by "
                "the immediately preceding propose()"
            )
        self._pending = None
        key = proposal.config.key()
        if times is None:
            self._unavailable.add(key)
            return
        if not times:
            raise SearchError(f"empty measurement for {key!r}")
        n = len(times)
        prev = self._fidelity.get(key, 0)
        self.spent += max(0, n - prev) / self.repetitions
        med = _median(times)
        if n >= prev:
            # Keep the highest-fidelity median per configuration —
            # screening estimates are replaced, never averaged in.
            self._medians[key] = med
        self._fidelity[key] = max(prev, n)
        # A proposal that asked for full fidelity observed the cell
        # completely (even if the study recorded fewer repetitions
        # there than the nominal count) — only those may recommend.
        full = (
            proposal.repetitions is None
            or proposal.repetitions >= self.repetitions
        )
        if full:
            candidate = (med, key)
            if self._best is None or candidate < self._best:
                self._best = candidate
        self.history.append(
            Observation(
                config=key,
                n_times=n,
                median=med,
                cost=self.spent,
                best_config=self._best[1] if self._best else None,
                best_median=self._best[0] if self._best else None,
            )
        )

    def best(self) -> Optional[Tuple[str, float]]:
        """``(config key, best observed median)`` so far, or ``None``."""
        if self._best is None:
            return None
        med, key = self._best
        return key, med

    @property
    def evaluations(self) -> int:
        """Completed observations (holes excluded)."""
        return len(self.history)

    # -- subclass interface ------------------------------------------------

    def _run(self) -> Iterator[Proposal]:
        raise NotImplementedError

    def _cost_of(self, proposal: Proposal) -> float:
        """Budget units the proposal would charge if fully satisfied."""
        r = (
            self.repetitions
            if proposal.repetitions is None
            else min(proposal.repetitions, self.repetitions)
        )
        prev = self._fidelity.get(proposal.config.key(), 0)
        return max(0, r - prev) / self.repetitions

    def _observed(self, key: str) -> bool:
        return key in self._fidelity

    def _median_of(self, key: str) -> float:
        return self._medians[key]


class RandomSearch(SearchStrategy):
    """Uniform search: evaluate configurations in a random order.

    The baseline every other strategy must beat at equal budget.
    Draws without replacement from the canonical pool; stops when the
    budget (or the pool) runs out.
    """

    name = "random"

    def _run(self) -> Iterator[Proposal]:
        for config in self.rng.sample(self.pool, len(self.pool)):
            yield Proposal(config)


class LocalSearch(SearchStrategy):
    """Diversified best-improvement hill climbing over the lattice.

    GRASP-style two-phase search.  *Probe*: spend up to three quarters
    of the budget (capped at 12 evaluations) on uniform random draws —
    at tiny budgets the lattice carries too little signal for a
    neighbourhood to beat independent samples, and the good
    configurations sit deep in the lattice where single-option flips
    from a poor start stay poor.  *Climb*: from the best configuration
    seen, evaluate every not-yet-evaluated neighbour (one flipped
    option — :func:`lattice_neighbours`) and move to the best one while
    it improves; at a local optimum, restart with a random unevaluated
    configuration and resume climbing from wherever the best-so-far
    then sits.  Neighbours are visited in sorted-key order, so only
    probe and restart picks consume randomness.
    """

    name = "local"

    #: Probe-phase cap: beyond this many diversification draws, budget
    #: is better spent climbing.
    MAX_PROBES = 12

    def _run(self) -> Iterator[Proposal]:
        remaining: Dict[str, OptConfig] = {
            c.key(): c for c in self.pool
        }
        probes = max(
            1, min(3 * self.budget // 4, self.MAX_PROBES, len(remaining))
        )
        for key in self.rng.sample(sorted(remaining), probes):
            yield Proposal(remaining.pop(key))
        while True:
            if not self._fidelity:
                # Every probe hit a hole: keep probing.
                if not remaining:
                    return
                yield Proposal(
                    remaining.pop(self.rng.choice(sorted(remaining)))
                )
                continue
            current = min(
                self._fidelity, key=lambda k: (self._median_of(k), k)
            )
            improved = True
            while improved:
                improved = False
                neighbours = [
                    k
                    for k in sorted(
                        n.key()
                        for n in lattice_neighbours(self._by_key[current])
                    )
                    if k in remaining
                ]
                for key in neighbours:
                    yield Proposal(remaining.pop(key))
                evaluated = [
                    k for k in neighbours if self._observed(k)
                ]
                if not evaluated:
                    continue
                best_n = min(
                    evaluated, key=lambda k: (self._median_of(k), k)
                )
                if self._median_of(best_n) < self._median_of(current):
                    current = best_n
                    improved = True
            if not remaining:
                return
            yield Proposal(
                remaining.pop(self.rng.choice(sorted(remaining)))
            )


class SuccessiveHalving(SearchStrategy):
    """Screen wide at low fidelity, promote the best half upward.

    Fidelity rungs double from one repetition up to full fidelity; the
    candidate count is chosen as the largest the budget affords under
    halving promotion, so a budget of B units screens far more than B
    configurations.  Rankings within a rung use the median at that
    rung's fidelity, ties broken by configuration key.  When the budget
    covers the whole pool at full fidelity, the strategy runs the
    exhaustive sweep instead — screening cannot beat affording
    everything, and this makes ``budget >= len(pool)`` recover the
    oracle exactly.
    """

    name = "halving"

    def __init__(self, *args, eta: int = 2, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if eta < 2:
            raise SearchError(f"halving factor eta must be >= 2, got {eta}")
        self.eta = int(eta)

    def _rungs(self) -> List[int]:
        """Fidelity schedule: 1, eta, eta^2, ... capped at full."""
        fidelities: List[int] = []
        r = 1
        while r < self.repetitions:
            fidelities.append(r)
            r = min(self.repetitions, r * self.eta)
        fidelities.append(self.repetitions)
        return fidelities

    def _plan_cost(self, n0: int, rungs: Sequence[int]) -> float:
        """Budget units of screening ``n0`` configs down the rungs."""
        total = 0.0
        count = n0
        prev = 0
        for fidelity in rungs:
            total += count * (fidelity - prev) / self.repetitions
            prev = fidelity
            count = max(1, math.ceil(count / self.eta))
        return total

    def _run(self) -> Iterator[Proposal]:
        if self.budget >= len(self.pool):
            for config in self.rng.sample(self.pool, len(self.pool)):
                yield Proposal(config)
            return
        rungs = self._rungs()
        n0 = 1
        for n in range(len(self.pool), 0, -1):
            if self._plan_cost(n, rungs) <= self.budget + _EPS:
                n0 = n
                break
        survivors = self.rng.sample(self.pool, n0)
        for i, fidelity in enumerate(rungs):
            for config in sorted(survivors, key=OptConfig.key):
                yield Proposal(config, repetitions=fidelity)
            ranked = sorted(
                (c for c in survivors if self._observed(c.key())),
                key=lambda c: (self._median_of(c.key()), c.key()),
            )
            if not ranked:
                return  # every candidate was a hole
            if i + 1 < len(rungs):
                survivors = ranked[
                    : max(1, math.ceil(len(ranked) / self.eta))
                ]
        # Spend any leftover budget: first confirm the best screened
        # configurations at full fidelity (a screening median may never
        # recommend — see Observation), then widen with unevaluated
        # configurations in random order.
        for key in sorted(
            self._fidelity, key=lambda k: (self._median_of(k), k)
        ):
            if self._fidelity[key] < self.repetitions:
                yield Proposal(self._by_key[key])
        fresh = [
            c
            for c in self.pool
            if not self._observed(c.key())
            and c.key() not in self._unavailable
        ]
        for config in self.rng.sample(fresh, len(fresh)):
            yield Proposal(config)


#: Registry of search strategies by CLI/experiment name.
SEARCH_STRATEGIES: Dict[str, type] = {
    RandomSearch.name: RandomSearch,
    LocalSearch.name: LocalSearch,
    SuccessiveHalving.name: SuccessiveHalving,
}


def make_strategy(
    name: str,
    pool: Optional[Sequence[OptConfig]] = None,
    *,
    budget: int,
    rng: random.Random,
    repetitions: int = 3,
) -> SearchStrategy:
    """Instantiate a registered strategy by name."""
    try:
        cls = SEARCH_STRATEGIES[name]
    except KeyError:
        raise SearchError(
            f"unknown search strategy {name!r}; known: "
            f"{', '.join(sorted(SEARCH_STRATEGIES))}"
        ) from None
    return cls(pool, budget=budget, rng=rng, repetitions=repetitions)
