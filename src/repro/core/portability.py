"""Cross-chip portability analyses (paper Section II, Figs 1-2, Table II).

These consume only oracle queries over the dataset:

* **cross-chip heatmap** (Fig 1) — how much a chip slows down when run
  with optimisation settings that are optimal for another chip;
* **performance envelope** (Table II) — each chip's most extreme
  speedup and slowdown over the baseline, with the responsible
  application and input;
* **top-speedup optimisations** (Fig 2) — which optimisations appear
  in each chip's per-test oracle configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.options import BASELINE, OPT_NAMES, OptConfig
from ..study.dataset import PerfDataset, TestCase
from .significance import classify_outcome
from .stats.summary import geomean, median

__all__ = [
    "cross_chip_heatmap",
    "EnvelopeEntry",
    "performance_envelope",
    "top_speedup_opts",
    "max_geomean_speedup",
]


def cross_chip_heatmap(
    dataset: PerfDataset,
) -> Tuple[List[str], Dict[Tuple[str, str], float]]:
    """Fig 1: geomean slowdown of chip-B-optimal settings on chip A.

    Returns the chip order and a map (run_chip, opt_chip) → geomean
    slowdown over all (application, input) pairs; the diagonal is 1.0
    by construction.
    """
    chips = dataset.chips
    pairs = sorted({(t.app, t.graph) for t in dataset.tests})
    # Oracle configuration of every (app, input, chip).
    best: Dict[Tuple[str, str, str], OptConfig] = {}
    for test in dataset.tests:
        best[(test.app, test.graph, test.chip)] = dataset.best_config(test)

    heat: Dict[Tuple[str, str], float] = {}
    for run_chip in chips:
        for opt_chip in chips:
            ratios = []
            for app, graph in pairs:
                test = TestCase(app, graph, run_chip)
                own_cfg = best.get((app, graph, run_chip))
                opt_cfg = best.get((app, graph, opt_chip))
                if own_cfg is None or opt_cfg is None:
                    continue
                own_times = dataset.times_or_none(test, own_cfg)
                ported_times = dataset.times_or_none(test, opt_cfg)
                if own_times is None or ported_times is None:
                    # Degraded dataset: the ported configuration was
                    # never measured on this chip; the geomean is over
                    # the pairs that were.
                    continue
                ratios.append(median(ported_times) / median(own_times))
            heat[(run_chip, opt_chip)] = (
                geomean(ratios) if ratios else float("nan")
            )
    return chips, heat


@dataclass(frozen=True)
class EnvelopeEntry:
    """One side of Table II's envelope for a chip."""

    chip: str
    app: str
    graph: str
    config: OptConfig
    factor: float  # speedup (>1) or slowdown (>1, i.e. base/config inverted)


def performance_envelope(
    dataset: PerfDataset,
) -> Dict[str, Tuple[EnvelopeEntry, EnvelopeEntry]]:
    """Table II: per chip, the extreme speedup and slowdown vs baseline.

    Only statistically significant outcomes qualify, matching the
    paper's definitions of speedup and slowdown.
    """
    result: Dict[str, Tuple[EnvelopeEntry, EnvelopeEntry]] = {}
    for chip in dataset.chips:
        best_entry: Optional[EnvelopeEntry] = None
        worst_entry: Optional[EnvelopeEntry] = None
        for test in dataset.tests_where(chip=chip):
            base = dataset.times_or_none(test, BASELINE)
            if base is None:
                continue
            base_med = median(base)
            for config in dataset.configs:
                if config.is_baseline:
                    continue
                times = dataset.times_or_none(test, config)
                if times is None:
                    continue
                outcome = classify_outcome(base, times)
                if outcome == "no-change":
                    continue
                speedup = base_med / median(times)
                if outcome == "speedup" and (
                    best_entry is None or speedup > best_entry.factor
                ):
                    best_entry = EnvelopeEntry(
                        chip, test.app, test.graph, config, speedup
                    )
                elif outcome == "slowdown" and (
                    worst_entry is None or 1.0 / speedup > worst_entry.factor
                ):
                    worst_entry = EnvelopeEntry(
                        chip, test.app, test.graph, config, 1.0 / speedup
                    )
        if best_entry is None:
            best_entry = EnvelopeEntry(chip, "-", "-", BASELINE, 1.0)
        if worst_entry is None:
            worst_entry = EnvelopeEntry(chip, "-", "-", BASELINE, 1.0)
        result[chip] = (best_entry, worst_entry)
    return result


def top_speedup_opts(
    dataset: PerfDataset, threshold: float = 0.0
) -> Dict[str, Dict[str, int]]:
    """Fig 2: per chip, how often each optimisation appears in the
    per-test oracle configuration (counted over tests whose oracle
    speedup exceeds ``threshold``)."""
    counts: Dict[str, Dict[str, int]] = {
        chip: {opt: 0 for opt in OPT_NAMES} for chip in dataset.chips
    }
    for test in dataset.tests:
        base = dataset.times_or_none(test, BASELINE)
        if base is None:
            continue
        best = dataset.best_config(test)
        if median(base) / median(dataset.times(test, best)) <= 1.0 + threshold:
            continue
        for opt in best.enabled_names():
            counts[test.chip][opt] += 1
    return counts


def max_geomean_speedup(
    dataset: PerfDataset, tests: Optional[Sequence[TestCase]] = None
) -> float:
    """Section II-B's headline: the oracle's geomean speedup over baseline."""
    tests = list(tests) if tests is not None else dataset.tests
    ratios = []
    for test in tests:
        base = dataset.times_or_none(test, BASELINE)
        if base is None:
            continue
        best = median(dataset.times(test, dataset.best_config(test)))
        ratios.append(median(base) / best)
    return geomean(ratios)
