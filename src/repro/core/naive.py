"""The naive portability analyses the paper shows to fall short (II-C).

Each treats one optimisation *combination* as a candidate global
policy, applied to every (application, input, chip) tuple:

* **do no harm** — keep only combinations that never cause a
  significant slowdown (degenerates to the baseline on this domain);
* **fewest slowdowns** — the combination with the fewest significant
  slowdowns (trivially weak speedups);
* **maximise geomean** — the combination with the best geometric-mean
  speedup (biased towards optimisation-sensitive chips, Table IV).

The ranking these produce is the paper's Table III; the per-chip bias
breakdown is Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..compiler.options import BASELINE, OptConfig
from ..study.dataset import PerfDataset, TestCase
from .significance import classify_outcome
from .stats.summary import geomean, median

__all__ = [
    "ConfigRanking",
    "rank_configurations",
    "do_no_harm",
    "fewest_slowdowns",
    "max_geomean",
    "per_chip_breakdown",
]


@dataclass(frozen=True)
class ConfigRanking:
    """One row of Table III: a configuration's global record."""

    config: OptConfig
    slowdowns: int
    speedups: int
    geomean_speedup: float
    max_speedup: float
    max_slowdown: float

    @property
    def label(self) -> str:
        return self.config.label()


def _outcomes(
    dataset: PerfDataset, config: OptConfig, tests: Sequence[TestCase]
) -> ConfigRanking:
    slow = fast = 0
    ratios: List[float] = []
    best = 1.0
    worst = 1.0
    for test in tests:
        base_times = dataset.times_or_none(test, BASELINE)
        times = dataset.times_or_none(test, config)
        if base_times is None or times is None:
            continue
        outcome = classify_outcome(base_times, times)
        speedup = median(base_times) / median(times)
        ratios.append(speedup)
        if outcome == "slowdown":
            slow += 1
            worst = max(worst, 1.0 / speedup)
        elif outcome == "speedup":
            fast += 1
            best = max(best, speedup)
    return ConfigRanking(
        config=config,
        slowdowns=slow,
        speedups=fast,
        geomean_speedup=geomean(ratios),
        max_speedup=best,
        max_slowdown=worst,
    )


def rank_configurations(
    dataset: PerfDataset,
    tests: Optional[Sequence[TestCase]] = None,
    configs: Optional[Sequence[OptConfig]] = None,
) -> List[ConfigRanking]:
    """Table III: all non-baseline combinations ranked by #slowdowns.

    Ties broken by #speedups (descending) then geomean (descending),
    so the ranking is deterministic.
    """
    tests = list(tests) if tests is not None else dataset.tests
    if configs is None:
        configs = [c for c in dataset.configs if not c.is_baseline]
    rankings = [_outcomes(dataset, c, tests) for c in configs]
    rankings.sort(
        key=lambda r: (r.slowdowns, -r.speedups, -r.geomean_speedup, r.label)
    )
    return rankings


def do_no_harm(
    dataset: PerfDataset, tests: Optional[Sequence[TestCase]] = None
) -> OptConfig:
    """The do-no-harm pick: no slowdown anywhere, else the baseline."""
    for ranking in rank_configurations(dataset, tests):
        if ranking.slowdowns == 0:
            return ranking.config
        break  # ranked by slowdowns: if the first harms, all do
    return BASELINE


def fewest_slowdowns(
    dataset: PerfDataset, tests: Optional[Sequence[TestCase]] = None
) -> ConfigRanking:
    """The harm-the-fewest pick (Table III rank 0)."""
    return rank_configurations(dataset, tests)[0]


def max_geomean(
    dataset: PerfDataset, tests: Optional[Sequence[TestCase]] = None
) -> ConfigRanking:
    """The maximise-geomean pick (Table III rank 12 in the paper)."""
    rankings = rank_configurations(dataset, tests)
    return max(rankings, key=lambda r: r.geomean_speedup)


def per_chip_breakdown(
    dataset: PerfDataset, config: OptConfig
) -> Dict[str, ConfigRanking]:
    """Table IV: a global configuration's record split per chip.

    Exposes the magnitude-bias failure mode: a config with a high
    global geomean can systematically harm the chips that are least
    sensitive to optimisation.
    """
    return {
        chip: _outcomes(dataset, config, dataset.tests_where(chip=chip))
        for chip in dataset.chips
    }
