"""Sample-efficiency analysis (the paper's Section IX future work).

The study uses an *exhaustive* set of runtime results — every
configuration measured for every test.  The paper asks whether smaller
samples from the test domain would suffice, which would cut
experimental time and open the door to larger domains.

This module answers the question over our dataset: Algorithm 1 is run
against random subsets of the measured configurations and its
decisions are compared with the exhaustive ones.  Because the analysis
skips comparison pairs it cannot form (a sampled configuration whose
mirror was not sampled still pairs against it only if both are
present), subsampling simply thins the A/B lists — exactly what
collecting less data would do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.options import OPT_NAMES, OptConfig, enumerate_configs
from ..errors import AnalysisError
from ..study.dataset import PerfDataset
from ..util import stable_hash
from .algorithm1 import Analysis, OptDecision

__all__ = [
    "subsample_configs",
    "restrict_dataset",
    "decision_agreement",
    "AgreementPoint",
    "sample_efficiency_curve",
]


def subsample_configs(
    n_configs: int,
    seed: int = 0,
    pool: Optional[Sequence[OptConfig]] = None,
    *,
    rng: Optional[random.Random] = None,
) -> List[OptConfig]:
    """A random subset of the optimisation space of size ``n_configs``.

    The baseline is always included (it anchors the speedup/slowdown
    vocabulary); the rest are drawn uniformly without replacement.

    All randomness comes from ``rng``, an explicitly-passed
    ``random.Random``; when omitted, a private instance is derived from
    ``stable_hash("subsample", n_configs, seed)``.  There is no shared
    module-level RNG state, so concurrently sharded runs (``--jobs``)
    can never correlate draws — the same guarantee as
    :mod:`repro.core.search`.
    """
    pool = list(pool) if pool is not None else enumerate_configs()
    non_baseline = [c for c in pool if not c.is_baseline]
    if not 1 <= n_configs <= len(non_baseline) + 1:
        raise AnalysisError(
            f"n_configs must be in [1, {len(non_baseline) + 1}] "
            f"(got {n_configs})"
        )
    if rng is None:
        rng = random.Random(stable_hash("subsample", n_configs, seed))
    chosen = rng.sample(range(len(non_baseline)), n_configs - 1)
    return [OptConfig()] + [non_baseline[i] for i in sorted(chosen)]


def restrict_dataset(
    dataset: PerfDataset, configs: Sequence[OptConfig]
) -> PerfDataset:
    """A copy of ``dataset`` containing only the given configurations."""
    keep = {c.key() for c in configs}
    out = PerfDataset()
    for test, config, times in dataset.iter_measurements():
        if config.key() in keep:
            out.add(test, config, times)
    return out


def decision_agreement(
    reference: Dict[str, OptDecision], candidate: Dict[str, OptDecision]
) -> float:
    """Fraction of optimisations on which two analyses agree.

    Agreement means the same enabled/disabled verdict; an inconclusive
    candidate decision counts as disagreement unless the reference is
    also inconclusive (less data should not get credit for shrugging).
    """
    agree = 0
    for opt in OPT_NAMES:
        ref, cand = reference[opt], candidate[opt]
        if ref.inconclusive and cand.inconclusive:
            agree += 1
        elif not ref.inconclusive and not cand.inconclusive:
            agree += ref.enabled == cand.enabled
    return agree / len(OPT_NAMES)


@dataclass(frozen=True)
class AgreementPoint:
    """Agreement with the exhaustive analysis at one sample size."""

    n_configs: int
    mean_agreement: float
    min_agreement: float
    n_trials: int


def sample_efficiency_curve(
    dataset: PerfDataset,
    sizes: Sequence[int] = (8, 16, 32, 48, 64, 96),
    trials: int = 3,
    dims: Tuple[str, ...] = ("chip",),
    analysis: Optional[Analysis] = None,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> List[AgreementPoint]:
    """Decision agreement vs the exhaustive analysis per sample size.

    For each size, ``trials`` random configuration subsets are drawn;
    Algorithm 1 runs on each restricted dataset at the given
    specialisation, and its per-partition decisions are compared with
    the exhaustive ones.  Returns one point per size with mean and
    worst-case agreement across trials and partitions.

    One ``random.Random`` — ``rng``, or a private instance derived from
    ``stable_hash("sampling", seed, trials)`` — is threaded through
    every (size, trial) draw in order, so distinct trials draw distinct
    subsets and no draw shares state with anything outside this call.
    """
    if analysis is None:
        analysis = Analysis(dataset)
    if rng is None:
        rng = random.Random(stable_hash("sampling", seed, trials))
    reference = analysis.specialise_decisions(dims)

    points: List[AgreementPoint] = []
    for size in sizes:
        agreements: List[float] = []
        for trial in range(trials):
            configs = subsample_configs(size, rng=rng)
            restricted = restrict_dataset(dataset, configs)
            sub = Analysis(
                restricted,
                confidence=analysis.confidence,
                alpha=analysis.alpha,
                min_samples=analysis.min_samples,
            )
            candidate = sub.specialise_decisions(dims)
            for key, ref_decisions in reference.items():
                agreements.append(
                    decision_agreement(ref_decisions, candidate[key])
                )
        points.append(
            AgreementPoint(
                n_configs=size,
                mean_agreement=float(np.mean(agreements)),
                min_agreement=float(np.min(agreements)),
                n_trials=trials,
            )
        )
    return points
