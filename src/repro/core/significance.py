"""The per-comparison 95 % CI significance filter (Algorithm 1, line 14).

Before a runtime ratio enters the rank analysis, the paper requires
the difference between the two timing samples to be statistically
significant at 95 % confidence.  With the study's three repetitions
per measurement this is a Welch confidence interval on the difference
of means: the comparison is significant when the interval excludes
zero.

The same filter defines the paper's vocabulary: a configuration gives
a test a *speedup* (or *slowdown*) only when its timings differ
significantly from the baseline's and the median moved in the
corresponding direction.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .. import obs
from .stats.summary import median
from .stats.tdist import t_ppf

__all__ = ["significant_difference", "classify_outcome", "welch_interval"]


def welch_interval(
    a: Sequence[float], b: Sequence[float], confidence: float = 0.95
):
    """Welch CI for mean(a) - mean(b); returns (low, high).

    Degenerate zero-variance samples get a tiny floor variance so the
    interval stays well-defined (timing data is never exactly
    constant, but simulated data can be).
    """
    obs.count("analysis.welch_intervals")
    a = np.asarray(list(a), dtype=np.float64)
    b = np.asarray(list(b), dtype=np.float64)
    if a.size < 2 or b.size < 2:
        raise ValueError("Welch interval needs at least two samples per side")
    va = max(float(a.var(ddof=1)), 1e-24)
    vb = max(float(b.var(ddof=1)), 1e-24)
    na, nb = a.size, b.size
    se_sq = va / na + vb / nb
    df = se_sq ** 2 / (
        (va / na) ** 2 / (na - 1) + (vb / nb) ** 2 / (nb - 1)
    )
    t_crit = t_ppf(0.5 + confidence / 2.0, max(df, 1.0))
    diff = float(a.mean() - b.mean())
    half = t_crit * math.sqrt(se_sq)
    return diff - half, diff + half


def significant_difference(
    a: Sequence[float], b: Sequence[float], confidence: float = 0.95
) -> bool:
    """Whether two timing samples differ at the given confidence.

    A side with fewer than two repetitions carries no variance
    information, so no confidence interval — and hence no significant
    difference — can be established: single-repetition (degraded)
    data classifies as no-change instead of crashing the analysis.
    """
    a, b = list(a), list(b)
    if len(a) < 2 or len(b) < 2:
        obs.count("analysis.pairs.single_sample")
        return False
    low, high = welch_interval(a, b, confidence)
    return low > 0.0 or high < 0.0


def classify_outcome(
    baseline_times: Sequence[float],
    times: Sequence[float],
    confidence: float = 0.95,
) -> str:
    """The paper's outcome vocabulary: speedup / slowdown / no-change.

    A significant difference with a lower median is a ``"speedup"``,
    with a higher median a ``"slowdown"``; anything else is
    ``"no-change"``.
    """
    if not significant_difference(times, baseline_times, confidence):
        return "no-change"
    return "speedup" if median(times) < median(baseline_times) else "slowdown"
