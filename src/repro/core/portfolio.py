"""Multi-version portfolios: the "few fit most" greedy set-cover.

The paper shows no single configuration is best everywhere; *A Few Fit
Most* (Hochgraf & Pai, PAPERS.md) asks the natural follow-up: how many
configurations K must a deployment ship so that, picking the best of
the K per test, it achieves at least X % of oracle performance?  This
module answers that question for every specialisation level of the
paper's Table V lattice.

**Coverage metric.**  For a partition's tests and a configuration set
``S``, coverage is the geometric mean over tests of::

    median(oracle) / median(best config of S measured for the test)

— the fraction of exhaustively-tuned performance the portfolio
retains, in ``(0, 1]``.  A test where *no* configuration of ``S`` was
measured contributes ``median(oracle) / median(worst measured
config)`` (the pessimal deploy), so adding a configuration can never
lower coverage and the curve is exactly monotone in K.  Tests with no
measurements at all are skipped — the same degraded-mode semantics as
:func:`repro.core.evaluation.strategy_slowdown_vs_oracle`.

**Greedy construction.**  The first configuration is the Algorithm 1
strategy's recommendation for the partition (so a K = 1 portfolio *is*
the paper's strategy, by construction); each subsequent step adds the
configuration with the largest marginal coverage gain, ties broken by
lexicographic configuration key.  The curve stops when coverage
reaches 1.0 (per-test best of ``S`` equals the oracle everywhere), no
candidate gains, or ``k_max`` is hit — so ``coverage_at(len(configs))``
is always 1.0, the oracle.  All candidate orderings are canonical
(sorted tests, sorted configuration keys), making the output
independent of dataset insertion order.

The result is a :class:`PortfolioSet`: one :class:`PortfolioCurve` per
lattice partition, each a list of :class:`PortfolioStep` entries
carrying the chosen configuration, the cumulative coverage and the
marginal gain — the provenance a K-vs-coverage figure plots and the
``portfolios`` table of the strategy-index artifact serializes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from ..study.dataset import Coverage, PerfDataset, TestCase
from ..util import geomean
from .algorithm1 import Analysis
from .strategies import STRATEGY_DIMS, Strategy, build_strategies

__all__ = [
    "DEFAULT_TARGET",
    "PORTFOLIO_LEVELS",
    "PortfolioCurve",
    "PortfolioSet",
    "PortfolioStep",
    "build_portfolios",
    "greedy_portfolio",
    "portfolio_coverage",
]

#: Default fraction-of-oracle target when a query names neither ``k``
#: nor ``target``: the portfolio is grown until per-cell best-of-K
#: retains at least this fraction of exhaustive tuning.
DEFAULT_TARGET = 0.95

#: The lattice levels portfolios are computed for — every Algorithm 1
#: specialisation (the ``baseline`` level has no choice to make).
PORTFOLIO_LEVELS: Tuple[str, ...] = tuple(STRATEGY_DIMS)


@dataclass(frozen=True)
class PortfolioStep:
    """One greedy step: the configuration added and what it bought."""

    config: str  # OptConfig.key()
    coverage: float  # cumulative fraction-of-oracle after this step
    gain: float  # marginal coverage gain over the previous step

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "coverage": self.coverage,
            "gain": self.gain,
        }


@dataclass
class PortfolioCurve:
    """The K-vs-coverage curve of one lattice partition."""

    level: str
    key: Tuple[str, ...]
    steps: List[PortfolioStep] = field(default_factory=list)
    #: Tests of the partition with at least one measurement.
    n_tests: int = 0

    def coverage_at(self, k: int) -> float:
        """Fraction of oracle retained by the first ``k`` configs.

        ``k`` beyond the curve returns the final coverage (the greedy
        stops once nothing more can be gained); ``k < 1`` raises.
        """
        if k < 1:
            raise AnalysisError(f"portfolio size k must be positive, got {k}")
        if not self.steps:
            return 1.0
        return self.steps[min(k, len(self.steps)) - 1].coverage

    def configs_for(self, k: int) -> List[str]:
        """The first ``min(k, len(curve))`` configuration keys."""
        if k < 1:
            raise AnalysisError(f"portfolio size k must be positive, got {k}")
        return [step.config for step in self.steps[:k]]

    def k_for(self, target: float) -> int:
        """The smallest K whose coverage meets ``target``.

        Every curve ends at coverage 1.0, so any ``target <= 1`` is
        reachable; targets above 1 are rejected upstream.
        """
        for i, step in enumerate(self.steps):
            if step.coverage >= target:
                return i + 1
        return max(1, len(self.steps))

    def to_dict(self) -> dict:
        return {
            "key": list(self.key),
            "n_tests": self.n_tests,
            "steps": [step.to_dict() for step in self.steps],
        }

    @classmethod
    def from_dict(cls, level: str, data: dict) -> "PortfolioCurve":
        try:
            return cls(
                level=level,
                key=tuple(data["key"]),
                steps=[
                    PortfolioStep(
                        config=raw["config"],
                        coverage=raw["coverage"],
                        gain=raw["gain"],
                    )
                    for raw in data["steps"]
                ],
                n_tests=data["n_tests"],
            )
        except (KeyError, TypeError) as exc:
            raise AnalysisError(
                f"malformed portfolio curve at level {level!r}: {exc!r}"
            ) from exc


def _partition_medians(
    dataset: PerfDataset, tests: Sequence[TestCase]
) -> List[Dict[str, float]]:
    """Per test: config key -> median, for every measured cell."""
    rows: List[Dict[str, float]] = []
    for test in sorted(tests):
        medians: Dict[str, float] = {}
        for config in dataset.configs:
            times = dataset.times_or_none(test, config)
            if times is not None:
                ordered = sorted(times)
                n = len(ordered)
                mid = n // 2
                medians[config.key()] = (
                    ordered[mid]
                    if n % 2
                    else (ordered[mid - 1] + ordered[mid]) / 2.0
                )
        if medians:
            rows.append(medians)
    return rows


def _coverage_of(rows: Sequence[Dict[str, float]], configs: Sequence[str]) -> float:
    """Geomean fraction-of-oracle of a configuration set over ``rows``."""
    chosen = set(configs)
    ratios: List[float] = []
    for medians in rows:
        oracle = min(medians.values())
        deployed = [m for key, m in medians.items() if key in chosen]
        best = min(deployed) if deployed else max(medians.values())
        ratios.append(oracle / best)
    return geomean(ratios)


def portfolio_coverage(
    dataset: PerfDataset,
    tests: Sequence[TestCase],
    configs: Sequence[str],
) -> float:
    """Fraction of oracle a configuration set retains over ``tests``.

    Geomean over tests of ``median(oracle) / median(best of configs)``;
    a test none of ``configs`` was measured for counts its worst
    measured configuration (the pessimal deploy), and tests with no
    measurements at all are skipped.
    """
    return _coverage_of(_partition_medians(dataset, tests), configs)


def greedy_portfolio(
    dataset: PerfDataset,
    tests: Sequence[TestCase],
    *,
    level: str,
    key: Tuple[str, ...],
    seed: Optional[str] = None,
    k_max: Optional[int] = None,
) -> PortfolioCurve:
    """The greedy set-cover curve for one partition.

    ``seed`` (the Algorithm 1 strategy's configuration for this
    partition) is taken first so K = 1 reproduces the paper's strategy;
    subsequent steps add the configuration with the largest marginal
    coverage gain, ties broken by lexicographic configuration key.
    Stops at coverage 1.0, at ``k_max``, or when no candidate gains.
    """
    rows = _partition_medians(dataset, tests)
    curve = PortfolioCurve(level=level, key=key, n_tests=len(rows))
    if not rows:
        return curve
    candidates = sorted({key for medians in rows for key in medians})
    chosen: List[str] = []
    coverage = 0.0
    if seed is not None:
        chosen.append(seed)
        coverage = _coverage_of(rows, chosen)
        curve.steps.append(
            PortfolioStep(config=seed, coverage=coverage, gain=coverage)
        )
    while coverage < 1.0 and (k_max is None or len(chosen) < k_max):
        best_key: Optional[str] = None
        best_cov = coverage
        for candidate in candidates:
            if candidate in chosen:
                continue
            cov = _coverage_of(rows, chosen + [candidate])
            if cov > best_cov:
                best_key, best_cov = candidate, cov
        if best_key is None:
            break
        chosen.append(best_key)
        curve.steps.append(
            PortfolioStep(
                config=best_key,
                coverage=best_cov,
                gain=best_cov - coverage,
            )
        )
        coverage = best_cov
    return curve


class PortfolioSet:
    """Every lattice partition's K-vs-coverage curve, queryable."""

    def __init__(
        self,
        levels: Dict[str, Dict[Tuple[str, ...], PortfolioCurve]],
        coverage: Optional[Coverage] = None,
    ) -> None:
        self.levels = levels
        #: Cell coverage of the dataset the portfolios were derived
        #: from (for footnoting degraded derivations).
        self.coverage = coverage

    @property
    def n_curves(self) -> int:
        return sum(len(cells) for cells in self.levels.values())

    def curve(
        self, level: str, key: Sequence[str]
    ) -> Optional[PortfolioCurve]:
        return self.levels.get(level, {}).get(tuple(key))

    def to_dict(self) -> dict:
        return {
            level: [
                curve.to_dict() for _, curve in sorted(cells.items())
            ]
            for level, cells in self.levels.items()
        }

    @classmethod
    def from_dict(
        cls, data: dict, coverage: Optional[Coverage] = None
    ) -> "PortfolioSet":
        if not isinstance(data, dict):
            raise AnalysisError(
                "malformed portfolio payload: expected a mapping of "
                "levels to curve lists"
            )
        levels: Dict[str, Dict[Tuple[str, ...], PortfolioCurve]] = {}
        for level, curves in data.items():
            if level not in PORTFOLIO_LEVELS:
                raise AnalysisError(
                    f"unknown portfolio level {level!r}; expected one "
                    f"of {PORTFOLIO_LEVELS}"
                )
            cells: Dict[Tuple[str, ...], PortfolioCurve] = {}
            for raw in curves:
                curve = PortfolioCurve.from_dict(level, raw)
                cells[curve.key] = curve
            levels[level] = cells
        return cls(levels, coverage=coverage)


def build_portfolios(
    dataset: PerfDataset,
    *,
    analysis: Optional[Analysis] = None,
    strategies: Optional[Dict[str, Strategy]] = None,
    k_max: Optional[int] = None,
    levels: Optional[Sequence[str]] = None,
) -> PortfolioSet:
    """Greedy portfolios for every partition of every lattice level.

    The dataset is expected to be audited already (quarantined cells
    removed — :func:`repro.study.audit.audit_dataset`); holes degrade
    coverage, not correctness.  ``analysis`` and ``strategies`` allow
    reuse of an existing Algorithm 1 run.
    """
    if analysis is None:
        analysis = Analysis(dataset)
    if strategies is None:
        strategies = build_strategies(dataset, analysis)
    wanted = tuple(levels) if levels is not None else PORTFOLIO_LEVELS
    unknown = set(wanted) - set(PORTFOLIO_LEVELS)
    if unknown:
        raise AnalysisError(
            f"unknown portfolio level(s) {sorted(unknown)}; expected a "
            f"subset of {PORTFOLIO_LEVELS}"
        )
    out: Dict[str, Dict[Tuple[str, ...], PortfolioCurve]] = {}
    for level in wanted:
        dims = STRATEGY_DIMS[level]
        partitions = analysis.partitions(dims)
        cells: Dict[Tuple[str, ...], PortfolioCurve] = {}
        for key in sorted(partitions):
            seed_config = strategies[level].assignment.get(key)
            cells[key] = greedy_portfolio(
                dataset,
                partitions[key],
                level=level,
                key=key,
                seed=seed_config.key() if seed_config is not None else None,
                k_max=k_max,
            )
        out[level] = cells
    return PortfolioSet(out, coverage=analysis.coverage)


def main(argv=None) -> int:
    """CLI: ``python -m repro portfolio DATASET``."""
    import argparse
    import sys

    from ..cli import metrics_parent, save_run_report
    from ..errors import DatasetError, InsufficientCoverageError
    from ..obs import Recorder, recording
    from ..study.audit import (
        DEFAULT_COVERAGE_FLOOR,
        audit_dataset,
        require_coverage,
    )

    parser = argparse.ArgumentParser(
        prog="repro-portfolio",
        parents=[metrics_parent()],
        description=(
            "Compute greedy K-vs-coverage configuration portfolios for "
            "every lattice level of a study dataset."
        ),
    )
    parser.add_argument("dataset", help="input PerfDataset JSON (.gz ok)")
    parser.add_argument(
        "--target",
        type=float,
        default=DEFAULT_TARGET,
        metavar="FRACTION",
        help=(
            "fraction-of-oracle target for the K-to-reach column "
            f"(default {DEFAULT_TARGET})"
        ),
    )
    parser.add_argument(
        "--k-max",
        type=int,
        default=None,
        metavar="N",
        help="cap portfolio size (default: grow until 100%% of oracle)",
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=DEFAULT_COVERAGE_FLOOR,
        metavar="FRACTION",
        help=(
            "refuse to analyse below this audited cell-coverage "
            f"fraction (default {DEFAULT_COVERAGE_FLOOR})"
        ),
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="also write the portfolio curves as JSON to PATH",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.target <= 1.0:
        print("[portfolio] --target must be in (0, 1]", file=sys.stderr)
        return 1
    if args.k_max is not None and args.k_max < 1:
        print("[portfolio] --k-max must be positive", file=sys.stderr)
        return 1

    try:
        dataset = PerfDataset.load(args.dataset)
    except DatasetError as exc:
        print(f"[portfolio] {exc}", file=sys.stderr)
        return 1
    audit = audit_dataset(dataset)
    try:
        require_coverage(audit.coverage, args.min_coverage)
    except InsufficientCoverageError as exc:
        print(f"[portfolio] {exc}", file=sys.stderr)
        return 1

    from ..experiments import portfolio_curve as experiment

    rec = Recorder() if args.metrics else None

    def _render() -> str:
        portfolios = build_portfolios(audit.dataset, k_max=args.k_max)
        if args.output:
            with open(args.output, "w") as f:
                json.dump(portfolios.to_dict(), f, sort_keys=True)
            print(f"[portfolio] wrote {args.output}", file=sys.stderr)
        return experiment.run(
            audit.dataset, portfolios=portfolios, target=args.target
        )

    if rec is not None:
        with recording(rec):
            with rec.span("portfolio.build"):
                output = _render()
    else:
        output = _render()
    print(output)
    if rec is not None:
        save_run_report(rec, args.metrics, meta={"dataset": args.dataset})
        print(
            f"[portfolio] wrote run report to {args.metrics}",
            file=sys.stderr,
        )
    return 0
