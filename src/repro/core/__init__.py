"""Analysis core: the paper's rank-based specialisation methodology.

This package is the primary contribution of the paper being
reproduced: a magnitude-agnostic statistical procedure (Algorithm 1)
that turns a performance dataset into optimisation strategies at every
degree of specialisation over {chip, application, input}, plus the
naive analyses it improves upon and the portability quantifications
built on top.
"""

from .ablation import (
    ConfidencePoint,
    MagnitudeComparison,
    confidence_ablation,
    magnitude_decide,
    magnitude_vs_rank,
)
from .algorithm1 import Analysis, OptDecision, SPECIALISATION_DIMS
from .sampling import (
    AgreementPoint,
    decision_agreement,
    restrict_dataset,
    sample_efficiency_curve,
    subsample_configs,
)
from .evaluation import (
    StrategyOutcomes,
    evaluate_strategies,
    optimisable_tests,
    strategy_outcomes,
    strategy_slowdown_vs_oracle,
)
from .naive import (
    ConfigRanking,
    do_no_harm,
    fewest_slowdowns,
    max_geomean,
    per_chip_breakdown,
    rank_configurations,
)
from .portfolio import (
    DEFAULT_TARGET,
    PORTFOLIO_LEVELS,
    PortfolioCurve,
    PortfolioSet,
    PortfolioStep,
    build_portfolios,
    greedy_portfolio,
    portfolio_coverage,
)
from .search import (
    SEARCH_STRATEGIES,
    LocalSearch,
    Observation,
    Proposal,
    RandomSearch,
    SearchStrategy,
    SuccessiveHalving,
    lattice_neighbours,
    make_strategy,
)
from .search_eval import (
    DEFAULT_BUDGETS,
    ReplayResult,
    budget_fractions,
    oracle_best,
    partition_fractions,
    replay_search,
)
from .portability import (
    EnvelopeEntry,
    cross_chip_heatmap,
    max_geomean_speedup,
    performance_envelope,
    top_speedup_opts,
)
from .significance import classify_outcome, significant_difference, welch_interval
from .stats import (
    MWUResult,
    cl_effect_size,
    cl_from_u,
    geomean,
    mann_whitney_u,
    median,
    rankdata,
    speedup_ratio,
    t_cdf,
    t_ppf,
)
from .strategies import (
    STRATEGY_DIMS,
    STRATEGY_ORDER,
    Strategy,
    build_strategies,
    load_strategies,
    oracle_assignment,
    save_strategies,
)

__all__ = [
    "Analysis",
    "OptDecision",
    "SPECIALISATION_DIMS",
    "ConfidencePoint",
    "MagnitudeComparison",
    "confidence_ablation",
    "magnitude_decide",
    "magnitude_vs_rank",
    "AgreementPoint",
    "decision_agreement",
    "restrict_dataset",
    "sample_efficiency_curve",
    "subsample_configs",
    "StrategyOutcomes",
    "evaluate_strategies",
    "optimisable_tests",
    "strategy_outcomes",
    "strategy_slowdown_vs_oracle",
    "ConfigRanking",
    "do_no_harm",
    "fewest_slowdowns",
    "max_geomean",
    "per_chip_breakdown",
    "rank_configurations",
    "DEFAULT_TARGET",
    "PORTFOLIO_LEVELS",
    "PortfolioCurve",
    "PortfolioSet",
    "PortfolioStep",
    "build_portfolios",
    "greedy_portfolio",
    "portfolio_coverage",
    "SEARCH_STRATEGIES",
    "LocalSearch",
    "Observation",
    "Proposal",
    "RandomSearch",
    "SearchStrategy",
    "SuccessiveHalving",
    "lattice_neighbours",
    "make_strategy",
    "DEFAULT_BUDGETS",
    "ReplayResult",
    "budget_fractions",
    "oracle_best",
    "partition_fractions",
    "replay_search",
    "EnvelopeEntry",
    "cross_chip_heatmap",
    "max_geomean_speedup",
    "performance_envelope",
    "top_speedup_opts",
    "classify_outcome",
    "significant_difference",
    "welch_interval",
    "MWUResult",
    "cl_effect_size",
    "cl_from_u",
    "geomean",
    "mann_whitney_u",
    "median",
    "rankdata",
    "speedup_ratio",
    "t_cdf",
    "t_ppf",
    "Strategy",
    "STRATEGY_ORDER",
    "STRATEGY_DIMS",
    "build_strategies",
    "oracle_assignment",
    "save_strategies",
    "load_strategies",
]
