"""Kernel-launch / memory-copy overhead microbenchmark (paper Fig 5).

Launches a constant-time kernel a fixed number of times, interleaving
each launch with a single-integer device-to-host copy, and reports GPU
*utilisation*: the fraction of wall time the GPU spent in the kernels.
Chips with low launch and copy latencies (Nvidia) stay near full
utilisation even for microsecond kernels — which is why their
strategies disable ``oitergb`` — while the other chips' utilisation
collapses, making iteration outlining essential.

As in the paper, timing uses a host-side calibration loop (OpenCL has
no portable device timers), so the simulated measurements inherit the
chip's noise level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..chips.database import all_chips
from ..chips.model import ChipModel
from ..util import stable_hash

__all__ = ["UtilisationPoint", "launch_overhead_sweep", "DEFAULT_KERNEL_TIMES_US"]

#: Kernel durations swept in the paper-style figure (microseconds).
DEFAULT_KERNEL_TIMES_US: Sequence[float] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0
)

#: Number of interleaved launches, as in the paper's microbenchmark.
N_LAUNCHES = 10_000


@dataclass(frozen=True)
class UtilisationPoint:
    chip: str
    kernel_time_us: float
    utilisation: float  # in [0, 1]


def _utilisation(chip: ChipModel, kernel_time_us: float, noisy: bool) -> float:
    busy = N_LAUNCHES * kernel_time_us
    total = N_LAUNCHES * (
        kernel_time_us + chip.launch_overhead_us + chip.copy_overhead_us
    )
    if noisy:
        rng = np.random.default_rng(
            stable_hash("launch-overhead", chip.short_name, kernel_time_us)
        )
        total *= float(np.exp(rng.normal(0.0, chip.noise_sigma)))
    return min(1.0, busy / total)


def launch_overhead_sweep(
    chips: Optional[Sequence[ChipModel]] = None,
    kernel_times_us: Sequence[float] = DEFAULT_KERNEL_TIMES_US,
    noisy: bool = True,
) -> Dict[str, List[UtilisationPoint]]:
    """Fig 5 data: per chip, utilisation across kernel durations."""
    chips = list(chips) if chips is not None else all_chips()
    return {
        chip.short_name: [
            UtilisationPoint(
                chip.short_name, t, _utilisation(chip, t, noisy)
            )
            for t in kernel_times_us
        ]
        for chip in chips
    }
