"""Intra-workgroup memory-divergence microbenchmark (Table X, ``m-divg``).

Two kernels stride through a large array; one adds a *gratuitous*
workgroup barrier inside the loop so threads never drift more than one
iteration apart.  The speedup of the barriered kernel quantifies each
chip's sensitivity to intra-workgroup memory divergence — modest
(1.1-1.5×) everywhere except MALI, whose ≈ 6.45× is the paper's
explanation for ``sg`` being enabled on a chip with subgroup size 1.

Uses the same divergence model as the main study's kernel cost
(:mod:`repro.perfmodel.divergence`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..chips.database import all_chips
from ..chips.model import ChipModel
from ..compiler.plan import KernelPlan
from ..dsl.ast import IterationSpace, Kernel, Load, NeighborLoop
from ..ocl.memory import AccessPattern
from ..perfmodel.divergence import divergence_factor

__all__ = ["MDivgResult", "m_divg_speedup", "m_divg_table"]

#: Strided accesses scatter fully: one new cache line per access.
_STRIDED_IRREGULARITY = 1.0
#: Loop iterations each thread performs over the array.
_ITERATIONS_PER_THREAD = 256
#: Baseline cost of one strided (cache-missing) access iteration.
_STRIDED_ACCESS_NS = 400.0


def _kernel() -> Kernel:
    return Kernel(
        "strided_scan",
        IterationSpace.ALL_NODES,
        ops=[NeighborLoop([Load("array", AccessPattern.STRIDED)])],
    )


def _plan(chip: ChipModel, with_barrier: bool) -> KernelPlan:
    plan = KernelPlan(kernel=_kernel(), wg_size=128, sg_size=chip.sg_size)
    if with_barrier:
        plan = plan.with_(wg_barriers_per_chunk=1.0)
    return plan


@dataclass(frozen=True)
class MDivgResult:
    chip: str
    time_plain_us: float
    time_barrier_us: float

    @property
    def speedup(self) -> float:
        return self.time_plain_us / self.time_barrier_us


def m_divg_speedup(chip: ChipModel) -> MDivgResult:
    """Speedup from the gratuitous barrier on one chip.

    Wall time per workgroup is iterations × (strided access inflated
    by the divergence factor), plus one workgroup barrier per
    iteration in the barriered kernel; workgroups run concurrently, so
    the per-workgroup time is the kernel time.
    """
    access_us = _STRIDED_ACCESS_NS / 1000.0
    plain = (
        _ITERATIONS_PER_THREAD
        * access_us
        * divergence_factor(
            chip, _plan(chip, with_barrier=False), _STRIDED_IRREGULARITY
        )
    )
    barriered = _ITERATIONS_PER_THREAD * (
        access_us
        * divergence_factor(
            chip, _plan(chip, with_barrier=True), _STRIDED_IRREGULARITY
        )
        + chip.wg_barrier_ns / 1000.0
    )
    return MDivgResult(chip.short_name, plain, barriered)


def m_divg_table(
    chips: Optional[Sequence[ChipModel]] = None,
) -> Dict[str, MDivgResult]:
    """Table X's ``m-divg`` row across the study chips."""
    chips = list(chips) if chips is not None else all_chips()
    return {chip.short_name: m_divg_speedup(chip) for chip in chips}
