"""Subgroup atomic-combining microbenchmark (paper Table X, ``sg-cmb``).

Times ``N`` atomic fetch-and-add operations on a single global memory
location, then the same workload with all atomics in a subgroup
combined into one (mimicking ``coop-cv``), and reports the speedup.
The paper uses this to explain why its analysis enables ``coop-cv``
only on R9 and IRIS: AMD's large subgroups multiply the win, the
Nvidia and HD5500 OpenCL JITs already combine transparently (so the
software version only adds overhead), and MALI's subgroup size of 1
has nothing to combine.

Implemented against the same compiler and atomic cost model as the
main study, so the explanation and the observation share one
mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..chips.database import all_chips
from ..chips.model import ChipModel
from ..compiler.options import OptConfig
from ..compiler.pipeline import compile_program
from ..dsl.ast import AtomicRMW, IterationSpace, Kernel, Program, Invoke
from ..ocl.memory import AtomicOp, MemoryRegion
from ..perfmodel.atomics import atomic_time_us
from ..runtime.trace import LaunchRecord

__all__ = ["SgCmbResult", "sg_cmb_speedup", "sg_cmb_table"]

#: Atomic invocations, as in the paper (N = 20000).
N_ATOMICS = 20_000


@dataclass(frozen=True)
class SgCmbResult:
    chip: str
    time_original_us: float
    time_combined_us: float

    @property
    def speedup(self) -> float:
        return self.time_original_us / self.time_combined_us


def _microbench_program() -> Program:
    kernel = Kernel(
        "atomic_storm",
        IterationSpace.ALL_NODES,
        ops=[
            AtomicRMW(
                "counter", AtomicOp.ADD, MemoryRegion.GLOBAL, contended=True
            )
        ],
    )
    return Program("sg-cmb", [kernel], [Invoke("atomic_storm")])


def sg_cmb_speedup(chip: ChipModel, n_atomics: int = N_ATOMICS) -> SgCmbResult:
    """Speedup of the subgroup-combined version over the original."""
    program = _microbench_program()
    record = LaunchRecord(
        kernel="atomic_storm",
        iteration=-1,
        in_fixpoint=False,
        active_items=n_atomics,
        expanded_items=n_atomics,
        edges=0,
        contended_rmws=n_atomics,
    )
    plain = compile_program(program, chip, OptConfig())
    combined = compile_program(program, chip, OptConfig(coop_cv=True))
    t_plain = atomic_time_us(chip, plain.kernel_plan("atomic_storm"), record)
    t_comb = atomic_time_us(chip, combined.kernel_plan("atomic_storm"), record)
    # The combined version additionally runs two subgroup barriers per
    # combine round; rounds proceed concurrently across the device's
    # live subgroups, so only the serialised residue reaches wall time.
    rounds = n_atomics / max(1, chip.sg_size)
    live_subgroups = max(
        1.0, chip.n_cus * chip.threads_for_peak / max(1, chip.sg_size)
    )
    t_comb += (
        rounds / live_subgroups * 2.0 * chip.effective_sg_barrier_ns() / 1000.0
    )
    return SgCmbResult(chip.short_name, t_plain, t_comb)


def sg_cmb_table(
    chips: Optional[Sequence[ChipModel]] = None,
) -> Dict[str, SgCmbResult]:
    """Table X's ``sg-cmb`` row across the study chips."""
    chips = list(chips) if chips is not None else all_chips()
    return {chip.short_name: sg_cmb_speedup(chip) for chip in chips}
