"""Explanatory microbenchmarks (paper Fig 5 and Table X)."""

from .launch_overhead import (
    DEFAULT_KERNEL_TIMES_US,
    UtilisationPoint,
    launch_overhead_sweep,
)
from .m_divg import MDivgResult, m_divg_speedup, m_divg_table
from .sg_cmb import SgCmbResult, sg_cmb_speedup, sg_cmb_table

__all__ = [
    "DEFAULT_KERNEL_TIMES_US",
    "UtilisationPoint",
    "launch_overhead_sweep",
    "MDivgResult",
    "m_divg_speedup",
    "m_divg_table",
    "SgCmbResult",
    "sg_cmb_speedup",
    "sg_cmb_table",
]
