"""Study harness: full-factorial sweep runner and performance dataset."""

from .dataset import PerfDataset, TestCase
from .runner import StudyConfig, collect_traces, run_study

__all__ = ["PerfDataset", "TestCase", "StudyConfig", "collect_traces", "run_study"]
