"""Study harness: full-factorial sweep runner and performance dataset."""

from .checkpoint import StudyCheckpoint, study_fingerprint
from .dataset import PerfDataset, TestCase
from .progress import PhaseTimer, format_duration
from .runner import ENGINES, StudyConfig, collect_traces, run_study

__all__ = [
    "ENGINES",
    "PerfDataset",
    "TestCase",
    "PhaseTimer",
    "format_duration",
    "StudyCheckpoint",
    "StudyConfig",
    "collect_traces",
    "run_study",
    "study_fingerprint",
]
