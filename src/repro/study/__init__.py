"""Study harness: full-factorial sweep runner and performance dataset."""

from .dataset import PerfDataset, TestCase
from .progress import PhaseTimer, format_duration
from .runner import ENGINES, StudyConfig, collect_traces, run_study

__all__ = [
    "ENGINES",
    "PerfDataset",
    "TestCase",
    "PhaseTimer",
    "format_duration",
    "StudyConfig",
    "collect_traces",
    "run_study",
]
