"""``repro doctor``: diagnose datasets and checkpoint directories.

An interrupted or faulted study leaves state on disk — a checkpoint
directory of priced shards, a partially-written dataset — whose health
determines what the operator can do next: resume, analyse degraded, or
start over.  The doctor examines that state and reports:

* **checkpoints** — manifest damage (missing, unreadable, unrecognised
  format, malformed or stale fingerprint), shard damage (truncation,
  checksum mismatch, task/name disagreement, out-of-grid orphans), a
  damaged or inconsistent metrics sidecar, and the *repair plan*: which
  shards a ``--resume`` run will re-price;
* **datasets** — unreadable/corrupt files, legacy pre-``perf-dataset-v2``
  artifacts, quarantinable cells (NaN/inf, non-positive timings) and
  grid coverage, via :mod:`repro.study.audit`; for binary columnar
  ``perf-dataset-v3`` files additionally per-section checksum damage
  (header, string tables, index columns, timing column), with the
  repair plan naming the salvageable cell range;
* **run reports** — the ``run-report-v1`` metrics sidecars the serve
  fleet and study write: truncation/checksum damage, and counter
  non-reconciliation across merged workers (``serve.requests`` vs the
  per-class breakdown, ``meta.requests`` vs the per-worker ledger,
  death/restart provenance vs the fleet counters).

Severity decides the exit code: ``error`` findings mean the state is
unusable as-is (exit 1); ``warning``/``info`` findings describe a
degraded but workable state (exit 0) — a killed-mid-study checkpoint
with intact shards is *healthy partial*, not broken.

``--export PATH`` additionally assembles the valid shards of a
checkpoint into a partial dataset (the manifest must carry the axis
names newer runs record), so degraded analysis can start before the
missing shards are re-priced.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..compiler.options import OptConfig
from ..errors import DatasetError, InvalidConfigError, ReportError
from ..obs.report import REPORT_FORMAT, RunReport
from ..util import sha256_hex
from .audit import audit_dataset
from .checkpoint import CHECKPOINT_FORMAT, StudyCheckpoint
from .dataset import DATASET_FORMAT, PerfDataset, TestCase, peek_format

__all__ = [
    "Finding",
    "Diagnosis",
    "diagnose",
    "diagnose_checkpoint",
    "diagnose_dataset",
    "diagnose_run_report",
    "export_partial_dataset",
    "main",
]

_SHARD_RE = re.compile(r"^shard-(\d+)-(\d+)\.(json|v3)$")

_FINGERPRINT_RE = re.compile(r"^[0-9a-f]{16}$")

#: Severity vocabulary, most severe first.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One diagnosed condition."""

    severity: str  # "error" | "warning" | "info"
    code: str  # stable machine-readable tag, e.g. "shard-checksum"
    message: str


class Diagnosis:
    """All findings for one path, plus the repair plan."""

    def __init__(self, path: str, kind: str) -> None:
        self.path = path
        self.kind = kind  # "checkpoint" | "dataset" | "run-report"
        self.findings: List[Finding] = []
        #: Steps that bring the state back to full health.
        self.repair_plan: List[str] = []

    def add(self, severity: str, code: str, message: str) -> None:
        self.findings.append(Finding(severity, code, message))

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings/info allowed)."""
        return not self.errors

    def render(self) -> str:
        lines = [f"doctor: {self.kind} {self.path}"]
        if not self.findings:
            lines.append("  healthy: no issues found")
        for f in self.findings:
            lines.append(f"  [{f.severity}] {f.code}: {f.message}")
        if self.repair_plan:
            lines.append("repair plan:")
            for step in self.repair_plan:
                lines.append(f"  - {step}")
        verdict = "USABLE" if self.ok else "UNUSABLE"
        lines.append(f"verdict: {verdict}")
        return "\n".join(lines)


# -- checkpoint diagnosis ----------------------------------------------------


def _shard_ranges(tasks: List[Tuple[int, int]]) -> List[str]:
    """Compress tasks into per-chip config ranges for the repair plan."""
    by_chip: Dict[int, List[int]] = {}
    for chip_idx, cfg_idx in tasks:
        by_chip.setdefault(chip_idx, []).append(cfg_idx)
    out = []
    for chip_idx in sorted(by_chip):
        cfgs = sorted(by_chip[chip_idx])
        spans = []
        start = prev = cfgs[0]
        for c in cfgs[1:]:
            if c == prev + 1:
                prev = c
                continue
            spans.append((start, prev))
            start = prev = c
        spans.append((start, prev))
        text = ", ".join(
            f"{a:04d}" if a == b else f"{a:04d}-{b:04d}" for a, b in spans
        )
        out.append(f"chip {chip_idx}: configs {text}")
    return out


def _check_v3_shard(
    path: str, task: Tuple[int, int]
) -> Tuple[Optional[list], Optional[str]]:
    """(rows, None) for a valid columnar shard file, else (None, reason).

    Columnar shards carry no embedded task field (the file name is the
    task), so validity means: loads, every checksum verifies, and the
    content spans exactly one chip and one config — one cell of the
    pricing grid.
    """
    from ..store.columnar import ColumnarDataset

    try:
        ds = ColumnarDataset.load(path)
    except DatasetError as exc:
        return None, str(exc)
    except OSError as exc:
        return None, f"unreadable ({exc})"
    try:
        try:
            ds.verify()
        except DatasetError as exc:
            return None, str(exc)
        tabs = ds.string_tables()
        if len(tabs["chips"]) > 1 or len(tabs["configs"]) > 1:
            return None, (
                f"spans {len(tabs['chips'])} chip(s) and "
                f"{len(tabs['configs'])} config(s); a shard must hold "
                f"exactly one grid cell"
            )
        return [
            (test.app, test.graph, list(times))
            for test, _key, times in ds.iter_cells()
        ], None
    finally:
        ds.close()


def _check_shard(
    path: str, task: Tuple[int, int]
) -> Tuple[Optional[list], Optional[str]]:
    """(rows, None) for a valid shard file, else (None, reason)."""
    if path.endswith(".v3"):
        return _check_v3_shard(path, task)
    try:
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
    except OSError as exc:
        return None, f"unreadable ({exc})"
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None, "truncated or invalid JSON"
    if not isinstance(payload, dict):
        return None, "not a shard object"
    if payload.get("task") != [task[0], task[1]]:
        return None, (
            f"task field {payload.get('task')!r} disagrees with the "
            f"file name"
        )
    try:
        body = json.dumps(payload["rows"], separators=(",", ":"))
    except (KeyError, TypeError, ValueError):
        return None, "missing or unserialisable rows"
    if sha256_hex(body) != payload.get("checksum"):
        return None, "checksum mismatch (modified or partially written)"
    try:
        rows = [
            (str(app), str(inp), [float(t) for t in times])
            for app, inp, times in payload["rows"]
        ]
    except (TypeError, ValueError):
        return None, "malformed rows"
    return rows, None


def _read_raw_manifest(directory: str):
    """(manifest dict or None, error message or None)."""
    path = os.path.join(directory, StudyCheckpoint.MANIFEST)
    if not os.path.exists(path):
        return None, "no manifest.json (not a checkpoint, or never opened)"
    try:
        with open(path, encoding="utf-8") as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        return None, f"unreadable manifest.json ({exc})"
    if not isinstance(manifest, dict):
        return None, "manifest.json is not an object"
    if manifest.get("format") != CHECKPOINT_FORMAT:
        return None, (
            f"unrecognised manifest format {manifest.get('format')!r} "
            f"(expected {CHECKPOINT_FORMAT!r})"
        )
    return manifest, None


def diagnose_checkpoint(
    directory: str, expected_fingerprint: Optional[str] = None
) -> Diagnosis:
    """Audit one checkpoint directory."""
    diag = Diagnosis(directory, "checkpoint")
    manifest, problem = _read_raw_manifest(directory)
    if manifest is None:
        diag.add("error", "manifest", problem)
        diag.repair_plan.append(
            "delete the directory and start a fresh run (no shards can be "
            "trusted without a manifest)"
        )
        return diag

    fingerprint = manifest.get("fingerprint")
    if not isinstance(fingerprint, str) or not _FINGERPRINT_RE.match(
        fingerprint
    ):
        diag.add(
            "error",
            "fingerprint-malformed",
            f"manifest fingerprint {fingerprint!r} is not a 16-hex-digit "
            f"study fingerprint",
        )
    elif (
        expected_fingerprint is not None
        and fingerprint != expected_fingerprint
    ):
        diag.add(
            "error",
            "fingerprint-stale",
            f"manifest fingerprint {fingerprint!r} does not match the "
            f"expected study fingerprint {expected_fingerprint!r} "
            f"(different scale, seed, apps, chips, configs, repetitions "
            f"or engine)",
        )
    n_chips = manifest.get("n_chips")
    n_configs = manifest.get("n_configs")
    if not (
        isinstance(n_chips, int)
        and isinstance(n_configs, int)
        and n_chips > 0
        and n_configs > 0
    ):
        diag.add(
            "error",
            "grid-shape",
            f"manifest grid shape n_chips={n_chips!r} "
            f"n_configs={n_configs!r} is invalid",
        )
        return diag

    valid: Dict[Tuple[int, int], list] = {}
    damaged: List[Tuple[int, int]] = []
    twins: set = set()
    for name in sorted(os.listdir(directory)):
        if name in (StudyCheckpoint.MANIFEST, StudyCheckpoint.METRICS):
            continue
        match = _SHARD_RE.match(name)
        if not match:
            if name.startswith("shard-"):
                diag.add(
                    "warning",
                    "shard-orphan",
                    f"{name}: unrecognised shard file name (ignored on "
                    f"resume)",
                )
            continue
        task = (int(match.group(1)), int(match.group(2)))
        if not (0 <= task[0] < n_chips and 0 <= task[1] < n_configs):
            diag.add(
                "warning",
                "shard-orphan",
                f"{name}: task outside the {n_chips}x{n_configs} grid "
                f"(priced under a different study; dropped on resume)",
            )
            continue
        if task in valid or task in damaged or task in twins:
            # Both a .json and a .v3 shard exist for this cell (a store
            # change mid-study); resume trusts neither and re-prices.
            diag.add(
                "warning",
                "shard-twin",
                f"{name}: task {task[0]}x{task[1]} has both a JSON and a "
                f"columnar shard; both are dropped and re-priced on "
                f"--resume",
            )
            valid.pop(task, None)
            if task in damaged:
                damaged.remove(task)
            twins.add(task)
            continue
        rows, reason = _check_shard(os.path.join(directory, name), task)
        if rows is None:
            diag.add("error", "shard-corrupt", f"{name}: {reason}")
            damaged.append(task)
        else:
            valid[task] = rows

    missing = [
        (chip_idx, cfg_idx)
        for chip_idx in range(n_chips)
        for cfg_idx in range(n_configs)
        if (chip_idx, cfg_idx) not in valid
    ]
    total = n_chips * n_configs
    diag.add(
        "info",
        "coverage",
        f"{len(valid)}/{total} shards valid, {len(damaged)} damaged, "
        f"{total - len(valid) - len(damaged)} never priced",
    )

    metrics_path = os.path.join(directory, StudyCheckpoint.METRICS)
    if os.path.exists(metrics_path):
        segments = StudyCheckpoint(directory).load_metrics()
        if not segments:
            diag.add(
                "warning",
                "metrics-damaged",
                "metrics.json is unreadable or fails its checksum "
                "(telemetry only; pricing state is unaffected)",
            )
        else:
            priced = sum(
                seg.get("counters", {}).get("study.shards.priced", 0)
                for seg in segments
            )
            on_disk = len(valid) + len(damaged)
            if priced != on_disk:
                diag.add(
                    "warning",
                    "metrics-mismatch",
                    f"metrics sidecar records {priced} priced shards but "
                    f"{on_disk} shard files exist (telemetry only)",
                )

    if missing:
        diag.repair_plan.append(
            f"re-price {len(missing)} shard(s) with --resume: "
            + "; ".join(_shard_ranges(missing))
        )
        diag.repair_plan.append(
            "python -m repro study OUTPUT --resume --checkpoint "
            + directory
        )
    if damaged:
        diag.repair_plan.append(
            f"{len(damaged)} damaged shard file(s) are dropped and "
            f"re-priced automatically on --resume"
        )
    return diag


def export_partial_dataset(directory: str) -> PerfDataset:
    """Assemble the valid shards of a checkpoint into a dataset.

    Requires the manifest's ``chips``/``configs`` axis names (recorded
    by newer runs); raises :class:`~repro.errors.DatasetError` when the
    checkpoint is unusable or predates axis recording.
    """
    manifest, problem = _read_raw_manifest(directory)
    if manifest is None:
        raise DatasetError(f"cannot export from {directory!r}: {problem}")
    chips = manifest.get("chips")
    configs = manifest.get("configs")
    if not isinstance(chips, list) or not isinstance(configs, list):
        raise DatasetError(
            f"checkpoint {directory!r} has no chips/configs axis names in "
            f"its manifest (written by an older run); re-run the study to "
            f"record them, or resume it to completion"
        )
    dataset = PerfDataset()
    consumed: set = set()
    for name in sorted(os.listdir(directory)):
        match = _SHARD_RE.match(name)
        if not match:
            continue
        task = (int(match.group(1)), int(match.group(2)))
        if not (0 <= task[0] < len(chips) and 0 <= task[1] < len(configs)):
            continue
        if task in consumed:  # .json/.v3 twin: first valid one wins here
            continue
        rows, reason = _check_shard(os.path.join(directory, name), task)
        if rows is None:
            continue
        consumed.add(task)
        key = configs[task[1]]
        try:
            config = (
                OptConfig()
                if key == "baseline"
                else OptConfig.from_names(key.split("+"))
            )
        except InvalidConfigError as exc:
            raise DatasetError(
                f"checkpoint {directory!r} records config key {key!r} "
                f"this build does not understand: {exc}"
            ) from exc
        for app, inp, times in rows:
            dataset.add(TestCase(app, inp, chips[task[0]]), config, times)
    return dataset


# -- dataset diagnosis -------------------------------------------------------


def _columnar_salvage_plan(path: str, diag: Diagnosis) -> None:
    """Append the salvageable-range repair plan for a damaged v3 file."""
    from ..store.columnar import salvage_columnar

    try:
        _partial, salvaged, declared, notes = salvage_columnar(path)
    except (DatasetError, OSError) as exc:
        diag.repair_plan.append(
            f"nothing is salvageable ({exc}); re-run the study or "
            f"restore the file from a backup"
        )
        return
    for note in notes:
        diag.add("warning", "salvage", note)
    if salvaged:
        diag.repair_plan.append(
            f"cells 0-{salvaged - 1} of {declared} are structurally "
            f"intact; recover them with: python -m repro doctor {path} "
            f"--export PARTIAL"
        )
        if salvaged < declared:
            diag.repair_plan.append(
                f"re-price the remaining {declared - salvaged} cell(s) "
                f"with --resume after exporting"
            )
        else:
            diag.repair_plan.append(
                "timings inside the damaged section may still be garbage "
                "— audit the exported dataset before trusting it"
            )
    else:
        diag.repair_plan.append(
            "no cells are salvageable (the index columns are damaged); "
            "re-run the study or restore the file from a backup"
        )


def _diagnose_columnar(path: str, diag: Diagnosis):
    """Load + full-verify a ``perf-dataset-v3`` file.

    Returns the loaded dataset when healthy, or ``None`` after
    recording error findings and the salvage repair plan.
    """
    from ..store.columnar import ColumnarDataset

    try:
        dataset = ColumnarDataset.load(path)
    except DatasetError as exc:
        diag.add("error", "unloadable", str(exc))
        _columnar_salvage_plan(path, diag)
        return None
    try:
        dataset.verify()
    except DatasetError as exc:
        diag.add("error", "section-corrupt", str(exc))
        _columnar_salvage_plan(path, diag)
        return None
    return dataset


def diagnose_dataset(path: str) -> Diagnosis:
    """Audit one dataset artifact."""
    from ..store.columnar import COLUMNAR_FORMAT

    diag = Diagnosis(path, "dataset")
    fmt = peek_format(path)
    if fmt is None:
        diag.add(
            "warning",
            "format-legacy",
            f"no {DATASET_FORMAT!r} format tag (legacy or damaged file)",
        )
    if fmt == COLUMNAR_FORMAT:
        dataset = _diagnose_columnar(path, diag)
        if dataset is None:
            return diag
    else:
        try:
            dataset = PerfDataset.load(path)
        except DatasetError as exc:
            diag.add("error", "unloadable", str(exc))
            diag.repair_plan.append(
                "re-run the study (or restore the file from a backup); "
                "the artifact cannot be trusted"
            )
            return diag
    audit = audit_dataset(dataset)
    for issue in audit.quarantined:
        diag.add(
            "warning",
            "cell-quarantined",
            f"{issue.test} [{issue.config_key}]: {issue.reason}",
        )
    coverage = audit.coverage
    diag.add("info", "coverage", coverage.describe())
    if not coverage.complete:
        diag.repair_plan.append(
            "analyse degraded with --min-coverage, or re-price the "
            "missing cells (python -m repro study OUTPUT --resume)"
        )
    return diag


# -- run-report diagnosis ----------------------------------------------------


def _looks_like_run_report(path: str) -> bool:
    """Sniff the first bytes for the ``run-report-v1`` format tag.

    Run reports are plain (never gzipped) JSON whose ``format`` key is
    written first, so the tag appears within the opening bytes; a
    dataset (possibly gzip-compressed) never contains it there.
    """
    try:
        with open(path, "rb") as f:
            head = f.read(256)
    except OSError:
        return False
    return REPORT_FORMAT.encode("ascii") in head


def diagnose_run_report(path: str) -> Diagnosis:
    """Audit one ``run-report-v1`` metrics sidecar.

    Structural damage (truncation, checksum mismatch, wrong format) is
    an *error* — a telemetry artifact that cannot be trusted must be
    rejected, not summarised.  Counter non-reconciliation is a
    *warning*: the run it describes already happened, but the ledger
    disagrees with itself, which for a serve fleet means a worker's
    final metrics delta was lost (e.g. a ``kill -9`` between
    heartbeats) or the merge logic regressed.
    """
    diag = Diagnosis(path, "run-report")
    try:
        report = RunReport.load(path)
    except ReportError as exc:
        diag.add("error", "unloadable", str(exc))
        diag.repair_plan.append(
            "re-run with --metrics to regenerate the sidecar (or restore "
            "it from a backup); the artifact cannot be trusted"
        )
        return diag

    requests = report.total_counter("serve.requests")
    if requests or any(
        k.startswith("serve.") for k in report.counters
    ):
        # Per-class requests must sum to the total: every admitted
        # request is classified exactly once.
        by_class = sum(
            report.total_counter(f"serve.requests.{cls}")
            for cls in ("strategy", "predict", "portfolio")
        )
        if by_class > requests:
            diag.add(
                "warning",
                "counter-mismatch",
                f"per-class request counters sum to {by_class} but "
                f"serve.requests is {requests}; the merge dropped or "
                f"double-counted a worker's delta",
            )
        meta_requests = report.meta.get("requests")
        if (
            isinstance(meta_requests, int)
            and meta_requests != requests
        ):
            diag.add(
                "warning",
                "requests-mismatch",
                f"meta.requests records {meta_requests} but the "
                f"serve.requests counter totals {requests}; a worker's "
                f"final metrics delta was lost (killed between "
                f"heartbeats?)",
            )
        per_worker = report.meta.get("per_worker_requests")
        if isinstance(per_worker, dict) and isinstance(meta_requests, int):
            ledger = sum(
                v for v in per_worker.values() if isinstance(v, int)
            )
            if ledger != meta_requests:
                diag.add(
                    "warning",
                    "per-worker-mismatch",
                    f"per-worker ledger sums to {ledger} but "
                    f"meta.requests records {meta_requests}",
                )
        deaths = report.total_counter("serve.workers.deaths")
        restarts = report.total_counter("serve.workers.restarts")
        meta_deaths = report.meta.get("deaths")
        meta_restarts = report.meta.get("restarts")
        if isinstance(meta_deaths, int) and meta_deaths != deaths:
            diag.add(
                "warning",
                "fleet-mismatch",
                f"meta.deaths records {meta_deaths} but "
                f"serve.workers.deaths totals {deaths}",
            )
        if isinstance(meta_restarts, int) and meta_restarts != restarts:
            diag.add(
                "warning",
                "fleet-mismatch",
                f"meta.restarts records {meta_restarts} but "
                f"serve.workers.restarts totals {restarts}",
            )
        if restarts > deaths:
            diag.add(
                "warning",
                "fleet-mismatch",
                f"{restarts} restarts exceed {deaths} deaths; a worker "
                f"cannot be respawned without dying first",
            )
        reload_attempts = report.total_counter("serve.reload.attempts")
        reload_ok = report.total_counter("serve.reload.success")
        reload_bad = report.total_counter("serve.reload.failures")
        if reload_attempts != reload_ok + reload_bad:
            diag.add(
                "warning",
                "counter-mismatch",
                f"serve.reload.attempts ({reload_attempts}) != success "
                f"({reload_ok}) + failures ({reload_bad})",
            )
        summary = f"{requests} requests"
        workers = report.meta.get("workers")
        if isinstance(workers, int):
            summary += f" across {workers} worker(s)"
        if deaths or restarts:
            summary += f", {deaths} death(s), {restarts} restart(s)"
        diag.add("info", "summary", summary)
    else:
        diag.add(
            "info",
            "summary",
            f"{len(report.counters)} counter(s), "
            f"{len(report.spans)} span(s) (not a serve report; no "
            f"reconciliation rules apply)",
        )
    if any(f.severity == "warning" for f in diag.findings):
        diag.repair_plan.append(
            "the run itself already happened; treat the sidecar's "
            "totals as a lower bound, or re-run with a longer drain "
            "(quiesce > --heartbeat-interval before shutdown) to "
            "capture every worker's final delta"
        )
    return diag


def diagnose(
    path: str, expected_fingerprint: Optional[str] = None
) -> Diagnosis:
    """Dispatch: directories are checkpoints; files are sniffed —
    ``run-report-v1`` sidecars go to :func:`diagnose_run_report`,
    everything else to :func:`diagnose_dataset`."""
    if os.path.isdir(path):
        return diagnose_checkpoint(path, expected_fingerprint)
    if _looks_like_run_report(path):
        return diagnose_run_report(path)
    return diagnose_dataset(path)


# -- CLI ---------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro doctor PATH`` entry point."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro doctor",
        description=(
            "diagnose a study dataset, checkpoint directory or "
            "run-report sidecar; exits non-zero when the state is "
            "unusable"
        ),
    )
    parser.add_argument(
        "path",
        help="dataset file, run-report sidecar or checkpoint directory "
        "to examine",
    )
    parser.add_argument(
        "--fingerprint",
        metavar="HEX",
        default=None,
        help="expected study fingerprint; a checkpoint whose manifest "
        "disagrees is reported stale",
    )
    parser.add_argument(
        "--export",
        metavar="DATASET",
        default=None,
        help="assemble a checkpoint's valid shards — or the intact cells "
        "of a damaged columnar (.v3) dataset — into a partial dataset "
        "at DATASET for degraded analysis",
    )
    parser.add_argument(
        "--audit-json",
        metavar="PATH",
        default=None,
        help="write the audit-v1 JSON artifact for a dataset to PATH",
    )
    args = parser.parse_args(argv)

    if not os.path.exists(args.path):
        print(f"doctor: {args.path}: no such file or directory",
              file=sys.stderr)
        return 2

    diag = diagnose(args.path, expected_fingerprint=args.fingerprint)
    print(diag.render())

    if args.export is not None:
        from ..store.columnar import COLUMNAR_FORMAT, salvage_columnar

        if diag.kind == "checkpoint":
            try:
                dataset = export_partial_dataset(args.path)
            except DatasetError as exc:
                print(f"doctor: {exc}", file=sys.stderr)
                return 1
            dataset.save(args.export)
            print(
                f"exported {dataset.n_measurements} measurements "
                f"({len(dataset)} tests) to {args.export}"
            )
        elif (
            diag.kind == "dataset"
            and peek_format(args.path) == COLUMNAR_FORMAT
        ):
            try:
                dataset, salvaged, declared, _notes = salvage_columnar(
                    args.path
                )
            except (DatasetError, OSError) as exc:
                print(f"doctor: {exc}", file=sys.stderr)
                return 1
            dataset.save(args.export)
            print(
                f"salvaged {salvaged}/{declared} cells "
                f"({dataset.n_measurements} measurements, "
                f"{len(dataset)} tests) to {args.export}"
            )
        else:
            print(
                "doctor: --export requires a checkpoint directory or a "
                "columnar (.v3) dataset file",
                file=sys.stderr,
            )
            return 2

    if args.audit_json is not None:
        if diag.kind != "dataset":
            print("doctor: --audit-json requires a dataset file",
                  file=sys.stderr)
            return 2
        try:
            audit = audit_dataset(PerfDataset.load(args.path))
        except DatasetError as exc:
            print(f"doctor: {exc}", file=sys.stderr)
            return 1
        audit.save(args.audit_json)
        print(f"wrote audit artifact to {args.audit_json}")

    return 0 if diag.ok else 1
