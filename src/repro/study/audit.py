"""Dataset audit and quarantine: degraded-mode analysis, made safe.

A study dataset reaching the analysis layer can be imperfect in two
very different ways:

* **holes** — a partially-resumed checkpoint, a failed chip model or a
  quarantined shard leaves (test, configuration) cells unmeasured; the
  paper's method tolerates this (Algorithm 1 filters pairs by a 95 % CI
  check and the MWU test runs on whatever samples exist), so holes
  degrade *coverage*, not correctness;
* **bad cells** — NaN/inf timings, non-positive values or a wrong
  repetition count mean a cell cannot be trusted at all and must be
  dropped (*quarantined*) before any statistic touches it.

:func:`audit_dataset` validates every cell of a
:class:`~repro.study.dataset.PerfDataset` against its expected grid and
produces a :class:`DatasetAudit`: a per-cell verdict (``ok`` /
``missing`` / ``quarantined`` with a reason), a coverage matrix over
{chip, app, input, config}, a cleaned dataset with the quarantined
cells removed, and a machine-readable ``audit-v1`` JSON artifact.  The
``strict=True`` escape hatch keeps the pre-audit behaviour: the first
bad cell raises :class:`~repro.errors.AuditError` instead of being
dropped.

:func:`require_coverage` is the analysis floor: below a configurable
coverage fraction (CLI ``--min-coverage``, default
:data:`DEFAULT_COVERAGE_FLOOR`) it raises
:class:`~repro.errors.InsufficientCoverageError` naming the worst
holes; above it, experiments render with coverage footnotes.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..compiler.options import OptConfig
from ..errors import AuditError, InsufficientCoverageError
from ..util import atomic_write_text, sha256_hex
from .dataset import Coverage, PerfDataset, TestCase

__all__ = [
    "AUDIT_FORMAT",
    "DEFAULT_COVERAGE_FLOOR",
    "CellIssue",
    "DatasetAudit",
    "audit_dataset",
    "require_coverage",
]

#: Format tag of audit artifacts.
AUDIT_FORMAT = "audit-v1"

#: Default minimum coverage fraction for analysis entry points.
DEFAULT_COVERAGE_FLOOR = 0.5

#: The audit's per-cell verdict vocabulary.
VERDICTS = ("ok", "missing", "quarantined")


@dataclass(frozen=True)
class CellIssue:
    """One non-``ok`` cell of the audited grid."""

    test: TestCase
    config_key: str
    verdict: str  # "missing" | "quarantined"
    reason: str

    def to_dict(self) -> dict:
        return {
            "app": self.test.app,
            "input": self.test.graph,
            "chip": self.test.chip,
            "config": self.config_key,
            "verdict": self.verdict,
            "reason": self.reason,
        }


class DatasetAudit:
    """The verdicts, coverage and cleaned dataset of one audit."""

    def __init__(
        self,
        dataset: PerfDataset,
        issues: Sequence[CellIssue],
        coverage: Coverage,
        dimension_coverage: Dict[str, Dict[str, Tuple[int, int]]],
    ) -> None:
        #: The cleaned dataset: quarantined cells removed, holes kept.
        self.dataset = dataset
        self.issues = list(issues)
        self.coverage = coverage
        #: {axis: {value: (present, expected)}} over chip/app/input/config.
        self.dimension_coverage = dimension_coverage

    @property
    def quarantined(self) -> List[CellIssue]:
        return [i for i in self.issues if i.verdict == "quarantined"]

    @property
    def missing(self) -> List[CellIssue]:
        return [i for i in self.issues if i.verdict == "missing"]

    @property
    def ok(self) -> bool:
        """No quarantined cells and full grid coverage."""
        return not self.issues

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "cells_present": self.coverage.present,
            "cells_expected": self.coverage.expected,
            "quarantined": [i.to_dict() for i in self.quarantined],
            "missing": [i.to_dict() for i in self.missing],
            "coverage": {
                axis: {
                    value: [present, expected]
                    for value, (present, expected) in sorted(values.items())
                }
                for axis, values in self.dimension_coverage.items()
            },
            "holes": list(self.coverage.holes),
        }

    def save(self, path: str) -> None:
        """Atomically write the ``audit-v1`` artifact (checksummed JSON)."""
        body = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        payload = (
            f'{{"format": "{AUDIT_FORMAT}", '
            f'"checksum": "{sha256_hex(body)}", '
            f'"audit": {body}}}'
        )
        atomic_write_text(path, payload)

    @staticmethod
    def load_dict(path: str) -> dict:
        """Load and verify an ``audit-v1`` artifact's payload.

        Raises :class:`~repro.errors.AuditError` on truncation, an
        unrecognised format tag or a checksum mismatch.
        """
        try:
            with open(path, encoding="utf-8") as f:
                parsed = json.load(f)
        except OSError as exc:
            raise AuditError(f"cannot read audit {path!r}: {exc}") from exc
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise AuditError(
                f"corrupt audit {path!r}: truncated or invalid JSON ({exc})"
            ) from exc
        if not isinstance(parsed, dict) or parsed.get("format") != AUDIT_FORMAT:
            raise AuditError(
                f"unrecognised audit {path!r} (expected format "
                f"{AUDIT_FORMAT!r})"
            )
        body = json.dumps(
            parsed.get("audit", {}), sort_keys=True, separators=(",", ":")
        )
        if sha256_hex(body) != parsed.get("checksum"):
            raise AuditError(
                f"corrupt audit {path!r}: checksum mismatch (the file was "
                f"modified or partially written)"
            )
        return parsed["audit"]

    # -- rendering ---------------------------------------------------------

    def render(self, max_issues: int = 10) -> str:
        """A short human-readable summary (the doctor's audit section)."""
        lines = [f"coverage: {self.coverage.describe()}"]
        for issue in self.quarantined[:max_issues]:
            lines.append(
                f"  quarantined {issue.test} [{issue.config_key}]: "
                f"{issue.reason}"
            )
        hidden = len(self.quarantined) - max_issues
        if hidden > 0:
            lines.append(f"  ... and {hidden} more quarantined cells")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatasetAudit(present={self.coverage.present}, "
            f"expected={self.coverage.expected}, "
            f"quarantined={len(self.quarantined)})"
        )


def _cell_reason(
    times: Tuple[float, ...], repetitions: Optional[int]
) -> Optional[str]:
    """Why a present cell must be quarantined, or ``None`` if it is ok."""
    if not times:
        return "no timings recorded"
    for t in times:
        if not isinstance(t, (int, float)):
            return f"non-numeric timing {t!r}"
        if not math.isfinite(t):
            return f"non-finite timing {t!r}"
        if t <= 0:
            return f"non-positive timing {t!r}"
    if repetitions is not None and len(times) != repetitions:
        return f"expected {repetitions} repetitions, got {len(times)}"
    return None


def audit_dataset(
    dataset: PerfDataset,
    *,
    expected_tests: Optional[Iterable[TestCase]] = None,
    expected_configs: Optional[Iterable[OptConfig]] = None,
    repetitions: Optional[int] = None,
    strict: bool = False,
) -> DatasetAudit:
    """Validate every cell of ``dataset`` against its expected grid.

    The grid defaults to the dataset's own tests × configurations;
    supply ``expected_tests`` / ``expected_configs`` to audit a partial
    dataset against the full study factorial (absent rows then count as
    ``missing``).  ``repetitions`` additionally pins the per-cell
    sample count.

    Bad cells (NaN/inf, non-positive, wrong repetition count) are
    *quarantined*: dropped from the returned audit's ``dataset`` so the
    coverage-aware analysis never sees them.  With ``strict=True`` the
    first bad cell raises :class:`~repro.errors.AuditError` instead —
    the pre-audit behaviour, for pipelines that would rather fail than
    degrade.
    """
    tests = (
        list(expected_tests) if expected_tests is not None else dataset.tests
    )
    configs = (
        list(expected_configs)
        if expected_configs is not None
        else dataset.configs
    )
    issues: List[CellIssue] = []
    present = 0
    dim_present: Dict[Tuple[str, str], int] = {}
    dim_expected: Dict[Tuple[str, str], int] = {}

    def _axes(test: TestCase, config: OptConfig):
        return (
            ("chip", test.chip),
            ("app", test.app),
            ("input", test.graph),
            ("config", config.label()),
        )

    # One streaming pass over the dataset's cells classifies each
    # present grid cell (``None`` = healthy, else the quarantine
    # reason).  The grid walk below then needs only this verdict map —
    # no per-cell timing tuples — so a columnar dataset audits off its
    # mapped file without ever materialising the full grid in memory.
    grid_tests = set(tests)
    grid_keys = {config.key() for config in configs}
    verdicts: Dict[Tuple[TestCase, str], Optional[str]] = {}
    for test, key, times in dataset.iter_cells():
        if test in grid_tests and key in grid_keys:
            verdicts[(test, key)] = _cell_reason(times, repetitions)

    _MISSING = "missing"  # sentinel distinct from None (= healthy)
    for test in tests:
        for config in configs:
            for axis in _axes(test, config):
                dim_expected[axis] = dim_expected.get(axis, 0) + 1
            reason = verdicts.get((test, config.key()), _MISSING)
            if reason is _MISSING:
                issues.append(
                    CellIssue(test, config.key(), "missing", "no measurement")
                )
                continue
            if reason is not None:
                if strict:
                    raise AuditError(
                        f"audit failed for {test} [{config.label()}]: {reason}"
                    )
                issues.append(
                    CellIssue(test, config.key(), "quarantined", reason)
                )
                continue
            present += 1
            for axis in _axes(test, config):
                dim_present[axis] = dim_present.get(axis, 0) + 1

    quarantined = [i for i in issues if i.verdict == "quarantined"]
    clean = dataset
    if quarantined:
        bad = {(i.test, i.config_key) for i in quarantined}
        config_map = {config.key(): config for config in dataset.configs}
        clean = PerfDataset()
        for test, key, times in dataset.iter_cells():
            if (test, key) in bad:
                continue
            clean._times[(test, key)] = tuple(times)
            clean._configs.setdefault(key, config_map[key])
            clean._tests.setdefault(test, None)

    expected = len(tests) * len(configs)
    holes: Tuple[str, ...] = ()
    if issues:
        ranked = sorted(
            (
                (axis, value, dim_expected[(axis, value)] - count)
                for (axis, value), count in (
                    ((k, dim_present.get(k, 0)) for k in dim_expected)
                )
            ),
            key=lambda item: (-item[2], item[0], item[1]),
        )
        holes = tuple(
            f"{axis} {value}: {gap}/{dim_expected[(axis, value)]} cells "
            f"missing or bad"
            for axis, value, gap in ranked[:3]
            if gap > 0
        )
    coverage = Coverage(
        present=present,
        expected=expected,
        quarantined=len(quarantined),
        holes=holes,
    )
    dimension_coverage: Dict[str, Dict[str, Tuple[int, int]]] = {}
    for (axis, value), exp in dim_expected.items():
        dimension_coverage.setdefault(axis, {})[value] = (
            dim_present.get((axis, value), 0),
            exp,
        )
    return DatasetAudit(clean, issues, coverage, dimension_coverage)


def require_coverage(
    coverage: Coverage, floor: float = DEFAULT_COVERAGE_FLOOR
) -> None:
    """Refuse analysis below the coverage floor.

    Raises :class:`~repro.errors.InsufficientCoverageError` naming the
    worst holes and the re-pricing remedy when ``coverage.fraction``
    falls below ``floor``.  The error carries the offending
    :class:`~repro.study.dataset.Coverage` as ``.coverage``.
    """
    if not 0.0 <= floor <= 1.0:
        raise ValueError("coverage floor must be within [0, 1]")
    if coverage.fraction >= floor:
        return
    detail = (
        "; worst holes: " + "; ".join(coverage.holes)
        if coverage.holes
        else ""
    )
    err = InsufficientCoverageError(
        f"dataset coverage {100.0 * coverage.fraction:.0f}% "
        f"({coverage.present}/{coverage.expected} cells) is below the "
        f"--min-coverage floor of {100.0 * floor:.0f}%{detail}; re-price "
        f"the missing shards (python -m repro study OUT --resume) or "
        f"lower the floor"
    )
    err.coverage = coverage
    raise err
