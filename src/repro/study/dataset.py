"""Performance dataset: the study's measurements and their query API.

A *test* is an (application, input, chip) tuple — the paper's unit of
analysis.  For every test the dataset holds repeated timings under
every optimisation configuration.  The analysis layer
(:mod:`repro.core`) consumes only this object, mirroring the paper's
design where the statistical machinery treats chips, applications and
inputs as black boxes behind a timing table.
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.options import OptConfig
from ..errors import DatasetError
from ..util import atomic_write_bytes, sha256_hex

__all__ = [
    "TestCase",
    "PerfDataset",
    "Coverage",
    "DATASET_FORMAT",
    "peek_format",
]

#: Format tag of checksummed dataset files (legacy untagged files load too).
DATASET_FORMAT = "perf-dataset-v2"


@dataclass(frozen=True)
class Coverage:
    """How much of a dataset's (test × configuration) grid is present.

    ``expected`` counts the full cross product of the dataset's tests
    and configurations (or of an explicitly supplied grid, see
    :meth:`PerfDataset.coverage`); ``present`` the cells holding
    timings; ``quarantined`` cells an audit dropped for bad data.
    ``holes`` names the axis values with the largest gaps, so an
    operator knows which shards to re-price.
    """

    present: int
    expected: int
    quarantined: int = 0
    holes: Tuple[str, ...] = ()

    @property
    def fraction(self) -> float:
        """Fraction of expected cells present (1.0 for an empty grid)."""
        return self.present / self.expected if self.expected else 1.0

    @property
    def complete(self) -> bool:
        return self.present >= self.expected and self.quarantined == 0

    def describe(self) -> str:
        """One-line human summary, e.g. for table footnotes."""
        parts = [
            f"{100.0 * self.fraction:.0f}% of expected cells "
            f"({self.present}/{self.expected})"
        ]
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        text = ", ".join(parts)
        if self.holes:
            text += "; worst holes: " + "; ".join(self.holes)
        return text


@dataclass(frozen=True, order=True)
class TestCase:
    """One (application, input, chip) tuple."""

    #: Tell pytest this is not a test class despite the name.
    __test__ = False

    app: str
    graph: str
    chip: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.app}/{self.graph}/{self.chip}"


class PerfDataset:
    """Timings for tests × configurations.

    Keys are stable strings: configurations are identified by
    :meth:`repro.compiler.options.OptConfig.key`.
    """

    def __init__(self) -> None:
        self._times: Dict[Tuple[TestCase, str], Tuple[float, ...]] = {}
        self._configs: Dict[str, OptConfig] = {}
        self._tests: Dict[TestCase, None] = {}  # insertion-ordered set

    # -- population -------------------------------------------------------

    def add(
        self, test: TestCase, config: OptConfig, times: Sequence[float]
    ) -> None:
        """Record the repeated timings of one (test, configuration)."""
        if not times:
            raise DatasetError(f"no timings provided for {test} [{config.label()}]")
        if any(t <= 0 for t in times):
            raise DatasetError(f"non-positive timing for {test} [{config.label()}]")
        key = config.key()
        self._times[(test, key)] = tuple(float(t) for t in times)
        self._configs.setdefault(key, config)
        self._tests.setdefault(test, None)

    def update(self, other: "PerfDataset") -> None:
        """Merge ``other``'s measurements into this dataset.

        Used to combine the partial datasets of a sharded (parallel)
        sweep.  A (test, configuration) present in both datasets must
        carry identical timings — anything else means two shards priced
        the same point differently, which a deterministic sweep can
        never do — otherwise :class:`~repro.errors.DatasetError` is
        raised.
        """
        for (test, key), times in other._times.items():
            existing = self._times.get((test, key))
            if existing is not None and existing != times:
                err = DatasetError(
                    f"conflicting timings for test {test} under config "
                    f"{key!r}: {existing} vs {times}"
                )
                # Structured coordinates of the conflicting cell, for
                # callers that want to locate the bad shard.
                err.test = test
                err.config_key = key
                raise err
            self._times[(test, key)] = times
            self._configs.setdefault(key, other._configs[key])
            self._tests.setdefault(test, None)

    @classmethod
    def merged(cls, parts: Iterable["PerfDataset"]) -> "PerfDataset":
        """One dataset from the partial datasets of a sharded sweep."""
        ds = cls()
        for part in parts:
            ds.update(part)
        return ds

    def __eq__(self, other: object) -> bool:
        """Datasets are equal iff they hold the same timing table.

        Insertion order is deliberately ignored: a parallel sweep may
        merge shards in a different order than the serial sweep visits
        points, but the measurements themselves must match exactly.
        """
        if not isinstance(other, PerfDataset):
            return NotImplemented
        return self._times == other._times

    # -- axes ---------------------------------------------------------------

    @property
    def tests(self) -> List[TestCase]:
        return list(self._tests)

    @property
    def configs(self) -> List[OptConfig]:
        return list(self._configs.values())

    @property
    def apps(self) -> List[str]:
        return sorted({t.app for t in self._tests})

    @property
    def graphs(self) -> List[str]:
        return sorted({t.graph for t in self._tests})

    @property
    def chips(self) -> List[str]:
        return sorted({t.chip for t in self._tests})

    @property
    def n_measurements(self) -> int:
        return len(self._times)

    # -- queries ------------------------------------------------------------

    def has(self, test: TestCase, config: OptConfig) -> bool:
        return (test, config.key()) in self._times

    def times(self, test: TestCase, config: OptConfig) -> Tuple[float, ...]:
        """Raw repeated timings, in microseconds."""
        try:
            return self._times[(test, config.key())]
        except KeyError:
            raise DatasetError(
                f"no measurement for {test} under [{config.label()}]"
            ) from None

    def times_or_none(
        self, test: TestCase, config: OptConfig
    ) -> Optional[Tuple[float, ...]]:
        """Like :meth:`times`, but ``None`` for an absent cell.

        The degraded-mode query primitive: coverage-aware analyses use
        it to skip holes in a partial dataset instead of crashing.
        """
        return self._times.get((test, config.key()))

    def median(self, test: TestCase, config: OptConfig) -> float:
        return float(np.median(self.times(test, config)))

    def best_config(
        self, test: TestCase, configs: Optional[Iterable[OptConfig]] = None
    ) -> OptConfig:
        """The oracle configuration: lowest median time for this test.

        Only configurations actually measured for this test compete, so
        the oracle is well-defined on a partial dataset; a test with no
        measurements at all raises :class:`~repro.errors.DatasetError`.
        """
        candidates = list(configs) if configs is not None else self.configs
        if not candidates:
            raise DatasetError("no configurations to choose from")
        measured = [c for c in candidates if self.has(test, c)]
        if not measured:
            raise DatasetError(f"no measurements at all for {test}")
        return min(measured, key=lambda c: self.median(test, c))

    def tests_where(
        self,
        app: Optional[str] = None,
        graph: Optional[str] = None,
        chip: Optional[str] = None,
    ) -> List[TestCase]:
        """Tests matching the given (partial) coordinates — the
        partitioning primitive of Algorithm 1's specialisations."""
        return [
            t
            for t in self._tests
            if (app is None or t.app == app)
            and (graph is None or t.graph == graph)
            and (chip is None or t.chip == chip)
        ]

    # -- coverage -----------------------------------------------------------

    def missing_cells(self) -> List[Tuple[TestCase, OptConfig]]:
        """Every (test, configuration) cell of the grid with no timings."""
        return [
            (test, config)
            for test in self._tests
            for key, config in self._configs.items()
            if (test, key) not in self._times
        ]

    def coverage(self, quarantined: int = 0) -> "Coverage":
        """Coverage of this dataset's own (test × configuration) grid.

        ``quarantined`` lets an audit fold the cells it dropped into the
        record.  The worst holes are named per axis (chip, app, input,
        configuration), largest missing fraction first.
        """
        expected = len(self._tests) * len(self._configs)
        present = len(self._times)
        holes: Tuple[str, ...] = ()
        if present < expected:
            missing = self.missing_cells()
            holes = tuple(_worst_holes(missing, self._tests, self._configs))
        return Coverage(
            present=present,
            expected=expected,
            quarantined=quarantined,
            holes=holes,
        )

    def subset(self, tests: Iterable[TestCase]) -> "PerfDataset":
        """A dataset restricted to the given tests (shared timing data)."""
        wanted = set(tests)
        sub = PerfDataset()
        for (test, key), times in self._times.items():
            if test in wanted:
                sub._times[(test, key)] = times
                sub._configs.setdefault(key, self._configs[key])
                sub._tests.setdefault(test, None)
        return sub

    def iter_measurements(
        self,
    ) -> Iterator[Tuple[TestCase, OptConfig, Tuple[float, ...]]]:
        for (test, key), times in self._times.items():
            yield test, self._configs[key], times

    def iter_cells(
        self,
    ) -> Iterator[Tuple[TestCase, str, Tuple[float, ...]]]:
        """Stream ``(test, config_key, times)`` in insertion order.

        The streaming consumption primitive: audit, conversion and
        strategy derivation iterate cells through this instead of
        materialising the full grid, so a columnar backend
        (:class:`repro.store.ColumnarDataset`, which overrides it) can
        serve them in constant memory straight off the mapped file.
        """
        for (test, key), times in self._times.items():
            yield test, key, times

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "measurements": [
                {
                    "app": test.app,
                    "graph": test.graph,
                    "chip": test.chip,
                    "config": key,
                    "times": list(times),
                }
                for (test, key), times in self._times.items()
            ]
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PerfDataset":
        if not isinstance(data, dict) or not isinstance(
            data.get("measurements"), list
        ):
            raise DatasetError(
                "malformed dataset payload: expected an object with a "
                "'measurements' list"
            )
        ds = cls()
        try:
            for rec in data["measurements"]:
                config = (
                    OptConfig()
                    if rec["config"] == "baseline"
                    else OptConfig.from_names(rec["config"].split("+"))
                )
                ds.add(
                    TestCase(rec["app"], rec["graph"], rec["chip"]),
                    config,
                    rec["times"],
                )
        except (KeyError, TypeError, AttributeError) as exc:
            raise DatasetError(
                f"malformed measurement record: {exc!r}"
            ) from exc
        return ds

    def save(self, path: str, faults=None, format: Optional[str] = None) -> None:
        """Write the dataset atomically in the selected on-disk format.

        ``format`` picks the serialisation: ``"v2"`` is the checksummed
        (optionally gzipped) JSON this method always wrote, ``"v3"``
        the binary columnar layout of :mod:`repro.store`.  The default
        autodetects from the extension — ``.v3`` files are columnar,
        everything else JSON — so ``save``/``load`` stay symmetric.

        Either way the file is written atomically (temp file + rename),
        so an interrupted save leaves the previous complete file —
        never a truncated one — in place, and carries SHA-256
        checksums which :meth:`load` verifies, so silent on-disk
        corruption is detected instead of analysed.

        ``faults`` (a :class:`repro.faults.FaultPlan`, testing only)
        garbles the payload when a ``corrupt`` fault is armed for this
        file's basename, simulating a disk failure past the atomicity
        guarantee.
        """
        if format is None:
            format = "v3" if path.endswith(".v3") else "v2"
        if format == "v3":
            from ..store.columnar import write_columnar

            write_columnar(self, path, faults=faults)
            return
        if format != "v2":
            raise ValueError(
                f"unknown dataset format {format!r}; expected 'v2' or 'v3'"
            )
        body = json.dumps(self.to_dict()["measurements"], separators=(",", ":"))
        payload = (
            f'{{"format": "{DATASET_FORMAT}", '
            f'"checksum": "{sha256_hex(body)}", '
            f'"measurements": {body}}}'
        )
        data = payload.encode("utf-8")
        if faults is not None and faults.fire("corrupt", os.path.basename(path)):
            data = data[: max(1, len(data) // 2)]  # simulated disk failure
        if path.endswith(".gz"):
            data = gzip.compress(data, mtime=0)
        atomic_write_bytes(path, data)

    @classmethod
    def load(cls, path: str) -> "PerfDataset":
        """Load a dataset, raising :class:`DatasetError` on corruption.

        Truncated files, invalid JSON, bad gzip streams and checksum
        mismatches all raise a ``DatasetError`` naming the file and the
        reason; legacy files without a checksum header still load.

        Binary columnar files (``perf-dataset-v3``, recognised by
        magic or a ``.v3`` extension) dispatch to
        :class:`repro.store.ColumnarDataset`, which serves the same
        query protocol off the memory-mapped file.
        """
        from ..store.columnar import COLUMNAR_MAGIC, ColumnarDataset

        try:
            with open(path, "rb") as probe:
                head = probe.read(len(COLUMNAR_MAGIC))
        except OSError as exc:
            raise DatasetError(f"cannot read dataset {path!r}: {exc}") from exc
        if head == COLUMNAR_MAGIC or path.endswith(".v3"):
            return ColumnarDataset.load(path)
        try:
            with open(path, "rb") as f:
                data = f.read()
            if path.endswith(".gz"):
                data = gzip.decompress(data)
            parsed = json.loads(data.decode("utf-8"))
        except (gzip.BadGzipFile, EOFError, zlib.error) as exc:
            raise DatasetError(
                f"corrupt dataset {path!r}: bad gzip stream ({exc})"
            ) from exc
        except OSError as exc:
            raise DatasetError(f"cannot read dataset {path!r}: {exc}") from exc
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise DatasetError(
                f"corrupt dataset {path!r}: truncated or invalid JSON ({exc})"
            ) from exc
        if isinstance(parsed, dict) and "checksum" in parsed:
            body = json.dumps(
                parsed.get("measurements", []), separators=(",", ":")
            )
            if sha256_hex(body) != parsed["checksum"]:
                raise DatasetError(
                    f"corrupt dataset {path!r}: checksum mismatch (the file "
                    f"was modified or partially written)"
                )
        try:
            return cls.from_dict(parsed)
        except DatasetError as exc:
            raise DatasetError(f"corrupt dataset {path!r}: {exc}") from exc

    def __len__(self) -> int:
        return len(self._tests)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PerfDataset(tests={len(self._tests)}, "
            f"configs={len(self._configs)}, measurements={len(self._times)})"
        )


def _worst_holes(missing, tests, configs, top: int = 3) -> List[str]:
    """Name the axis values with the largest missing fractions.

    For each axis (chip, app, input, config) count missing cells per
    value; report the ``top`` values with the most missing cells as
    ``"chip MALI: 96/576 cells missing"`` strings, worst first.
    """
    n_configs = max(1, len(configs))
    expected_per_test = n_configs
    per_axis: Dict[Tuple[str, str], int] = {}
    for test, config in missing:
        for axis, value in (
            ("chip", test.chip),
            ("app", test.app),
            ("input", test.graph),
            ("config", config.label()),
        ):
            per_axis[(axis, value)] = per_axis.get((axis, value), 0) + 1
    expected: Dict[Tuple[str, str], int] = {}
    for test in tests:
        for axis, value in (
            ("chip", test.chip),
            ("app", test.app),
            ("input", test.graph),
        ):
            expected[(axis, value)] = (
                expected.get((axis, value), 0) + expected_per_test
            )
    n_tests = max(1, len(tests))
    ranked = sorted(
        per_axis.items(), key=lambda kv: (-kv[1], kv[0][0], kv[0][1])
    )
    out = []
    for (axis, value), count in ranked[:top]:
        total = expected.get((axis, value), n_tests)
        out.append(f"{axis} {value}: {count}/{total} cells missing")
    return out


def peek_format(path: str) -> Optional[str]:
    """The format tag of a dataset file, or ``None``.

    ``None`` means the file is a legacy (pre-``perf-dataset-v2``)
    artifact *or* is unreadable/corrupt — in either case a cache owner
    should rebuild rather than trust it.  This never raises: it exists
    so cache-validation paths can decide cheaply without committing to
    a full load.
    """
    from ..store.columnar import COLUMNAR_FORMAT, COLUMNAR_MAGIC

    try:
        with open(path, "rb") as f:
            data = f.read()
        if data.startswith(COLUMNAR_MAGIC):
            return COLUMNAR_FORMAT
        if path.endswith(".gz"):
            data = gzip.decompress(data)
        parsed = json.loads(data.decode("utf-8"))
    except (OSError, EOFError, zlib.error, gzip.BadGzipFile, ValueError):
        return None
    if isinstance(parsed, dict):
        fmt = parsed.get("format")
        return fmt if isinstance(fmt, str) else None
    return None
