"""Study sweep runner: the paper's data-collection phase.

Executes every application on every input *once* to obtain workload
traces, then prices each trace on every chip under every optimisation
configuration, with the study's three noisy timing repetitions.  The
full factorial — 17 applications × 3 inputs × 6 chips × 96
configurations × 3 repetitions — matches the paper's experimental
scope.

Everything is deterministic: graph generation, functional execution
and the noise model are all seeded, so two invocations produce
identical datasets.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Optional

from ..apps.base import Application
from ..apps.registry import all_applications
from ..chips.database import all_chips
from ..chips.model import ChipModel
from ..compiler.options import OptConfig, enumerate_configs
from ..compiler.pipeline import compile_program
from ..graphs.inputs import StudyInput, study_inputs
from ..perfmodel.simulate import measure_repeats_us
from ..runtime.trace import Trace
from .dataset import PerfDataset, TestCase

__all__ = ["run_study", "collect_traces", "StudyConfig"]


class StudyConfig:
    """Parameters of a study run (defaults reproduce the paper scope)."""

    def __init__(
        self,
        apps: Optional[List[Application]] = None,
        inputs: Optional[Dict[str, StudyInput]] = None,
        chips: Optional[List[ChipModel]] = None,
        configs: Optional[List[OptConfig]] = None,
        repetitions: int = 3,
        source: int = 0,
        scale: float = 1.0,
        seed: int = 7,
    ) -> None:
        self.apps = apps if apps is not None else all_applications()
        self.inputs = (
            inputs if inputs is not None else study_inputs(scale=scale, seed=seed)
        )
        self.chips = chips if chips is not None else all_chips()
        self.configs = configs if configs is not None else enumerate_configs()
        self.repetitions = repetitions
        self.source = source


def collect_traces(
    config: StudyConfig, progress: Optional[Callable[[str], None]] = None
) -> Dict[tuple, Trace]:
    """Phase 1: run every (application, input) pair functionally."""
    traces: Dict[tuple, Trace] = {}
    for inp in config.inputs.values():
        graph = inp.graph
        for app in config.apps:
            if app.requires_weights and not graph.has_weights:
                continue
            if progress:
                progress(f"tracing {app.name} on {inp.name}")
            result = app.run(graph, source=config.source)
            traces[(app.name, inp.name)] = result.trace
    return traces


def run_study(
    config: Optional[StudyConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> PerfDataset:
    """Run the full study and return the performance dataset."""
    if config is None:
        config = StudyConfig()
    traces = collect_traces(config, progress)

    dataset = PerfDataset()
    programs = {app.name: app.program() for app in config.apps}
    for chip in config.chips:
        if progress:
            progress(f"pricing on {chip.short_name}")
        for opt in config.configs:
            plans = {
                name: compile_program(program, chip, opt)
                for name, program in programs.items()
            }
            for (app_name, input_name), trace in traces.items():
                times = measure_repeats_us(
                    plans[app_name], trace, config.repetitions
                )
                dataset.add(
                    TestCase(app_name, input_name, chip.short_name), opt, times
                )
    return dataset


def _stderr_progress(message: str) -> None:  # pragma: no cover - CLI helper
    print(f"[study] {message}", file=sys.stderr)


def main() -> None:  # pragma: no cover - CLI entry point
    """CLI: run the full study and save the dataset."""
    import argparse

    parser = argparse.ArgumentParser(description=run_study.__doc__)
    parser.add_argument("output", help="path for the dataset JSON (.gz ok)")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repetitions", type=int, default=3)
    args = parser.parse_args()

    started = time.time()
    dataset = run_study(
        StudyConfig(scale=args.scale, repetitions=args.repetitions),
        progress=_stderr_progress,
    )
    dataset.save(args.output)
    print(
        f"wrote {dataset.n_measurements} measurements "
        f"({len(dataset)} tests) in {time.time() - started:.1f}s to {args.output}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
