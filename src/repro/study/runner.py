"""Study sweep runner: the paper's data-collection phase.

Executes every application on every input *once* to obtain workload
traces, then prices each trace on every chip under every optimisation
configuration, with the study's three noisy timing repetitions.  The
full factorial — 17 applications × 3 inputs × 6 chips × 96
configurations × 3 repetitions — matches the paper's experimental
scope.

Two pricing engines produce bit-identical datasets: the scalar
reference path (:mod:`repro.perfmodel.simulate`, one launch record at
a time) and the vectorized batch engine
(:mod:`repro.perfmodel.batch`, all launches of a trace in whole-array
NumPy ops with plan-keyed intermediate reuse).  The sweep can further
be sharded over worker processes (``jobs``): the chip × configuration
grid is split into *shards*, each worker prices its share against the
same traces, and the partial datasets merge into the same table as a
serial run.

The sweep is fault tolerant.  Completed shards can be checkpointed to
disk as they finish (:mod:`repro.study.checkpoint`) so an interrupted
run resumes where it stopped; a dead worker pool is rebuilt and its
unfinished shards re-queued (bounded retries with exponential backoff,
falling back to in-process pricing when the pool keeps dying); and a
:class:`repro.faults.FaultPlan` can inject worker crashes, errors,
interrupts and stragglers at chosen shards to drive every one of those
recovery paths deterministically in tests.

Everything is deterministic: graph generation, functional execution
and the noise model are all seeded — each measurement's seed depends
only on (chip, program, graph, configuration, repetition) — so two
invocations produce identical datasets regardless of engine, job
count, failures or resumption.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from typing import Callable, Dict, List, Optional, Tuple

from ..apps.base import Application
from ..apps.registry import all_applications
from ..chips.database import all_chips
from ..chips.model import ChipModel
from ..compiler.options import OptConfig, enumerate_configs
from ..compiler.pipeline import compile_cached, plan_cache
from ..dsl.ast import Program
from ..errors import CheckpointError, DatasetError
from ..faults import FaultPlan
from ..graphs.inputs import StudyInput, study_inputs
from ..obs import NULL_RECORDER, Recorder, RunReport
from ..perfmodel.batch import estimate_runtime_us_batch, measure_repeats_us_batch
from ..perfmodel.noise import measurement_prefix, measurement_seeds
from ..perfmodel.simulate import measure_repeats_us
from ..runtime.trace import Trace, memo_stats
from .checkpoint import StudyCheckpoint, study_fingerprint
from .dataset import PerfDataset, TestCase
from .progress import PhaseTimer

__all__ = ["ENGINES", "run_study", "collect_traces", "StudyConfig"]

#: Pricing engines: the vectorized default and the scalar reference.
ENGINES = ("batch", "scalar")

#: Result-shipping backends: pickled row lists (the default) or
#: columnar ``perf-dataset-v3`` chunk spill with segment-concat merge.
STORES = ("rows", "v3")

#: Default bounded-retry budget for failed shards / dead worker pools.
DEFAULT_RETRIES = 2

#: Base of the exponential retry backoff, in seconds.
DEFAULT_BACKOFF = 0.05


class _ShardTimeout(BaseException):
    """Internal signal: one or more shards exceeded the deadline.

    Derives from BaseException so the ordinary ``except Exception``
    retry paths never swallow it; it is raised and caught entirely
    within :func:`_run_parallel`.
    """

    def __init__(self, tasks: List["Task"]) -> None:
        super().__init__(f"{len(tasks)} shard(s) timed out")
        self.tasks = tasks


class StudyConfig:
    """Parameters of a study run (defaults reproduce the paper scope)."""

    def __init__(
        self,
        apps: Optional[List[Application]] = None,
        inputs: Optional[Dict[str, StudyInput]] = None,
        chips: Optional[List[ChipModel]] = None,
        configs: Optional[List[OptConfig]] = None,
        repetitions: int = 3,
        source: int = 0,
        scale: float = 1.0,
        seed: int = 7,
    ) -> None:
        self.apps = apps if apps is not None else all_applications()
        self.inputs = (
            inputs if inputs is not None else study_inputs(scale=scale, seed=seed)
        )
        self.chips = chips if chips is not None else all_chips()
        self.configs = configs if configs is not None else enumerate_configs()
        self.repetitions = repetitions
        self.source = source


def collect_traces(
    config: StudyConfig,
    progress: Optional[Callable[[str], None]] = None,
    recorder=None,
) -> Dict[tuple, Trace]:
    """Phase 1: run every (application, input) pair functionally.

    Pairs that cannot run — a weight-requiring application on an
    unweighted graph — are skipped, and each skip is reported through
    ``progress`` so a sweep's log accounts for every pair of the
    factorial.  ``recorder`` (a :class:`~repro.obs.Recorder`) counts
    ``study.traces.collected`` / ``study.traces.skipped``.
    """
    rec = recorder if recorder is not None else NULL_RECORDER
    traces: Dict[tuple, Trace] = {}
    for inp in config.inputs.values():
        graph = inp.graph
        for app in config.apps:
            if app.requires_weights and not graph.has_weights:
                rec.count("study.traces.skipped")
                if progress:
                    progress(
                        f"skipping {app.name} on {inp.name}: requires edge "
                        f"weights but graph is unweighted"
                    )
                continue
            if progress:
                progress(f"tracing {app.name} on {inp.name}")
            with rec.span("study.trace", app=app.name, input=inp.name):
                result = app.run(graph, source=config.source)
            rec.count("study.traces.collected")
            traces[(app.name, inp.name)] = result.trace
    return traces


def _measure_point(
    plan, trace: Trace, repetitions: int, engine: str, prefix: Optional[int]
) -> List[float]:
    """Price one (plan, trace) point with the selected engine."""
    if engine == "scalar":
        return measure_repeats_us(plan, trace, repetitions)
    true_us = estimate_runtime_us_batch(plan, trace.arrays())
    seeds = measurement_seeds(
        plan.chip,
        trace.program,
        trace.graph,
        plan.config.key(),
        repetitions,
        prefix=prefix,
    )
    return measure_repeats_us_batch(
        plan, trace, repetitions, true_us=true_us, seeds=seeds
    )


# -- pricing shards ----------------------------------------------------------
#
# A shard is one (chip index, configuration index) cell of the pricing
# grid: every trace priced under that chip and configuration.  Shards
# are the unit of parallel distribution, of checkpointing and of retry.

#: One shard's task key, and the pricing state every shard needs.
Task = Tuple[int, int]
_State = Tuple[
    Dict[str, Program],
    Dict[tuple, Trace],
    List[ChipModel],
    List[OptConfig],
    int,
    str,
]


def _shard_key(task: Task) -> str:
    """The fault-injection / logging name of one shard."""
    return f"shard-{task[0]}-{task[1]}"


def _price_rows(chip, opt, programs, traces, repetitions, engine):
    """The pricing inner loop of one (chip, configuration) shard."""
    prefixes: Dict[tuple, int] = {}
    rows = []
    for (app_name, input_name), trace in traces.items():
        plan = compile_cached(programs[app_name], chip, opt)
        prefix = None
        if engine == "batch":
            pkey = (trace.program, trace.graph)
            prefix = prefixes.get(pkey)
            if prefix is None:
                prefix = measurement_prefix(chip, trace.program, trace.graph)
                prefixes[pkey] = prefix
        times = _measure_point(plan, trace, repetitions, engine, prefix)
        rows.append((app_name, input_name, times))
    return rows


def _price_cell_impl(
    task: Task,
    state: _State,
    faults: Optional[FaultPlan] = None,
    recorder=None,
):
    """Price every trace under one (chip, configuration) shard.

    With an enabled ``recorder`` the shard is wrapped in a
    ``study.price_shard`` span and the plan-cache / batch-memoiser
    hit/miss deltas accrued by the shard are counted; the default
    no-op recorder skips all of that bookkeeping.
    """
    chip_idx, cfg_idx = task
    programs, traces, chips, configs, repetitions, engine = state
    if faults is not None:
        key = _shard_key(task)
        faults.fire("slow", key)
        faults.fire("error", key)
        faults.fire("crash", key)
    chip, opt = chips[chip_idx], configs[cfg_idx]
    rec = recorder if recorder is not None else NULL_RECORDER
    if not rec.enabled:
        rows = _price_rows(chip, opt, programs, traces, repetitions, engine)
        return chip_idx, cfg_idx, rows
    plan_hits, plan_misses = plan_cache.hits, plan_cache.misses
    memo_hits, memo_misses = memo_stats.hits, memo_stats.misses
    with rec.span(
        "study.price_shard", chip=chip.short_name, config=opt.label()
    ) as span:
        rows = _price_rows(chip, opt, programs, traces, repetitions, engine)
        span.set("traces", len(rows))
    rec.count("compiler.plan_cache.hits", plan_cache.hits - plan_hits)
    rec.count("compiler.plan_cache.misses", plan_cache.misses - plan_misses)
    rec.count("perfmodel.memo.hits", memo_stats.hits - memo_hits)
    rec.count("perfmodel.memo.misses", memo_stats.misses - memo_misses)
    return chip_idx, cfg_idx, rows


# Worker state is installed once per process by the pool initializer
# rather than shipped with every task; a StudyConfig is never pickled
# (its StudyInput builders are closures).

_WORKER_STATE: Optional[_State] = None
_WORKER_FAULTS: Optional[FaultPlan] = None
_WORKER_RECORDER = NULL_RECORDER
_WORKER_SPILL: Optional[str] = None


def _init_worker(
    programs: Dict[str, Program],
    traces: Optional[Dict[tuple, Trace]],
    chips: List[ChipModel],
    configs: List[OptConfig],
    repetitions: int,
    engine: str,
    faults: Optional[FaultPlan],
    metrics: bool = False,
    trace_cache: Optional[str] = None,
    spill_dir: Optional[str] = None,
) -> None:
    global _WORKER_STATE, _WORKER_FAULTS, _WORKER_RECORDER, _WORKER_SPILL
    # Each worker runs its own recorder; per-shard deltas are drained
    # into the result tuple and merged by the parent on collection.
    _WORKER_RECORDER = Recorder() if metrics else NULL_RECORDER
    if traces is None:
        # Shared-trace path: the parent wrote the traces once to the
        # checkpoint directory instead of pickling them through the
        # pool initializer per worker per pool build.  A damaged cache
        # raises here, breaking the pool — the runner's rebuild /
        # in-process fallback machinery recovers (the parent always
        # keeps its own traces).
        if trace_cache is None:
            raise DatasetError(
                "worker started without traces or a trace cache"
            )
        from ..store.tracecache import load_trace_cache

        traces = load_trace_cache(trace_cache)
        _WORKER_RECORDER.count("study.traces.shared")
    else:
        _WORKER_RECORDER.count("study.traces.rebuilt")
    _WORKER_STATE = (programs, traces, chips, configs, repetitions, engine)
    _WORKER_FAULTS = faults
    _WORKER_SPILL = spill_dir


def _spill_chunk(task: Task, rows: list, state: _State, spill_dir: str, faults=None):
    """Write one shard's rows as a columnar chunk; return its marker.

    The chunk is a complete single-cell ``perf-dataset-v3`` file —
    the parent merges it by segment concatenation and, when a
    checkpoint is active, adopts the very same file as the shard
    record.  Only the small ``("chunk", path, n_rows)`` marker travels
    back through the executor pipe instead of the pickled rows.
    """
    from ..store.columnar import ColumnWriter

    _programs, _traces, chips, configs, _reps, _engine = state
    chip = chips[task[0]]
    key = configs[task[1]].key()
    writer = ColumnWriter()
    for app_name, input_name, times in rows:
        writer.add(
            TestCase(app_name, input_name, chip.short_name), key, times
        )
    path = os.path.join(spill_dir, f"chunk-{task[0]:04d}-{task[1]:04d}.v3")
    writer.commit(path, faults=faults)
    return ("chunk", path, len(rows))


def _is_chunk(payload) -> bool:
    return (
        isinstance(payload, tuple)
        and len(payload) == 3
        and payload[0] == "chunk"
    )


def _price_cell(task: Task):
    """Worker entry point: price one shard from the installed state.

    Returns ``(chip_idx, cfg_idx, payload, obs_delta)`` where
    ``payload`` is the priced rows — or, in columnar spill mode, a
    ``("chunk", path, n_rows)`` marker for the chunk file written to
    the spill directory — and ``obs_delta`` is the worker recorder's
    drained snapshot for this shard (``None`` when metrics are
    disabled)."""
    chip_idx, cfg_idx, rows = _price_cell_impl(
        task, _WORKER_STATE, _WORKER_FAULTS, recorder=_WORKER_RECORDER
    )
    payload = rows
    if _WORKER_SPILL is not None:
        payload = _spill_chunk(
            task, rows, _WORKER_STATE, _WORKER_SPILL, faults=_WORKER_FAULTS
        )
    delta = _WORKER_RECORDER.drain() if _WORKER_RECORDER.enabled else None
    return chip_idx, cfg_idx, payload, delta


def _save_metrics(checkpoint: Optional[StudyCheckpoint], recorder) -> None:
    """Persist the recorder's segments to the checkpoint (if both exist).

    Written after every recorded shard so an interrupt at any point
    leaves the metrics sidecar consistent with the shard files: a
    resumed run's ``skipped_checkpoint`` count equals the persisted
    segments' ``priced`` total.
    """
    if checkpoint is not None and recorder.enabled:
        checkpoint.save_metrics(
            list(recorder.prior_segments) + [recorder.snapshot()]
        )


def _run_serial(
    config: StudyConfig,
    traces: Dict[tuple, Trace],
    programs: Dict[str, Program],
    engine: str,
    timer: PhaseTimer,
    *,
    faults: Optional[FaultPlan] = None,
    checkpoint: Optional[StudyCheckpoint] = None,
    done: Optional[Dict[Task, list]] = None,
    recorder=NULL_RECORDER,
) -> PerfDataset:
    state: _State = (
        programs,
        traces,
        config.chips,
        config.configs,
        config.repetitions,
        engine,
    )
    results: Dict[Task, list] = dict(done or {})
    dataset = PerfDataset()
    for chip_idx, chip in enumerate(config.chips):
        timer.note(f"pricing on {chip.short_name}")
        for cfg_idx, opt in enumerate(config.configs):
            task = (chip_idx, cfg_idx)
            rows = results.get(task)
            if rows is None:
                _, _, rows = _price_cell_impl(
                    task, state, faults, recorder=recorder
                )
                recorder.count("study.shards.priced")
                if checkpoint is not None:
                    checkpoint.record(task, rows)
                    _save_metrics(checkpoint, recorder)
                if faults is not None:
                    faults.fire("interrupt", _shard_key(task))
            for app_name, input_name, times in rows:
                dataset.add(
                    TestCase(app_name, input_name, chip.short_name), opt, times
                )
        timer.tick()
    return dataset


def _run_parallel(
    config: StudyConfig,
    traces: Dict[tuple, Trace],
    programs: Dict[str, Program],
    engine: str,
    jobs: int,
    timer: PhaseTimer,
    *,
    faults: Optional[FaultPlan] = None,
    checkpoint: Optional[StudyCheckpoint] = None,
    done: Optional[Dict[Task, list]] = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    shard_timeout: Optional[float] = None,
    recorder=NULL_RECORDER,
    store: str = "rows",
    spill_dir: Optional[str] = None,
    trace_cache: Optional[str] = None,
) -> PerfDataset:
    """Shard the pricing grid over a worker pool, surviving failures.

    A shard whose worker raises is re-queued up to ``retries`` times
    (exponential backoff) and then priced in-process; a dead pool
    (worker killed mid-task) is rebuilt up to ``retries`` times, after
    which every unfinished shard is priced in-process.  The in-process
    fallback runs without fault injection — it is the recovery of last
    resort, not a fault site.

    ``shard_timeout`` arms a deadline watchdog: a shard still running
    ``shard_timeout`` seconds after it was first observed executing is
    presumed hung (a straggler, a livelocked worker, the ``slow``
    fault).  The pool is torn down — hung workers are terminated, since
    a running future cannot be cancelled — the overdue shard is counted
    under ``study.shards.timeout`` and re-queued within the ``retries``
    budget; once the budget is exhausted it is *quarantined*
    (``study.shards.quarantined``): excluded from the dataset and never
    checkpointed, so a later ``--resume`` re-prices exactly the
    quarantined shards.
    """
    tasks: List[Task] = [
        (chip_idx, cfg_idx)
        for chip_idx in range(len(config.chips))
        for cfg_idx in range(len(config.configs))
    ]
    state: _State = (
        programs,
        traces,
        config.chips,
        config.configs,
        config.repetitions,
        engine,
    )
    results: Dict[Task, list] = dict(done or {})
    pending = [t for t in tasks if t not in results]
    note_every = max(1, len(tasks) // 10)

    def complete(task: Task, payload, delta: Optional[dict] = None) -> None:
        if delta is not None:
            recorder.merge(delta)
        recorder.count("study.shards.priced")
        if checkpoint is not None:
            if _is_chunk(payload):
                # The worker's spilled chunk *is* the shard record:
                # rename it into place, no re-serialisation.
                new_path = checkpoint.record_chunk(task, payload[1])
                payload = ("chunk", new_path, payload[2])
            else:
                checkpoint.record(task, payload)
            _save_metrics(checkpoint, recorder)
        results[task] = payload
        if len(results) % note_every == 0:
            timer.note(f"priced {len(results)}/{len(tasks)} shards")
        if faults is not None:
            faults.fire("interrupt", _shard_key(task))

    pool_failures = 0
    # Timeout counts persist across pool rebuilds (unlike the per-pool
    # ``failures`` dict): a shard that hangs every pool it runs in must
    # eventually exhaust its budget and be quarantined.
    timeouts: Dict[Task, int] = {}
    quarantined: List[Task] = []
    poll = max(0.05, shard_timeout / 4) if shard_timeout else None
    while pending:
        if pool_failures > retries:
            timer.note(
                f"worker pool died {pool_failures} times; pricing the "
                f"remaining {len(pending)} shards in-process"
            )
            for task in list(pending):
                recorder.count("study.shards.fallback_inprocess")
                _, _, rows = _price_cell_impl(task, state, recorder=recorder)
                complete(task, rows)
                pending.remove(task)
            break
        init_state = state
        if trace_cache is not None:
            # Workers load the shared trace cache from the checkpoint
            # dir instead of having the traces pickled to each of them.
            init_state = (state[0], None) + state[2:]
        pool = ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=init_state
            + (faults, recorder.enabled, trace_cache, spill_dir),
        )
        try:
            futures = {pool.submit(_price_cell, t): t for t in pending}
            failures: Dict[Task, int] = {}
            started: Dict[object, float] = {}
            while futures:
                finished, _ = wait(
                    futures, timeout=poll, return_when=FIRST_COMPLETED
                )
                if shard_timeout is not None:
                    now = time.monotonic()
                    overdue = []
                    for fut, task in futures.items():
                        if fut in finished or not fut.running():
                            continue
                        # The deadline clock starts when the shard is
                        # first *observed executing*, not when it was
                        # submitted — queued shards are not hung.
                        if fut not in started:
                            started[fut] = now
                        elif now - started[fut] > shard_timeout:
                            overdue.append(task)
                    if overdue:
                        raise _ShardTimeout(overdue)
                for fut in finished:
                    task = futures.pop(fut)
                    delta: Optional[dict] = None
                    try:
                        _, _, rows, delta = fut.result()
                    except BrokenExecutor:
                        raise
                    except Exception as exc:
                        n = failures.get(task, 0) + 1
                        failures[task] = n
                        if n > retries:
                            timer.note(
                                f"{_shard_key(task)} failed {n} times "
                                f"({exc}); pricing in-process"
                            )
                            recorder.count("study.shards.fallback_inprocess")
                            _, _, rows = _price_cell_impl(
                                task, state, recorder=recorder
                            )
                        else:
                            timer.note(
                                f"{_shard_key(task)} failed ({exc}); "
                                f"re-queued (retry {n}/{retries})"
                            )
                            recorder.count("study.shards.retried")
                            time.sleep(backoff * (2 ** (n - 1)))
                            futures[pool.submit(_price_cell, task)] = task
                            continue
                    complete(task, rows, delta)
                    pending.remove(task)
            pool.shutdown()
        except _ShardTimeout as signal:
            # A running future cannot be cancelled: tear the pool down
            # and terminate its workers so a hung shard (the ``slow``
            # fault, a livelock) cannot stall the sweep — or block
            # interpreter exit — forever.
            procs = list((getattr(pool, "_processes", None) or {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for proc in procs:
                proc.terminate()
            for task in signal.tasks:
                n = timeouts.get(task, 0) + 1
                timeouts[task] = n
                recorder.count("study.shards.timeout")
                if n > retries:
                    timer.note(
                        f"{_shard_key(task)} exceeded {shard_timeout}s "
                        f"{n} time(s); quarantined (re-price with --resume)"
                    )
                    recorder.count("study.shards.quarantined")
                    quarantined.append(task)
                    pending.remove(task)
                else:
                    timer.note(
                        f"{_shard_key(task)} exceeded {shard_timeout}s; "
                        f"re-queued (timeout {n}/{retries})"
                    )
                    time.sleep(backoff * (2 ** (n - 1)))
        except BrokenExecutor:
            # A worker died without unwinding (crash/OOM/kill): the
            # pool is unusable.  Rebuild it and re-queue every shard
            # that had not completed.
            pool.shutdown(wait=False, cancel_futures=True)
            pool_failures += 1
            recorder.count("study.pool.rebuilds")
            if pool_failures <= retries:
                timer.note(
                    f"worker pool died; re-queuing {len(pending)} shards "
                    f"(restart {pool_failures}/{retries})"
                )
                time.sleep(backoff * (2 ** (pool_failures - 1)))
        except BaseException:
            # Interrupt or unexpected error: don't wait for the queue.
            pool.shutdown(wait=False, cancel_futures=True)
            raise

    if quarantined:
        timer.note(
            f"{len(quarantined)} shard(s) quarantined after repeated "
            f"timeouts: "
            + ", ".join(_shard_key(t) for t in sorted(quarantined))
        )
    if checkpoint is not None:
        checkpoint.quarantined_tasks = sorted(quarantined)

    # Merge in the serial sweep's chip -> config -> test order so the
    # dataset's insertion order is independent of completion order.
    # Quarantined shards have no rows: their cells stay absent, the
    # audit reports them as holes, and ``--resume`` re-prices them.
    if store == "v3":
        return _merge_columnar(config, results, state, timer, recorder)
    dataset = PerfDataset()
    for chip_idx, chip in enumerate(config.chips):
        timer.note(f"pricing on {chip.short_name}")
        for cfg_idx, opt in enumerate(config.configs):
            rows = results.get((chip_idx, cfg_idx))
            if rows is None:
                continue
            for app_name, input_name, times in rows:
                dataset.add(
                    TestCase(app_name, input_name, chip.short_name), opt, times
                )
        timer.tick()
    return dataset


def _merge_columnar(config, results, state, timer, recorder) -> PerfDataset:
    """Merge shard results into a columnar dataset, in grid order.

    Spilled chunks concatenate by raw segment copy; row lists (resumed
    JSON shards, the in-process fallback) append per cell.  A chunk
    file that fails to load — corrupted on disk after the worker wrote
    it — is re-priced in-process rather than failing the sweep.
    """
    from ..store.columnar import ColumnarDataset, ColumnWriter

    writer = ColumnWriter()
    for chip_idx, chip in enumerate(config.chips):
        timer.note(f"merging {chip.short_name}")
        for cfg_idx, opt in enumerate(config.configs):
            payload = results.get((chip_idx, cfg_idx))
            if payload is None:
                continue
            if _is_chunk(payload):
                try:
                    chunk = ColumnarDataset.load(payload[1])
                except DatasetError:
                    recorder.count("study.shards.fallback_inprocess")
                    _, _, rows = _price_cell_impl(
                        (chip_idx, cfg_idx), state, recorder=recorder
                    )
                    payload = rows
                else:
                    try:
                        writer.append_chunk(chunk)
                    finally:
                        chunk.close()
                    continue
            key = opt.key()
            for app_name, input_name, times in payload:
                writer.add(
                    TestCase(app_name, input_name, chip.short_name),
                    key,
                    times,
                )
        timer.tick()
    return ColumnarDataset.from_payload(writer.payload())


def run_study(
    config: Optional[StudyConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    *,
    jobs: int = 1,
    engine: str = "batch",
    traces: Optional[Dict[tuple, Trace]] = None,
    checkpoint=None,
    resume: bool = False,
    faults: Optional[FaultPlan] = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    shard_timeout: Optional[float] = None,
    recorder=None,
    store: str = "rows",
) -> PerfDataset:
    """Run the full study and return the performance dataset.

    ``store`` selects the result backend: ``"rows"`` (the default)
    ships pickled row lists through the executor and merges into a
    dict-backed :class:`PerfDataset`; ``"v3"`` makes workers spill
    each shard as a columnar ``perf-dataset-v3`` chunk (into the
    checkpoint directory when one is active, else a temp dir), merges
    by segment concatenation and returns a
    :class:`~repro.store.ColumnarDataset` holding the identical
    measurements.

    Any parallel run with a checkpoint shares the collected traces
    with its workers through a write-once cache in the checkpoint dir
    instead of re-pickling them per worker per pool build
    (``study.traces.shared`` vs ``study.traces.rebuilt`` in the run
    report).

    ``shard_timeout`` (seconds, parallel mode only) arms the hung-shard
    watchdog: a shard still executing past the deadline is terminated,
    re-queued within the ``retries`` budget, and finally quarantined —
    the sweep completes with that cell absent instead of hanging.

    ``engine`` selects the pricing path (``"batch"``, the vectorized
    default, or ``"scalar"``, the reference) and ``jobs`` the number of
    worker processes sharding the chip × configuration grid; every
    combination produces the identical dataset.  Precollected
    ``traces`` (from :func:`collect_traces`) skip phase 1.

    ``checkpoint`` (a directory path or
    :class:`~repro.study.checkpoint.StudyCheckpoint`) persists each
    completed shard; with ``resume=True`` a matching checkpoint's
    shards are loaded and skipped instead of re-priced, and a stale
    checkpoint (different study fingerprint) raises
    :class:`~repro.errors.CheckpointError`.  ``faults`` injects
    deterministic failures for testing; ``retries``/``backoff`` bound
    the parallel sweep's recovery from failed shards and dead pools.

    ``recorder`` (a :class:`~repro.obs.Recorder`) collects the run's
    metrics: per-shard spans, ``study.shards.*`` counters whose
    ``priced + skipped_checkpoint`` always equals the grid size, cache
    hit/miss deltas, and — on ``resume`` — the metrics segments the
    interrupted run persisted to the checkpoint, loaded into
    ``recorder.prior_segments``.  The default ``None`` uses the no-op
    recorder: no bookkeeping at all.
    """
    if config is None:
        config = StudyConfig()
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if store not in STORES:
        raise ValueError(f"unknown store {store!r}; expected one of {STORES}")
    if jobs < 1:
        raise ValueError("jobs must be positive")
    if retries < 0:
        raise ValueError("retries must be non-negative")
    if shard_timeout is not None and shard_timeout <= 0:
        raise ValueError("shard_timeout must be positive")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint directory")
    rec = recorder if recorder is not None else NULL_RECORDER

    timer = PhaseTimer(progress)
    if traces is None:
        timer.start("tracing", total=len(config.apps) * len(config.inputs))

        def _note_trace(message: str) -> None:
            timer.note(message)
            timer.tick()

        traces = collect_traces(
            config, _note_trace if progress else None, recorder=rec
        )
        timer.finish(f"collected {len(traces)} traces")

    programs = {app.name: app.program() for app in config.apps}

    done: Optional[Dict[Task, list]] = None
    ckpt: Optional[StudyCheckpoint] = None
    if checkpoint is not None:
        ckpt = (
            checkpoint
            if isinstance(checkpoint, StudyCheckpoint)
            else StudyCheckpoint(str(checkpoint))
        )
        fingerprint = study_fingerprint(config, engine, traces)
        done = ckpt.open(
            fingerprint,
            len(config.chips),
            len(config.configs),
            resume=resume,
            chips=[chip.short_name for chip in config.chips],
            configs=[cfg.key() for cfg in config.configs],
        )
        if rec.enabled:
            if resume:
                # The interrupted run's metrics segments: kept apart
                # from this run's counters so priced/skipped totals
                # reconcile per run, while the RunReport's
                # total_counter() still sees the whole study.
                rec.prior_segments = ckpt.load_metrics()
            if done:
                rec.count("study.shards.skipped_checkpoint", len(done))
            if ckpt.skipped_shards:
                rec.count(
                    "study.checkpoint.invalid_shards", ckpt.skipped_shards
                )
        if progress and (done or ckpt.skipped_shards):
            total = len(config.chips) * len(config.configs)
            dropped = (
                f" ({ckpt.skipped_shards} invalid shards re-priced)"
                if ckpt.skipped_shards
                else ""
            )
            progress(
                f"resuming: {len(done)}/{total} shards already priced{dropped}"
            )

    trace_cache: Optional[str] = None
    if jobs > 1 and ckpt is not None:
        from ..store.tracecache import save_trace_cache, trace_cache_path

        cache_path = trace_cache_path(ckpt.directory, fingerprint)
        try:
            save_trace_cache(cache_path, fingerprint, traces)
        except (OSError, DatasetError):
            pass  # fall back to pickling the traces to each worker
        else:
            trace_cache = cache_path

    spill_dir: Optional[str] = None
    spill_tmp: Optional[str] = None
    if store == "v3" and jobs > 1:
        if ckpt is not None:
            spill_dir = ckpt.directory
        else:
            spill_dir = spill_tmp = tempfile.mkdtemp(prefix="repro-spill-")

    rec.gauge(
        "study.shards.total", len(config.chips) * len(config.configs)
    )
    timer.start("pricing", total=len(config.chips))
    try:
        if jobs == 1:
            dataset = _run_serial(
                config,
                traces,
                programs,
                engine,
                timer,
                faults=faults,
                checkpoint=ckpt,
                done=done,
                recorder=rec,
            )
        else:
            dataset = _run_parallel(
                config,
                traces,
                programs,
                engine,
                jobs,
                timer,
                faults=faults,
                checkpoint=ckpt,
                done=done,
                retries=retries,
                backoff=backoff,
                shard_timeout=shard_timeout,
                recorder=rec,
                store=store,
                spill_dir=spill_dir,
                trace_cache=trace_cache,
            )
    finally:
        if spill_tmp is not None:
            shutil.rmtree(spill_tmp, ignore_errors=True)
    if store == "v3" and type(dataset) is PerfDataset:
        from ..store.columnar import columnar_from_dataset

        dataset = columnar_from_dataset(dataset)
    timer.finish(
        f"priced {dataset.n_measurements} measurements "
        f"({len(dataset)} tests, engine={engine}, jobs={jobs})"
    )
    return dataset


def _stderr_progress(message: str) -> None:  # pragma: no cover - CLI helper
    print(f"[study] {message}", file=sys.stderr)


def main() -> None:  # pragma: no cover - CLI entry point
    """CLI: run the full study and save the dataset."""
    import argparse

    from ..cli import metrics_parent

    parser = argparse.ArgumentParser(
        description=run_study.__doc__, parents=[metrics_parent()]
    )
    parser.add_argument(
        "output",
        help="path for the dataset: JSON (.gz ok) or binary columnar (.v3)",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the pricing sweep (default: 1)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="batch",
        help="pricing engine (default: batch; scalar is the reference path)",
    )
    parser.add_argument(
        "--store",
        choices=("auto",) + STORES,
        default="auto",
        help="result backend: 'rows' ships pickled row lists, 'v3' spills "
        "columnar perf-dataset-v3 chunks and merges by segment "
        "concatenation (default: auto — v3 when OUTPUT ends in .v3)",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help="checkpoint directory for completed shards "
        "(default: OUTPUT.ckpt)",
    )
    parser.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="disable shard checkpointing",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint directory, skipping already-"
        "priced shards (rejects checkpoints of a different study)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=DEFAULT_RETRIES,
        help="bounded retries for failed shards / dead worker pools "
        f"(default: {DEFAULT_RETRIES})",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="deadline watchdog for hung shards (parallel mode): a shard "
        "running longer than SECONDS is terminated and re-queued within "
        "the --retries budget, then quarantined (default: no deadline)",
    )
    parser.add_argument(
        "--faults",
        metavar="DIR",
        default=None,
        help="fault-injection spool directory (testing only; see "
        "repro.faults.FaultPlan)",
    )
    args = parser.parse_args()

    ckpt_dir = None if args.no_checkpoint else (
        args.checkpoint or args.output + ".ckpt"
    )
    ckpt = StudyCheckpoint(ckpt_dir) if ckpt_dir else None
    faults = FaultPlan(args.faults) if args.faults else None
    rec = Recorder() if args.metrics else None
    store = args.store
    if store == "auto":
        store = "v3" if args.output.endswith(".v3") else "rows"

    started = time.time()
    try:
        dataset = run_study(
            StudyConfig(scale=args.scale, repetitions=args.repetitions),
            progress=_stderr_progress,
            jobs=args.jobs,
            engine=args.engine,
            checkpoint=ckpt,
            resume=args.resume,
            faults=faults,
            retries=args.retries,
            shard_timeout=args.shard_timeout,
            recorder=rec,
            store=store,
        )
    except KeyboardInterrupt:
        where = f" in {ckpt.directory}" if ckpt else ""
        print(
            f"[study] interrupted; completed shards are checkpointed{where} "
            f"— re-run with --resume to continue",
            file=sys.stderr,
        )
        raise SystemExit(130)
    except CheckpointError as exc:
        print(f"[study] {exc}", file=sys.stderr)
        raise SystemExit(3)
    dataset.save(args.output, faults=faults)
    if rec is not None:
        report = RunReport.from_recorder(
            rec,
            meta={
                "engine": args.engine,
                "jobs": args.jobs,
                "scale": args.scale,
                "repetitions": args.repetitions,
                "resumed": args.resume,
                "dataset": args.output,
            },
        )
        report.save(args.metrics)
        print(f"[study] wrote run report to {args.metrics}", file=sys.stderr)
        print(report.render(), file=sys.stderr)
    if ckpt is not None:
        if ckpt.quarantined_tasks:
            # Quarantined shards are not in the dataset; keep the
            # checkpoint so --resume can re-price exactly those cells.
            print(
                f"[study] {len(ckpt.quarantined_tasks)} quarantined "
                f"shard(s) kept in {ckpt.directory} — re-run with "
                f"--resume to re-price them",
                file=sys.stderr,
            )
        else:
            ckpt.clear()  # the dataset is safely on disk; drop the shards
    print(
        f"wrote {dataset.n_measurements} measurements "
        f"({len(dataset)} tests) in {time.time() - started:.1f}s to {args.output}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
