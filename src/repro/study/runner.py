"""Study sweep runner: the paper's data-collection phase.

Executes every application on every input *once* to obtain workload
traces, then prices each trace on every chip under every optimisation
configuration, with the study's three noisy timing repetitions.  The
full factorial — 17 applications × 3 inputs × 6 chips × 96
configurations × 3 repetitions — matches the paper's experimental
scope.

Two pricing engines produce bit-identical datasets: the scalar
reference path (:mod:`repro.perfmodel.simulate`, one launch record at
a time) and the vectorized batch engine
(:mod:`repro.perfmodel.batch`, all launches of a trace in whole-array
NumPy ops with plan-keyed intermediate reuse).  The sweep can further
be sharded over worker processes (``jobs``): the chip × configuration
grid is split into tasks, each worker prices its share against the
same traces, and the partial datasets merge into the same table as a
serial run.

Everything is deterministic: graph generation, functional execution
and the noise model are all seeded — each measurement's seed depends
only on (chip, program, graph, configuration, repetition) — so two
invocations produce identical datasets regardless of engine or job
count.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..apps.base import Application
from ..apps.registry import all_applications
from ..chips.database import all_chips
from ..chips.model import ChipModel
from ..compiler.options import OptConfig, enumerate_configs
from ..compiler.pipeline import compile_cached
from ..dsl.ast import Program
from ..graphs.inputs import StudyInput, study_inputs
from ..perfmodel.batch import estimate_runtime_us_batch, measure_repeats_us_batch
from ..perfmodel.noise import measurement_prefix, measurement_seeds
from ..perfmodel.simulate import measure_repeats_us
from ..runtime.trace import Trace
from .dataset import PerfDataset, TestCase
from .progress import PhaseTimer

__all__ = ["ENGINES", "run_study", "collect_traces", "StudyConfig"]

#: Pricing engines: the vectorized default and the scalar reference.
ENGINES = ("batch", "scalar")


class StudyConfig:
    """Parameters of a study run (defaults reproduce the paper scope)."""

    def __init__(
        self,
        apps: Optional[List[Application]] = None,
        inputs: Optional[Dict[str, StudyInput]] = None,
        chips: Optional[List[ChipModel]] = None,
        configs: Optional[List[OptConfig]] = None,
        repetitions: int = 3,
        source: int = 0,
        scale: float = 1.0,
        seed: int = 7,
    ) -> None:
        self.apps = apps if apps is not None else all_applications()
        self.inputs = (
            inputs if inputs is not None else study_inputs(scale=scale, seed=seed)
        )
        self.chips = chips if chips is not None else all_chips()
        self.configs = configs if configs is not None else enumerate_configs()
        self.repetitions = repetitions
        self.source = source


def collect_traces(
    config: StudyConfig, progress: Optional[Callable[[str], None]] = None
) -> Dict[tuple, Trace]:
    """Phase 1: run every (application, input) pair functionally.

    Pairs that cannot run — a weight-requiring application on an
    unweighted graph — are skipped, and each skip is reported through
    ``progress`` so a sweep's log accounts for every pair of the
    factorial.
    """
    traces: Dict[tuple, Trace] = {}
    for inp in config.inputs.values():
        graph = inp.graph
        for app in config.apps:
            if app.requires_weights and not graph.has_weights:
                if progress:
                    progress(
                        f"skipping {app.name} on {inp.name}: requires edge "
                        f"weights but graph is unweighted"
                    )
                continue
            if progress:
                progress(f"tracing {app.name} on {inp.name}")
            result = app.run(graph, source=config.source)
            traces[(app.name, inp.name)] = result.trace
    return traces


def _measure_point(
    plan, trace: Trace, repetitions: int, engine: str, prefix: Optional[int]
) -> List[float]:
    """Price one (plan, trace) point with the selected engine."""
    if engine == "scalar":
        return measure_repeats_us(plan, trace, repetitions)
    true_us = estimate_runtime_us_batch(plan, trace.arrays())
    seeds = measurement_seeds(
        plan.chip,
        trace.program,
        trace.graph,
        plan.config.key(),
        repetitions,
        prefix=prefix,
    )
    return measure_repeats_us_batch(
        plan, trace, repetitions, true_us=true_us, seeds=seeds
    )


# -- parallel sweep workers --------------------------------------------------
#
# Tasks are (chip index, configuration index) cells of the pricing
# grid.  Worker state is installed once per process by the pool
# initializer rather than shipped with every task; a StudyConfig is
# never pickled (its StudyInput builders are closures).

_WORKER_STATE: Optional[tuple] = None


def _init_worker(
    programs: Dict[str, Program],
    traces: Dict[tuple, Trace],
    chips: List[ChipModel],
    configs: List[OptConfig],
    repetitions: int,
    engine: str,
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (programs, traces, chips, configs, repetitions, engine)


def _price_cell(task: Tuple[int, int]):
    """Price every trace under one (chip, configuration) grid cell."""
    chip_idx, cfg_idx = task
    programs, traces, chips, configs, repetitions, engine = _WORKER_STATE
    chip, opt = chips[chip_idx], configs[cfg_idx]
    prefixes: Dict[tuple, int] = {}
    rows = []
    for (app_name, input_name), trace in traces.items():
        plan = compile_cached(programs[app_name], chip, opt)
        prefix = None
        if engine == "batch":
            pkey = (trace.program, trace.graph)
            prefix = prefixes.get(pkey)
            if prefix is None:
                prefix = measurement_prefix(chip, trace.program, trace.graph)
                prefixes[pkey] = prefix
        times = _measure_point(plan, trace, repetitions, engine, prefix)
        rows.append((app_name, input_name, times))
    return chip_idx, cfg_idx, rows


def _run_serial(
    config: StudyConfig,
    traces: Dict[tuple, Trace],
    programs: Dict[str, Program],
    engine: str,
    timer: PhaseTimer,
) -> PerfDataset:
    dataset = PerfDataset()
    for chip in config.chips:
        timer.note(f"pricing on {chip.short_name}")
        prefixes: Dict[tuple, int] = {}
        if engine == "batch":
            for trace in traces.values():
                key = (trace.program, trace.graph)
                if key not in prefixes:
                    prefixes[key] = measurement_prefix(
                        chip, trace.program, trace.graph
                    )
        for opt in config.configs:
            for (app_name, input_name), trace in traces.items():
                plan = compile_cached(programs[app_name], chip, opt)
                times = _measure_point(
                    plan,
                    trace,
                    config.repetitions,
                    engine,
                    prefixes.get((trace.program, trace.graph)),
                )
                dataset.add(
                    TestCase(app_name, input_name, chip.short_name), opt, times
                )
        timer.tick()
    return dataset


def _run_parallel(
    config: StudyConfig,
    traces: Dict[tuple, Trace],
    programs: Dict[str, Program],
    engine: str,
    jobs: int,
    timer: PhaseTimer,
) -> PerfDataset:
    tasks = [
        (chip_idx, cfg_idx)
        for chip_idx in range(len(config.chips))
        for cfg_idx in range(len(config.configs))
    ]
    dataset = PerfDataset()
    current_chip = -1
    initargs = (
        programs,
        traces,
        config.chips,
        config.configs,
        config.repetitions,
        engine,
    )
    chunksize = max(1, len(tasks) // (jobs * 8))
    with multiprocessing.Pool(
        jobs, initializer=_init_worker, initargs=initargs
    ) as pool:
        # imap preserves task order, so the merged dataset's insertion
        # order matches the serial sweep's chip -> config -> test order.
        for chip_idx, cfg_idx, rows in pool.imap(
            _price_cell, tasks, chunksize=chunksize
        ):
            if chip_idx != current_chip:
                if current_chip >= 0:
                    timer.tick()
                timer.note(f"pricing on {config.chips[chip_idx].short_name}")
                current_chip = chip_idx
            chip = config.chips[chip_idx]
            opt = config.configs[cfg_idx]
            for app_name, input_name, times in rows:
                dataset.add(
                    TestCase(app_name, input_name, chip.short_name), opt, times
                )
    if current_chip >= 0:
        timer.tick()
    return dataset


def run_study(
    config: Optional[StudyConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    *,
    jobs: int = 1,
    engine: str = "batch",
    traces: Optional[Dict[tuple, Trace]] = None,
) -> PerfDataset:
    """Run the full study and return the performance dataset.

    ``engine`` selects the pricing path (``"batch"``, the vectorized
    default, or ``"scalar"``, the reference) and ``jobs`` the number of
    worker processes sharding the chip × configuration grid; every
    combination produces the identical dataset.  Precollected
    ``traces`` (from :func:`collect_traces`) skip phase 1.
    """
    if config is None:
        config = StudyConfig()
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if jobs < 1:
        raise ValueError("jobs must be positive")

    timer = PhaseTimer(progress)
    if traces is None:
        timer.start("tracing", total=len(config.apps) * len(config.inputs))

        def _note_trace(message: str) -> None:
            timer.note(message)
            timer.tick()

        traces = collect_traces(config, _note_trace if progress else None)
        timer.finish(f"collected {len(traces)} traces")

    programs = {app.name: app.program() for app in config.apps}
    timer.start("pricing", total=len(config.chips))
    if jobs == 1:
        dataset = _run_serial(config, traces, programs, engine, timer)
    else:
        dataset = _run_parallel(config, traces, programs, engine, jobs, timer)
    timer.finish(
        f"priced {dataset.n_measurements} measurements "
        f"({len(dataset)} tests, engine={engine}, jobs={jobs})"
    )
    return dataset


def _stderr_progress(message: str) -> None:  # pragma: no cover - CLI helper
    print(f"[study] {message}", file=sys.stderr)


def main() -> None:  # pragma: no cover - CLI entry point
    """CLI: run the full study and save the dataset."""
    import argparse

    parser = argparse.ArgumentParser(description=run_study.__doc__)
    parser.add_argument("output", help="path for the dataset JSON (.gz ok)")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the pricing sweep (default: 1)",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="batch",
        help="pricing engine (default: batch; scalar is the reference path)",
    )
    args = parser.parse_args()

    started = time.time()
    dataset = run_study(
        StudyConfig(scale=args.scale, repetitions=args.repetitions),
        progress=_stderr_progress,
        jobs=args.jobs,
        engine=args.engine,
    )
    dataset.save(args.output)
    print(
        f"wrote {dataset.n_measurements} measurements "
        f"({len(dataset)} tests) in {time.time() - started:.1f}s to {args.output}"
    )


if __name__ == "__main__":  # pragma: no cover
    main()
