"""Shard-level checkpointing for the study sweep.

The pricing phase of a full study is a grid of (chip × configuration)
*shards*; each shard prices every trace and is independent of every
other.  :class:`StudyCheckpoint` persists completed shards to a
directory as they finish, so an interrupted sweep — ``^C``, a machine
reboot, a dead worker pool — resumes from the last completed shard
instead of repeating hours of pricing.

Layout of a checkpoint directory::

    <dir>/
      manifest.json              {"format", "fingerprint", "n_chips",
                                  "n_configs"}
      shard-<chip>-<config>.json {"task", "rows", "checksum"}
      shard-<chip>-<config>.v3   columnar chunk (store="v3" sweeps)
      traces-<fingerprint>.bin   shared compiled-trace cache (optional)
      metrics.json               {"segments", "checksum"} (optional)

Every file is written atomically (temp + rename) with a SHA-256
checksum, so a crash can at worst lose the shard being written, never
corrupt one already recorded; invalid shards found on resume are
dropped and simply re-priced.  A columnar (``store="v3"``) sweep's
workers spill each shard as a ``perf-dataset-v3`` chunk which
:meth:`StudyCheckpoint.record_chunk` renames into place — the same
bytes serve as the checkpoint shard and the parent's merge input, so
nothing is re-serialised.

The manifest carries the study's *fingerprint* — a stable hash over
the chips, configurations, repetitions, engine, inputs and collected
traces (see :func:`study_fingerprint`).  Resuming against a checkpoint
whose fingerprint differs raises
:class:`~repro.errors.CheckpointError`: shards priced under a
different study must be rejected, not silently merged.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional, Tuple

from ..errors import CheckpointError, DatasetError
from ..util import atomic_write_text, sha256_hex, stable_hash

__all__ = ["StudyCheckpoint", "study_fingerprint"]

#: Format tag of checkpoint manifests and shards.
CHECKPOINT_FORMAT = "study-checkpoint-v1"

#: A shard's rows: (application, input, timings) per priced trace.
ShardRows = List[Tuple[str, str, List[float]]]

_SHARD_RE = re.compile(r"^shard-(\d+)-(\d+)\.(json|v3)$")

#: Worker spill chunks not yet renamed into shards, and trace caches.
_SPILL_RE = re.compile(r"^(chunk-\d+-\d+\.v3|traces-[0-9a-f]+\.bin)$")


def study_fingerprint(config, engine: str, traces: Dict[tuple, object]) -> str:
    """A stable identity for one study's pricing grid.

    Covers everything that determines a shard's timings: the chip and
    configuration axes, repetition count, pricing engine, source
    vertex, the input graphs (name and size) and the collected traces
    (program, graph, launch count).  Two runs with the same fingerprint
    price bit-identical shards, so their checkpoints are interchangeable;
    any drift — a different scale, seed, graph or app set — changes the
    fingerprint and invalidates the checkpoint.
    """
    parts: List[object] = [
        CHECKPOINT_FORMAT,
        engine,
        config.repetitions,
        config.source,
        "|".join(chip.short_name for chip in config.chips),
        "|".join(cfg.key() for cfg in config.configs),
    ]
    for name in sorted(config.inputs):
        graph = config.inputs[name].graph
        parts.append(f"{name}:{graph.n_nodes}:{graph.n_edges}")
    for app_name, input_name in sorted(traces):
        trace = traces[(app_name, input_name)]
        parts.append(f"{app_name}/{input_name}:{trace.n_launches}")
    return f"{stable_hash(*parts):016x}"


class StudyCheckpoint:
    """A directory of completed pricing shards, written as they finish."""

    MANIFEST = "manifest.json"
    METRICS = "metrics.json"

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        self._skipped = 0  # invalid shards dropped by the last open()
        #: Tasks the runner quarantined after repeated timeouts; they
        #: have no shard files, so a later ``--resume`` re-prices them.
        self.quarantined_tasks: List[Tuple[int, int]] = []

    # -- lifecycle ---------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, self.MANIFEST)

    def _shard_path(self, task: Tuple[int, int], ext: str = "json") -> str:
        return os.path.join(
            self.directory, f"shard-{task[0]:04d}-{task[1]:04d}.{ext}"
        )

    def _read_manifest(self):
        try:
            with open(self._manifest_path()) as f:
                manifest = json.load(f)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable checkpoint manifest in {self.directory!r}: {exc}"
            ) from exc
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != CHECKPOINT_FORMAT
        ):
            raise CheckpointError(
                f"checkpoint {self.directory!r} has an unrecognised manifest "
                f"format (expected {CHECKPOINT_FORMAT!r})"
            )
        return manifest

    def open(
        self,
        fingerprint: str,
        n_chips: int,
        n_configs: int,
        resume: bool,
        chips: Optional[List[str]] = None,
        configs: Optional[List[str]] = None,
    ) -> Dict[Tuple[int, int], ShardRows]:
        """Attach to the directory; return already-completed shards.

        A fresh (or non-``resume``) open clears any prior contents and
        starts an empty checkpoint.  A ``resume`` open verifies the
        manifest fingerprint — raising
        :class:`~repro.errors.CheckpointError` on mismatch — and loads
        every valid shard; shards that fail validation (truncation,
        checksum mismatch, out-of-range task) are dropped for
        re-pricing, never merged.

        ``chips``/``configs`` optionally record the axis names (chip
        short names and configuration keys) in the manifest; ``repro
        doctor`` uses them to map shards back to grid cells and to
        export a partial dataset from an interrupted run.
        """
        manifest = self._read_manifest() if resume else None
        if resume and manifest is not None:
            if manifest.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    f"stale checkpoint {self.directory!r}: its fingerprint "
                    f"{manifest.get('fingerprint')!r} does not match this "
                    f"study's {fingerprint!r} (different scale, seed, apps, "
                    f"chips, configs, repetitions or engine); delete the "
                    f"directory or re-run without --resume"
                )
            return self._load_shards(n_chips, n_configs)
        # Fresh start: drop any stale contents, write a new manifest.
        self._clear_files()
        os.makedirs(self.directory, exist_ok=True)
        manifest_data = {
            "format": CHECKPOINT_FORMAT,
            "fingerprint": fingerprint,
            "n_chips": n_chips,
            "n_configs": n_configs,
        }
        if chips is not None:
            manifest_data["chips"] = list(chips)
        if configs is not None:
            manifest_data["configs"] = list(configs)
        atomic_write_text(self._manifest_path(), json.dumps(manifest_data))
        return {}

    def _clear_files(self) -> None:
        if not os.path.isdir(self.directory):
            return
        for name in os.listdir(self.directory):
            if (
                name == self.MANIFEST
                or name == self.METRICS
                or _SHARD_RE.match(name)
                or _SPILL_RE.match(name)
            ):
                try:
                    os.unlink(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass

    def clear(self) -> None:
        """Delete the checkpoint's files (after a successful save)."""
        self._clear_files()
        try:
            os.rmdir(self.directory)
        except OSError:  # non-empty (foreign files) or already gone
            pass

    # -- shards ------------------------------------------------------------

    def record(self, task: Tuple[int, int], rows: ShardRows) -> None:
        """Atomically persist one completed shard."""
        body = json.dumps(
            [[app, inp, list(times)] for app, inp, times in rows],
            separators=(",", ":"),
        )
        payload = (
            f'{{"task": [{task[0]}, {task[1]}], '
            f'"checksum": "{sha256_hex(body)}", '
            f'"rows": {body}}}'
        )
        atomic_write_text(self._shard_path(task), payload)

    def record_chunk(self, task: Tuple[int, int], chunk_path: str) -> str:
        """Adopt a worker's spilled columnar chunk as this task's shard.

        The chunk was already written atomically by the worker's
        :class:`~repro.store.ColumnWriter`; renaming it into the shard
        slot is the whole persistence step — no re-serialisation.  Any
        stale JSON twin for the task is dropped so a shard never
        resolves ambiguously.  Returns the shard's final path (the
        parent merges straight from it).
        """
        dst = self._shard_path(task, "v3")
        try:
            os.unlink(self._shard_path(task, "json"))
        except OSError:
            pass
        os.replace(chunk_path, dst)
        return dst

    def _load_shards(
        self, n_chips: int, n_configs: int
    ) -> Dict[Tuple[int, int], ShardRows]:
        shards: Dict[Tuple[int, int], ShardRows] = {}
        self._skipped = 0
        for name in sorted(os.listdir(self.directory)):
            match = _SHARD_RE.match(name)
            if not match:
                continue
            task = (int(match.group(1)), int(match.group(2)))
            if match.group(3) == "v3":
                rows = self._read_v3_shard(name, task, n_chips, n_configs)
            else:
                rows = self._read_shard(name, task, n_chips, n_configs)
            if rows is None:
                self._skipped += 1
            elif task in shards:  # a .json and a .v3 twin: re-price
                del shards[task]
                self._skipped += 1
            else:
                shards[task] = rows
        return shards

    def _read_v3_shard(self, name, task, n_chips, n_configs):
        """Rows of one columnar chunk shard, or ``None`` if invalid.

        A chunk holds exactly one (chip, configuration) cell of the
        grid; anything else — multiple chips/configs, damage anywhere
        in the file — invalidates the shard for re-pricing.
        """
        from ..store.columnar import ColumnarDataset

        if not (0 <= task[0] < n_chips and 0 <= task[1] < n_configs):
            return None
        try:
            ds = ColumnarDataset.load(os.path.join(self.directory, name))
        except DatasetError:
            return None
        try:
            ds.verify()
            tables = ds.string_tables()
            if len(tables["chips"]) > 1 or len(tables["configs"]) > 1:
                return None
            return [
                (test.app, test.graph, list(times))
                for test, _key, times in ds.iter_cells()
            ]
        except DatasetError:
            return None
        finally:
            ds.close()

    def _read_shard(self, name, task, n_chips, n_configs):
        if not (0 <= task[0] < n_chips and 0 <= task[1] < n_configs):
            return None
        try:
            with open(os.path.join(self.directory, name)) as f:
                payload = json.load(f)
            if payload["task"] != [task[0], task[1]]:
                return None
            body = json.dumps(payload["rows"], separators=(",", ":"))
            if sha256_hex(body) != payload["checksum"]:
                return None
            return [
                (str(app), str(inp), [float(t) for t in times])
                for app, inp, times in payload["rows"]
            ]
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # -- metrics -----------------------------------------------------------

    def _metrics_path(self) -> str:
        return os.path.join(self.directory, self.METRICS)

    def save_metrics(self, segments: List[dict]) -> None:
        """Atomically persist the run's observability segments.

        ``segments`` are recorder snapshots (prior interrupted runs
        plus the current run so far); a resumed run loads them back so
        its RunReport can account for work done before the interrupt.
        """
        body = json.dumps(segments, sort_keys=True, separators=(",", ":"))
        payload = (
            f'{{"checksum": "{sha256_hex(body)}", "segments": {body}}}'
        )
        atomic_write_text(self._metrics_path(), payload)

    def load_metrics(self) -> List[dict]:
        """The persisted observability segments, or ``[]``.

        Metrics are best-effort telemetry: a missing, truncated or
        checksum-mismatched file yields an empty list rather than an
        error — resuming the pricing itself must never be blocked by a
        damaged metrics sidecar.
        """
        try:
            with open(self._metrics_path()) as f:
                payload = json.load(f)
            body = json.dumps(
                payload["segments"], sort_keys=True, separators=(",", ":")
            )
            if sha256_hex(body) != payload["checksum"]:
                return []
            segments = payload["segments"]
            if not isinstance(segments, list):
                return []
            return [s for s in segments if isinstance(s, dict)]
        except (OSError, ValueError, KeyError, TypeError):
            return []

    @property
    def skipped_shards(self) -> int:
        """Invalid shards dropped (and re-priced) by the last resume."""
        return self._skipped

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StudyCheckpoint({self.directory!r})"
