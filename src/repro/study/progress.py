"""Per-phase progress timing for long study sweeps.

The full study traces 51 (application, input) pairs and prices
~29 000 (test, configuration) points; a sweep on laptop hardware runs
for minutes.  :class:`PhaseTimer` decorates the runner's progress
messages with phase-relative counters, elapsed time and a simple
rate-based ETA, so the CLI's stderr reporter (and any user-supplied
callback) can show where a sweep is without the runner knowing how the
messages are displayed.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["PhaseTimer", "format_duration"]


def format_duration(seconds: float) -> str:
    """Compact human-readable duration: ``0.4s``, ``12.3s``, ``2m05s``."""
    if seconds < 0:
        seconds = 0.0
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    return f"{minutes}m{secs:02d}s"


class PhaseTimer:
    """Decorates progress messages with per-phase counters and ETA.

    A phase is opened with :meth:`start` (optionally with a known total
    number of steps), annotated with :meth:`note`, advanced with
    :meth:`tick` and closed with :meth:`finish`.  All output goes
    through the ``emit`` callback; a ``None`` callback silences the
    timer without changing the caller's control flow.
    """

    def __init__(
        self,
        emit: Optional[Callable[[str], None]],
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._emit = emit
        self._clock = clock
        self._phase: Optional[str] = None
        self._started = 0.0
        self._done = 0
        self._total: Optional[int] = None

    def start(self, phase: str, total: Optional[int] = None) -> None:
        """Open a phase of ``total`` steps (``None`` when unknown)."""
        self._phase = phase
        self._started = self._clock()
        self._done = 0
        self._total = total

    def tick(self, steps: int = 1) -> None:
        """Advance the phase counter without emitting anything."""
        self._done += steps

    def note(self, message: str) -> None:
        """Emit ``message`` decorated with progress, elapsed and ETA."""
        if self._emit is None:
            return
        elapsed = self._clock() - self._started
        parts = []
        if self._total:
            parts.append(f"{self._done}/{self._total}")
        parts.append(f"elapsed {format_duration(elapsed)}")
        if self._total and 0 < self._done < self._total:
            eta = elapsed / self._done * (self._total - self._done)
            parts.append(f"eta {format_duration(eta)}")
        self._emit(f"{message} [{', '.join(parts)}]")

    def finish(self, message: str) -> None:
        """Close the phase, emitting ``message`` with the phase's time."""
        if self._emit is not None:
            elapsed = self._clock() - self._started
            self._emit(f"{message} in {format_duration(elapsed)}")
        self._phase = None
