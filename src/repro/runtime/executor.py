"""Functional executor: runs a DSL program and collects its trace.

Executes an application's kernels (vectorised Python step functions
bound to the program's kernel names) following the host schedule —
straight-line invocations and fixpoint loops — exactly as the OpenCL
host code would, and records a :class:`~repro.runtime.trace.Trace` of
the work performed.  Optimisations never change this phase: they are
semantics-preserving, so functional execution happens once per
(application, input) and all 6 chips × 96 configurations are priced
from the same trace by :mod:`repro.perfmodel`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dsl.ast import Fixpoint, Invoke, Program
from ..dsl.validate import validate_program
from ..errors import ExecutionError
from ..graphs.csr import CSRGraph
from .stats import StepResult
from .trace import LaunchRecord, Trace

__all__ = ["execute", "ExecutionResult"]


class ExecutionResult:
    """Outcome of a functional execution: final state plus trace."""

    def __init__(self, state: dict, trace: Trace) -> None:
        self.state = state
        self.trace = trace


def _record(kernel: str, result: StepResult, iteration: int, in_fixpoint: bool) -> LaunchRecord:
    return LaunchRecord(
        kernel=kernel,
        iteration=iteration,
        in_fixpoint=in_fixpoint,
        active_items=result.active_items,
        expanded_items=result.expanded_items,
        edges=result.edges,
        deg_mean=result.deg_mean,
        deg_std=result.deg_std,
        deg_max=result.deg_max,
        deg_hist=tuple(result.deg_hist),
        pushes=result.pushes,
        contended_rmws=result.contended_rmws,
        uncontended_rmws=result.uncontended_rmws,
        irregularity=min(1.0, max(0.0, result.irregularity)),
    )


def execute(
    app,
    graph: CSRGraph,
    source: int = 0,
    max_iterations: Optional[int] = None,
) -> ExecutionResult:
    """Run ``app`` on ``graph`` functionally and trace the workload.

    ``app`` follows the :class:`repro.apps.base.Application` protocol:
    ``program()``, ``init_state(graph, source)``,
    ``kernel_step(name, state, graph)`` and
    ``extract_result(state, graph)``.

    Raises :class:`~repro.errors.ExecutionError` when a fixpoint fails
    to converge within ``max_iterations`` (default: a generous
    ``4 * n_nodes + 512`` — every study application converges well
    below it).
    """
    program: Program = app.program()
    validate_program(program)
    if max_iterations is None:
        # Linear head-room for traversal fixpoints plus a constant term
        # for size-independent convergence (e.g. PageRank's residual
        # decay, ~log(eps)/log(damping) iterations on any graph).
        max_iterations = 4 * graph.n_nodes + 512

    state = app.init_state(graph, source)
    trace = Trace(program=program.name, graph=graph.name)

    for node in program.schedule:
        if isinstance(node, Invoke):
            result = app.kernel_step(node.kernel, state, graph)
            trace.add(_record(node.kernel, result, iteration=-1, in_fixpoint=False))
        elif isinstance(node, Fixpoint):
            _run_fixpoint(app, node, state, graph, trace, max_iterations)
        else:  # pragma: no cover - validated earlier
            raise ExecutionError(f"unknown schedule node {node!r}")

    result_array = app.extract_result(state, graph)
    trace.result_checksum = _checksum(result_array)
    return ExecutionResult(state, trace)


def _run_fixpoint(
    app,
    fixpoint: Fixpoint,
    state: dict,
    graph: CSRGraph,
    trace: Trace,
    max_iterations: int,
) -> None:
    for iteration in range(max_iterations):
        more_work = False
        for invoke in fixpoint.body:
            result = app.kernel_step(invoke.kernel, state, graph)
            trace.add(_record(invoke.kernel, result, iteration, in_fixpoint=True))
            more_work = more_work or result.more_work
        if not more_work:
            trace.converged = True
            return
    raise ExecutionError(
        f"program {trace.program!r} on {trace.graph!r}: fixpoint did not "
        f"converge within {max_iterations} iterations"
    )


def _checksum(result: np.ndarray) -> float:
    """Order-independent checksum of an application result array."""
    arr = np.asarray(result, dtype=np.float64)
    finite = arr[np.isfinite(arr)]
    return float(finite.sum() + 0.5 * np.count_nonzero(~np.isfinite(arr)))
