"""Workload traces: what a program actually did on an input.

The study's two-phase design runs each (application, input) pair once
*functionally* and records, per kernel launch, the quantities the
performance model prices: outer work items, inner-loop edge work, the
degree distribution of expanded nodes (load imbalance), worklist
pushes and other atomics (RMW pressure), and the spatial irregularity
of neighbour accesses (memory divergence).  Every (chip,
configuration) timing is then derived from the same trace — mirroring
the paper's premise that the optimisations are semantics-preserving,
so the *work* is fixed and only its *cost* varies.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["LaunchRecord", "Trace"]


@dataclass(frozen=True)
class LaunchRecord:
    """Workload statistics of one kernel launch."""

    kernel: str
    iteration: int  # fixpoint iteration index; -1 outside fixpoints
    in_fixpoint: bool
    active_items: int  # outer-loop work items scanned
    expanded_items: int  # items whose inner loop actually ran
    edges: int  # total inner-loop iterations
    deg_mean: float = 0.0  # over expanded items
    deg_std: float = 0.0
    deg_max: int = 0
    deg_hist: tuple = ()  # power-of-two degree buckets of expanded items
    pushes: int = 0  # worklist appends (contended RMW each)
    contended_rmws: int = 0  # other hot-location RMWs (flags, tails)
    uncontended_rmws: int = 0  # distributed per-node/edge RMWs
    irregularity: float = 0.0  # [0, 1] neighbour-access scatter

    def __post_init__(self) -> None:
        if self.active_items < 0 or self.edges < 0:
            raise ValueError("work counts must be non-negative")
        if not 0.0 <= self.irregularity <= 1.0:
            raise ValueError("irregularity must lie in [0, 1]")

    @property
    def has_inner_work(self) -> bool:
        return self.edges > 0


@dataclass
class Trace:
    """Complete workload trace of one functional program execution."""

    program: str
    graph: str
    launches: List[LaunchRecord] = field(default_factory=list)
    converged: bool = True
    result_checksum: Optional[float] = None

    def add(self, record: LaunchRecord) -> None:
        self.launches.append(record)

    # -- summary quantities used by the performance model ---------------

    @property
    def n_launches(self) -> int:
        return len(self.launches)

    @property
    def n_fixpoint_iterations(self) -> int:
        """Dependent fixpoint iterations, each costing one host round-trip."""
        iters = {r.iteration for r in self.launches if r.in_fixpoint}
        return len(iters)

    @property
    def total_edges(self) -> int:
        return sum(r.edges for r in self.launches)

    @property
    def total_pushes(self) -> int:
        return sum(r.pushes for r in self.launches)

    def launches_of(self, kernel: str) -> Iterator[LaunchRecord]:
        return (r for r in self.launches if r.kernel == kernel)

    # -- (de)serialisation ----------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "program": self.program,
            "graph": self.graph,
            "converged": self.converged,
            "result_checksum": self.result_checksum,
            "launches": [asdict(r) for r in self.launches],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Trace":
        trace = cls(
            program=data["program"],
            graph=data["graph"],
            converged=data["converged"],
            result_checksum=data.get("result_checksum"),
        )
        for rec in data["launches"]:
            rec = dict(rec)
            rec["deg_hist"] = tuple(rec.get("deg_hist", ()))
            trace.add(LaunchRecord(**rec))
        return trace

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_dict(json.loads(text))
