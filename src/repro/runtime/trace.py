"""Workload traces: what a program actually did on an input.

The study's two-phase design runs each (application, input) pair once
*functionally* and records, per kernel launch, the quantities the
performance model prices: outer work items, inner-loop edge work, the
degree distribution of expanded nodes (load imbalance), worklist
pushes and other atomics (RMW pressure), and the spatial irregularity
of neighbour accesses (memory divergence).  Every (chip,
configuration) timing is then derived from the same trace — mirroring
the paper's premise that the optimisations are semantics-preserving,
so the *work* is fixed and only its *cost* varies.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["LaunchRecord", "MemoStats", "Trace", "TraceArrays", "TraceGroup", "memo_stats"]


class MemoStats:
    """Process-wide hit/miss tally of the batch engine's plan-keyed memo.

    Plain attribute increments keep the memo's hot path free of any
    recorder indirection; the study runner reads (and differences) the
    tally around each shard to surface ``perfmodel.memo.*`` counters in
    its :class:`~repro.obs.report.RunReport`.  Note that *hit* rates
    depend on which shards a worker process happens to price (memo
    entries persist across shards within a process), so only the
    hit+miss lookup total is placement-independent.
    """

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0


#: Tally incremented by every :meth:`TraceGroup.memo` lookup.
memo_stats = MemoStats()


@dataclass(frozen=True)
class LaunchRecord:
    """Workload statistics of one kernel launch."""

    kernel: str
    iteration: int  # fixpoint iteration index; -1 outside fixpoints
    in_fixpoint: bool
    active_items: int  # outer-loop work items scanned
    expanded_items: int  # items whose inner loop actually ran
    edges: int  # total inner-loop iterations
    deg_mean: float = 0.0  # over expanded items
    deg_std: float = 0.0
    deg_max: int = 0
    deg_hist: tuple = ()  # power-of-two degree buckets of expanded items
    pushes: int = 0  # worklist appends (contended RMW each)
    contended_rmws: int = 0  # other hot-location RMWs (flags, tails)
    uncontended_rmws: int = 0  # distributed per-node/edge RMWs
    irregularity: float = 0.0  # [0, 1] neighbour-access scatter

    def __post_init__(self) -> None:
        if self.active_items < 0 or self.edges < 0:
            raise ValueError("work counts must be non-negative")
        if not 0.0 <= self.irregularity <= 1.0:
            raise ValueError("irregularity must lie in [0, 1]")

    @property
    def has_inner_work(self) -> bool:
        return self.edges > 0


@dataclass
class Trace:
    """Complete workload trace of one functional program execution."""

    program: str
    graph: str
    launches: List[LaunchRecord] = field(default_factory=list)
    converged: bool = True
    result_checksum: Optional[float] = None

    def add(self, record: LaunchRecord) -> None:
        self.launches.append(record)

    # -- summary quantities used by the performance model ---------------

    @property
    def n_launches(self) -> int:
        return len(self.launches)

    @property
    def n_fixpoint_iterations(self) -> int:
        """Dependent fixpoint iterations, each costing one host round-trip."""
        iters = {r.iteration for r in self.launches if r.in_fixpoint}
        return len(iters)

    @property
    def total_edges(self) -> int:
        return sum(r.edges for r in self.launches)

    @property
    def total_pushes(self) -> int:
        return sum(r.pushes for r in self.launches)

    def launches_of(self, kernel: str) -> Iterator[LaunchRecord]:
        return (r for r in self.launches if r.kernel == kernel)

    def arrays(self) -> "TraceArrays":
        """Structure-of-arrays view of the launches, cached on the trace.

        The conversion is paid once; every subsequent (chip,
        configuration) batch pricing reuses it.  The cache is
        invalidated when launches are appended.
        """
        cached = getattr(self, "_arrays_cache", None)
        if cached is None or cached.n_launches != len(self.launches):
            cached = TraceArrays.from_trace(self)
            self._arrays_cache = cached
        return cached

    # -- (de)serialisation ----------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "program": self.program,
            "graph": self.graph,
            "converged": self.converged,
            "result_checksum": self.result_checksum,
            "launches": [asdict(r) for r in self.launches],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Trace":
        trace = cls(
            program=data["program"],
            graph=data["graph"],
            converged=data["converged"],
            result_checksum=data.get("result_checksum"),
        )
        for rec in data["launches"]:
            rec = dict(rec)
            rec["deg_hist"] = tuple(rec.get("deg_hist", ()))
            trace.add(LaunchRecord(**rec))
        return trace

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class TraceGroup:
    """Launches of one kernel sharing one degree-histogram width.

    Grouping by (kernel, width) serves two purposes: every launch in a
    group is priced under the same :class:`~repro.compiler.plan.KernelPlan`,
    and the degree histograms stack into one rectangular array without
    padding — reductions over the bucket axis therefore see exactly the
    same operand lengths as the scalar model, which keeps the batch
    path bit-identical (padding with zeros would change NumPy's
    pairwise summation trees).
    """

    kernel: str
    width: int  # number of degree-histogram buckets
    indices: np.ndarray  # positions in Trace.launches (int64)
    active_items: np.ndarray  # int64
    expanded_items: np.ndarray  # int64
    edges: np.ndarray  # int64
    pushes: np.ndarray  # int64
    contended_rmws: np.ndarray  # int64
    uncontended_rmws: np.ndarray  # int64
    irregularity: np.ndarray  # float64
    in_fixpoint: np.ndarray  # bool
    deg_hist: np.ndarray  # float64, shape (n, width), C-contiguous

    #: Memo for plan-keyed intermediate cost arrays.  Many of the 96
    #: study configurations share cost-structure facts (same schemes,
    #: same workgroup size, …); pricing caches those intermediates here
    #: keyed by the facts they depend on, so they are computed once per
    #: distinct key and reused bit-identically.  Not part of equality
    #: or serialisation.
    _cache: Dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def n(self) -> int:
        return int(self.indices.size)

    def memo(self, key, builder):
        """Return the cached value for ``key``, building it on miss."""
        value = self._cache.get(key)
        if value is None:
            memo_stats.misses += 1
            value = builder()
            self._cache[key] = value
        else:
            memo_stats.hits += 1
        return value

    def __getstate__(self):
        # Drop the memo when pickling (e.g. shipping traces to sweep
        # workers): entries are plan-derived and cheap to rebuild.
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state


@dataclass(frozen=True)
class TraceArrays:
    """Structure-of-arrays form of a :class:`Trace` for batch pricing.

    One-time conversion of the launch records into NumPy arrays (see
    :meth:`Trace.arrays` for the cached accessor), plus the host-side
    launch counts the overhead model needs.
    """

    program: str
    graph: str
    n_launches: int
    groups: Tuple[TraceGroup, ...]
    n_outside_fixpoint: int
    n_inside_fixpoint: int
    n_fixpoint_iterations: int

    @classmethod
    def from_trace(cls, trace: Trace) -> "TraceArrays":
        by_shape: Dict[Tuple[str, int], List[int]] = {}
        for i, rec in enumerate(trace.launches):
            by_shape.setdefault((rec.kernel, len(rec.deg_hist)), []).append(i)

        groups = []
        for (kernel, width), idxs in by_shape.items():
            recs = [trace.launches[i] for i in idxs]
            hist = np.array(
                [r.deg_hist for r in recs], dtype=np.float64
            ).reshape(len(recs), width)
            groups.append(
                TraceGroup(
                    kernel=kernel,
                    width=width,
                    indices=np.asarray(idxs, dtype=np.int64),
                    active_items=np.array(
                        [r.active_items for r in recs], dtype=np.int64
                    ),
                    expanded_items=np.array(
                        [r.expanded_items for r in recs], dtype=np.int64
                    ),
                    edges=np.array([r.edges for r in recs], dtype=np.int64),
                    pushes=np.array([r.pushes for r in recs], dtype=np.int64),
                    contended_rmws=np.array(
                        [r.contended_rmws for r in recs], dtype=np.int64
                    ),
                    uncontended_rmws=np.array(
                        [r.uncontended_rmws for r in recs], dtype=np.int64
                    ),
                    irregularity=np.array(
                        [r.irregularity for r in recs], dtype=np.float64
                    ),
                    in_fixpoint=np.array(
                        [r.in_fixpoint for r in recs], dtype=bool
                    ),
                    deg_hist=np.ascontiguousarray(hist),
                )
            )

        inside = sum(1 for r in trace.launches if r.in_fixpoint)
        return cls(
            program=trace.program,
            graph=trace.graph,
            n_launches=len(trace.launches),
            groups=tuple(groups),
            n_outside_fixpoint=len(trace.launches) - inside,
            n_inside_fixpoint=inside,
            n_fixpoint_iterations=trace.n_fixpoint_iterations,
        )
