"""Helpers for computing per-launch workload statistics.

Applications' step functions return a :class:`StepResult`; these
helpers fill in the load-imbalance and memory-divergence fields from
the actual frontier so every application reports them consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph

__all__ = [
    "StepResult",
    "degree_histogram",
    "frontier_degree_stats",
    "frontier_step_result",
    "access_irregularity",
]


@dataclass
class StepResult:
    """What one kernel step did, as reported by an application."""

    active_items: int
    expanded_items: int = 0
    edges: int = 0
    deg_mean: float = 0.0
    deg_std: float = 0.0
    deg_max: int = 0
    deg_hist: Tuple[int, ...] = ()  # power-of-two degree buckets
    pushes: int = 0
    contended_rmws: int = 0
    uncontended_rmws: int = 0
    irregularity: float = 0.0
    more_work: bool = False  # drives fixpoint convergence


def degree_histogram(degrees: np.ndarray) -> Tuple[int, ...]:
    """Power-of-two histogram of positive degrees.

    Bucket ``i`` counts nodes with degree in ``[2**i, 2**(i+1))``;
    zero-degree nodes contribute no inner-loop work and are dropped.
    The histogram is the distributional input to the load-imbalance
    model (expected worst lane among co-scheduled threads).
    """
    degrees = np.asarray(degrees)
    degrees = degrees[degrees > 0]
    if degrees.size == 0:
        return ()
    buckets = np.floor(np.log2(degrees)).astype(np.int64)
    counts = np.bincount(buckets)
    return tuple(int(c) for c in counts)


def frontier_degree_stats(
    graph: CSRGraph, frontier: np.ndarray
) -> Tuple[float, float, int, int]:
    """(mean, std, max, total) out-degree over a set of frontier nodes.

    These moments parameterise the load-imbalance model: the expected
    worst lane in a subgroup/workgroup grows with the std and max of
    the degrees being distributed one-per-thread.
    """
    if frontier.size == 0:
        return 0.0, 0.0, 0, 0
    deg = graph.out_degrees()[frontier].astype(np.float64)
    return float(deg.mean()), float(deg.std()), int(deg.max()), int(deg.sum())


def access_irregularity(
    destinations: np.ndarray, line_words: int = 16
) -> float:
    """Spatial irregularity of a neighbour-access stream, in [0, 1].

    The fraction of consecutive accesses that cross a cache-line
    boundary: a coalesced sweep over an array scores ≈ ``1/line_words``;
    a fully scattered gather scores ≈ 1.  Chips multiply this by their
    divergence sensitivity (MALI's being an order of magnitude above
    the others — paper Table X, ``m-divg``).
    """
    if destinations.size < 2:
        return 0.0 if destinations.size == 0 else float(1.0 / line_words)
    lines = np.asarray(destinations, dtype=np.int64) // line_words
    crossings = np.count_nonzero(lines[1:] != lines[:-1])
    return float(crossings / (destinations.size - 1))


def frontier_step_result(
    graph: CSRGraph,
    frontier: np.ndarray,
    *,
    active_items: Optional[int] = None,
    destinations: Optional[np.ndarray] = None,
    pushes: int = 0,
    contended_rmws: int = 0,
    uncontended_rmws: int = 0,
    more_work: bool = False,
) -> StepResult:
    """Build a :class:`StepResult` for a frontier-expansion kernel.

    ``active_items`` defaults to the frontier size (data-driven
    kernels); topology-driven kernels pass ``graph.n_nodes`` since they
    scan every node to find the active ones.
    """
    mean, std, dmax, total = frontier_degree_stats(graph, frontier)
    irr = (
        access_irregularity(destinations)
        if destinations is not None
        else (1.0 / 16 if total else 0.0)
    )
    hist = degree_histogram(graph.out_degrees()[frontier]) if frontier.size else ()
    return StepResult(
        active_items=int(frontier.size if active_items is None else active_items),
        expanded_items=int(frontier.size),
        edges=total,
        deg_mean=mean,
        deg_std=std,
        deg_max=dmax,
        deg_hist=hist,
        pushes=pushes,
        contended_rmws=contended_rmws,
        uncontended_rmws=uncontended_rmws,
        irregularity=irr,
        more_work=more_work,
    )
