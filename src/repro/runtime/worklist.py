"""Worklist machinery for data-driven graph applications.

Models the global-memory worklist the IrGL runtime uses: a double
buffer where one kernel pops the *in* list and pushes to the *out*
list, and the host (or the outlined device loop) swaps them between
iterations.  Push counting matters — every push is one contended
global RMW, the raw material of cooperative conversion.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ExecutionError

__all__ = ["Worklist"]


class Worklist:
    """A double-buffered node worklist with push accounting."""

    def __init__(self, initial: Optional[np.ndarray] = None) -> None:
        self._current = (
            np.asarray(initial, dtype=np.int64).ravel().copy()
            if initial is not None
            else np.empty(0, dtype=np.int64)
        )
        self._next: list = []
        self._pushes_this_iteration = 0
        self.total_pushes = 0

    @property
    def size(self) -> int:
        return int(self._current.size)

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    def items(self) -> np.ndarray:
        """The current iteration's items (read-only semantics)."""
        return self._current

    def push(self, items: np.ndarray, deduplicate: bool = False) -> int:
        """Append items to the out-buffer; returns the number pushed.

        ``deduplicate`` models applications that filter duplicates
        before pushing (each still costs the filtering atomic, but the
        worklist stays smaller); the push count returned is the number
        of atomic tail bumps actually performed.
        """
        items = np.asarray(items, dtype=np.int64).ravel()
        if deduplicate:
            items = np.unique(items)
        self._next.append(items)
        n = int(items.size)
        self._pushes_this_iteration += n
        self.total_pushes += n
        return n

    def swap(self) -> int:
        """End-of-iteration buffer swap; returns pushes this iteration."""
        pushes = self._pushes_this_iteration
        self._current = (
            np.concatenate(self._next) if self._next else np.empty(0, dtype=np.int64)
        )
        self._next = []
        self._pushes_this_iteration = 0
        return pushes

    def checked_nonempty(self) -> np.ndarray:
        if self.is_empty:
            raise ExecutionError("pop from an empty worklist")
        return self._current
