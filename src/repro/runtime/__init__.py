"""Functional runtime: executor, worklists and trace collection."""

from .executor import ExecutionResult, execute
from .stats import (
    StepResult,
    access_irregularity,
    degree_histogram,
    frontier_degree_stats,
    frontier_step_result,
)
from .trace import LaunchRecord, Trace
from .worklist import Worklist

__all__ = [
    "ExecutionResult",
    "execute",
    "StepResult",
    "access_irregularity",
    "degree_histogram",
    "frontier_degree_stats",
    "frontier_step_result",
    "LaunchRecord",
    "Trace",
    "Worklist",
]
