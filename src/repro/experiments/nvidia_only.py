"""Section II-B: what an Nvidia-only study would have missed.

The paper notes that prior work evaluated only Nvidia GPUs, and that
restricting its own dataset to the two Nvidia chips shrinks the
observed performance envelope (5x/10x instead of 16x/22x): the
cross-vendor study is what reveals the true spread.  This experiment
computes both envelopes side by side from our dataset.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.portability import performance_envelope
from ..core.reporting import render_table
from ..study.dataset import PerfDataset
from .common import coverage_footnote, default_dataset

__all__ = ["data", "run", "NVIDIA_CHIPS"]

NVIDIA_CHIPS = ("M4000", "GTX1080")


def data(
    dataset: Optional[PerfDataset] = None,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """({scope: max speedup}, {scope: max slowdown}) for the Nvidia-only
    and cross-vendor scopes."""
    dataset = dataset or default_dataset()
    env = performance_envelope(dataset)

    def extremes(chips):
        ups = [env[c][0].factor for c in chips if c in env]
        downs = [env[c][1].factor for c in chips if c in env]
        return max(ups, default=1.0), max(downs, default=1.0)

    nv_up, nv_down = extremes([c for c in dataset.chips if c in NVIDIA_CHIPS])
    all_up, all_down = extremes(dataset.chips)
    return (
        {"nvidia-only": nv_up, "cross-vendor": all_up},
        {"nvidia-only": nv_down, "cross-vendor": all_down},
    )


def run(dataset: Optional[PerfDataset] = None) -> str:
    speedups, slowdowns = data(dataset)
    rows = [
        [
            scope,
            f"{speedups[scope]:.2f}x",
            f"{slowdowns[scope]:.2f}x",
        ]
        for scope in ("nvidia-only", "cross-vendor")
    ]
    return render_table(
        ["Study scope", "Max speedup", "Max slowdown"],
        rows,
        title=(
            "Section II-B: the performance envelope seen by an "
            "Nvidia-only study vs the cross-vendor study\n(paper: 5x/10x "
            "vs 16x/22x — vendor diversity reveals the true spread)"
        ),
    ) + coverage_footnote(dataset)
