"""Beyond the paper: the "few fit most" K-vs-coverage curve.

PAPERS.md's *A Few Fit Most* (Hochgraf & Pai) extends the source
paper's question: rather than one configuration per lattice level, how
many configurations K must ship so the per-cell best of the K retains
at least X % of oracle performance?  This experiment renders, for every
specialisation level, the greedy set-cover curve of
:mod:`repro.core.portfolio`:

* **K vs coverage** — the geomean (across the level's partitions) of
  the fraction of oracle retained by the best-of-K deployment, for
  K = 1 up to the longest curve.  K = 1 is the paper's Table V
  strategy; the last column is the oracle.
* **K to reach the target** — per level, the smallest K at which
  *every* partition meets the fraction-of-oracle target (the number of
  code versions a fleet operator must actually build).

On a holed dataset the analysis degrades with the usual coverage
footnote instead of crashing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.portfolio import DEFAULT_TARGET, PortfolioSet, build_portfolios
from ..core.reporting import render_table
from ..core.strategies import STRATEGY_DIMS
from ..study.dataset import PerfDataset
from ..util import geomean
from .common import (
    coverage_footnote,
    default_analysis,
    default_dataset,
    default_strategies,
)

__all__ = ["data", "run"]


def _portfolios(
    dataset: Optional[PerfDataset], portfolios: Optional[PortfolioSet]
) -> Tuple[PerfDataset, PortfolioSet]:
    if portfolios is not None:
        if dataset is None:
            raise ValueError("portfolios require their source dataset")
        return dataset, portfolios
    if dataset is None:
        return default_dataset(), build_portfolios(
            default_dataset(),
            analysis=default_analysis(),
            strategies=default_strategies(),
        )
    return dataset, build_portfolios(dataset)


def data(
    dataset: Optional[PerfDataset] = None,
    portfolios: Optional[PortfolioSet] = None,
    target: float = DEFAULT_TARGET,
) -> Dict[str, Dict[str, object]]:
    """Per level: the aggregate curve and the K meeting the target.

    Returns ``{level: {"curve": [coverage at K=1..], "k_to_target": K,
    "n_partitions": N, "max_k": longest partition curve}}`` where
    ``curve[k-1]`` is the geomean across the level's partitions of
    coverage at K (partitions shorter than K hold their final value).
    """
    dataset, portfolios = _portfolios(dataset, portfolios)
    out: Dict[str, Dict[str, object]] = {}
    for level in STRATEGY_DIMS:
        curves = list(portfolios.levels.get(level, {}).values())
        if not curves:
            continue
        max_k = max((len(c.steps) for c in curves), default=0) or 1
        aggregate = [
            geomean([c.coverage_at(k) for c in curves])
            for k in range(1, max_k + 1)
        ]
        out[level] = {
            "curve": aggregate,
            "k_to_target": max(c.k_for(target) for c in curves),
            "n_partitions": len(curves),
            "max_k": max_k,
        }
    return out


def run(
    dataset: Optional[PerfDataset] = None,
    portfolios: Optional[PortfolioSet] = None,
    target: float = DEFAULT_TARGET,
) -> str:
    dataset, portfolios = _portfolios(dataset, portfolios)
    results = data(dataset, portfolios, target=target)
    width = max((row["max_k"] for row in results.values()), default=1)
    show = [k for k in (1, 2, 3, 4, 6, 8, 12, 16) if k <= width]
    if width not in show:
        show.append(width)
    headers = ["Level", "Parts"] + [f"K={k}" for k in show] + [
        f"K@{target:.0%}"
    ]
    rows: List[List[object]] = []
    for level, row in results.items():
        curve: List[float] = row["curve"]  # type: ignore[assignment]
        rows.append(
            [level, row["n_partitions"]]
            + [f"{curve[min(k, len(curve)) - 1]:.1%}" for k in show]
            + [row["k_to_target"]]
        )
    table = render_table(
        headers,
        rows,
        title=(
            "Few fit most: fraction of oracle retained by the best of "
            "K configurations"
        ),
    )
    note = (
        f"\nK=1 is the Table V strategy; K@{target:.0%} is the smallest "
        f"portfolio with which every partition of the level retains "
        f">={target:.0%} of oracle performance."
    )
    return table + note + coverage_footnote(dataset)
