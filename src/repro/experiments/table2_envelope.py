"""Table II: the per-chip performance envelope.

For every chip, the most extreme statistically-significant speedup and
slowdown over the baseline across all (application, input,
configuration) triples, with the responsible application, input and
configuration.  In the paper the extremes all fall on the road input
(``usa.ny``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.portability import EnvelopeEntry, performance_envelope
from ..core.reporting import render_table
from ..study.dataset import PerfDataset
from .common import coverage_footnote, default_dataset

__all__ = ["data", "run"]


def data(
    dataset: Optional[PerfDataset] = None,
) -> Dict[str, Tuple[EnvelopeEntry, EnvelopeEntry]]:
    dataset = dataset or default_dataset()
    return performance_envelope(dataset)


def run(dataset: Optional[PerfDataset] = None) -> str:
    rows = []
    for chip, (best, worst) in sorted(data(dataset).items()):
        rows.append(
            [
                chip,
                f"{best.factor:.2f}x",
                best.app,
                best.graph,
                best.config.label(),
                f"{worst.factor:.2f}x",
                worst.app,
                worst.graph,
            ]
        )
    return render_table(
        [
            "Chip",
            "Max speedup",
            "App",
            "Input",
            "Config",
            "Max slowdown",
            "App",
            "Input",
        ],
        rows,
        title="Table II: extreme speedups and slowdowns vs baseline, per chip",
    ) + coverage_footnote(dataset)
