"""Figure 2: optimisations necessary for top speedups, per chip.

For every chip, how often each optimisation appears in the per-test
oracle configurations (counted over tests whose oracle gives a real
speedup).  Chips needing ``oitergb`` everywhere, MALI's reliance on
``sg``, and the rarity of ``wg`` are all visible here.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..compiler.options import OPT_NAMES
from ..core.portability import top_speedup_opts
from ..core.reporting import render_table
from ..study.dataset import PerfDataset
from .common import coverage_footnote, default_dataset

__all__ = ["data", "run"]


def data(
    dataset: Optional[PerfDataset] = None,
) -> Dict[str, Dict[str, int]]:
    dataset = dataset or default_dataset()
    return top_speedup_opts(dataset)


def run(dataset: Optional[PerfDataset] = None) -> str:
    counts = data(dataset)
    rows = [
        [chip] + [counts[chip][opt] for opt in OPT_NAMES]
        for chip in sorted(counts)
    ]
    return render_table(
        ["Chip"] + list(OPT_NAMES),
        rows,
        title=(
            "Fig 2: how often each optimisation appears in a chip's "
            "oracle (top-speedup) configurations"
        ),
    ) + coverage_footnote(dataset)
