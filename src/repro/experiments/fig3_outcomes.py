"""Figure 3: speedup/slowdown/no-change shares per strategy.

For each Table V strategy, the percentage of tests whose deployed
configuration yields a significant speedup, slowdown or no change
versus the baseline.  Tests where even the oracle provides no speedup
are excluded, as in the paper.  The baseline row shows no differences
and the oracle row speedups on all tests, bracketing the spectrum.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.evaluation import StrategyOutcomes, optimisable_tests, strategy_outcomes
from ..core.reporting import render_table
from ..core.strategies import STRATEGY_ORDER, Strategy
from ..study.dataset import PerfDataset
from .common import coverage_footnote, default_dataset, default_strategies

__all__ = ["data", "run"]


def data(
    dataset: Optional[PerfDataset] = None,
    strategies: Optional[Dict[str, Strategy]] = None,
) -> Dict[str, StrategyOutcomes]:
    if dataset is None:
        dataset = default_dataset()
        strategies = strategies or default_strategies()
    if strategies is None:
        from ..core.strategies import build_strategies

        strategies = build_strategies(dataset)
    kept = optimisable_tests(dataset, strategies["oracle"])
    return {
        name: strategy_outcomes(dataset, strategies[name], kept)
        for name in STRATEGY_ORDER
    }


def run(
    dataset: Optional[PerfDataset] = None,
    strategies: Optional[Dict[str, Strategy]] = None,
) -> str:
    outcomes = data(dataset, strategies)
    rows = []
    for name in STRATEGY_ORDER:
        o = outcomes[name]
        rows.append(
            [
                name,
                o.speedups,
                f"{o.pct_speedup:.1f}%",
                o.slowdowns,
                f"{o.pct_slowdown:.1f}%",
                o.no_change,
                f"{o.pct_no_change:.1f}%",
            ]
        )
    return render_table(
        ["Strategy", "Up", "Up%", "Down", "Down%", "Same", "Same%"],
        rows,
        title=(
            "Fig 3: test outcomes vs baseline per strategy "
            "(tests the oracle cannot speed up are excluded)"
        ),
    ) + coverage_footnote(dataset)
