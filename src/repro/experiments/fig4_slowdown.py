"""Figure 4: geomean slowdown versus the oracle, per strategy.

The magnitude companion to Figure 3: how much runtime each strategy
leaves on the table relative to per-test exhaustive specialisation.
Portability is progressively traded for performance along the strategy
order; the paper's headline numbers (global ≈ 1.15× over baseline,
app+input ≈ 1.29×) are corollaries of this series.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.evaluation import strategy_slowdown_vs_oracle
from ..core.reporting import render_bar_series
from ..core.strategies import STRATEGY_ORDER, Strategy
from ..study.dataset import PerfDataset
from .common import coverage_footnote, default_dataset, default_strategies

__all__ = ["data", "run"]


def data(
    dataset: Optional[PerfDataset] = None,
    strategies: Optional[Dict[str, Strategy]] = None,
) -> Dict[str, float]:
    if dataset is None:
        dataset = default_dataset()
        strategies = strategies or default_strategies()
    if strategies is None:
        from ..core.strategies import build_strategies

        strategies = build_strategies(dataset)
    oracle = strategies["oracle"]
    return {
        name: strategy_slowdown_vs_oracle(dataset, strategies[name], oracle)
        for name in STRATEGY_ORDER
    }


def run(
    dataset: Optional[PerfDataset] = None,
    strategies: Optional[Dict[str, Strategy]] = None,
) -> str:
    series = data(dataset, strategies)
    labels = list(STRATEGY_ORDER)
    return render_bar_series(
        labels,
        {"geomean slowdown vs oracle": [series[n] for n in labels]},
        title="Fig 4: geomean slowdown vs the oracle, per strategy",
    ) + coverage_footnote(dataset)
