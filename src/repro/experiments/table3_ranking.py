"""Table III: all 95 optimisation combinations ranked globally.

Each combination applied to every (application, input, chip) tuple,
ranked by the number of statistically-significant slowdowns versus the
baseline; the paper prints the top five, bottom five and two middle
rows.  The ranking exhibits the failure of the naive analyses: even
rank 0 harms some tests (do-no-harm degenerates to the baseline), and
the max-geomean row is biased (Table IV).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.naive import ConfigRanking, rank_configurations
from ..core.reporting import render_table
from ..study.dataset import PerfDataset
from .common import coverage_footnote, default_dataset

__all__ = ["data", "run"]


def data(dataset: Optional[PerfDataset] = None) -> List[ConfigRanking]:
    dataset = dataset or default_dataset()
    return rank_configurations(dataset)


def run(dataset: Optional[PerfDataset] = None, full: bool = False) -> str:
    rankings = data(dataset)
    indices: List[int]
    if full:
        indices = list(range(len(rankings)))
    else:
        mid = len(rankings) // 2
        indices = [0, 1, 2, 3, 4, mid - 1, mid, *range(len(rankings) - 5, len(rankings))]
    rows = [
        [
            i,
            rankings[i].label,
            rankings[i].slowdowns,
            rankings[i].speedups,
            f"{rankings[i].geomean_speedup:.2f}",
        ]
        for i in indices
    ]
    return render_table(
        ["Rank", "Enabled Opts", "Slowdowns", "Speedups", "Geomean"],
        rows,
        title=(
            "Table III: optimisation combinations applied globally, ranked "
            "by #slowdowns\n(top five, two middle, bottom five)"
        ),
    ) + coverage_footnote(dataset)
