"""Shared infrastructure for the experiment modules.

Each experiment module regenerates one table or figure of the paper
from a :class:`~repro.study.dataset.PerfDataset`.  The full study is
deterministic but takes a couple of minutes, so this module provides a
process-level cache backed by an on-disk artifact.

Resolution order for :func:`default_dataset`:

1. the in-process cache;
2. the path in ``$REPRO_DATASET``, if set;
3. ``.cache/dataset-default.json.gz`` under the repository root (or
   the current directory);
4. a fresh :func:`~repro.study.runner.run_study` run, saved to (3).
"""

from __future__ import annotations

import os
from typing import Dict

from ..core.algorithm1 import Analysis
from ..core.strategies import Strategy, build_strategies
from ..study.dataset import PerfDataset
from ..study.runner import StudyConfig, run_study

__all__ = [
    "default_dataset",
    "default_analysis",
    "default_strategies",
    "cache_path",
    "reset_cache",
]

_CACHE: Dict[str, object] = {}

_DATASET_ENV = "REPRO_DATASET"
_DEFAULT_RELATIVE = os.path.join(".cache", "dataset-default.json.gz")


def cache_path() -> str:
    """Where the default dataset artifact lives on disk."""
    env = os.environ.get(_DATASET_ENV)
    if env:
        return env
    # Prefer the repository root (two levels above this package's
    # ``src`` directory) when running from a source checkout.
    here = os.path.dirname(os.path.abspath(__file__))
    for base in (os.path.abspath(os.path.join(here, *[os.pardir] * 3)), os.getcwd()):
        candidate = os.path.join(base, _DEFAULT_RELATIVE)
        if os.path.exists(candidate) or os.path.isdir(os.path.dirname(candidate)):
            return candidate
    return os.path.join(os.getcwd(), _DEFAULT_RELATIVE)


def default_dataset(rebuild: bool = False) -> PerfDataset:
    """The full-factorial study dataset (cached in process and on disk)."""
    if not rebuild and "dataset" in _CACHE:
        return _CACHE["dataset"]  # type: ignore[return-value]
    path = cache_path()
    if not rebuild and os.path.exists(path):
        dataset = PerfDataset.load(path)
    else:
        dataset = run_study(StudyConfig())
        os.makedirs(os.path.dirname(path), exist_ok=True)
        dataset.save(path)
    _CACHE["dataset"] = dataset
    return dataset


def default_analysis() -> Analysis:
    """Algorithm 1 over the default dataset (cached)."""
    if "analysis" not in _CACHE:
        _CACHE["analysis"] = Analysis(default_dataset())
    return _CACHE["analysis"]  # type: ignore[return-value]


def default_strategies() -> Dict[str, Strategy]:
    """All Table V strategies over the default dataset (cached)."""
    if "strategies" not in _CACHE:
        _CACHE["strategies"] = build_strategies(
            default_dataset(), default_analysis()
        )
    return _CACHE["strategies"]  # type: ignore[return-value]


def reset_cache() -> None:
    """Drop the in-process caches (tests use this)."""
    _CACHE.clear()
