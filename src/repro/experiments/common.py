"""Shared infrastructure for the experiment modules.

Each experiment module regenerates one table or figure of the paper
from a :class:`~repro.study.dataset.PerfDataset`.  The full study is
deterministic but takes a couple of minutes, so this module provides a
process-level cache backed by an on-disk artifact.

Resolution order for :func:`default_dataset`:

1. the in-process cache;
2. the path in ``$REPRO_DATASET``, if set;
3. ``.cache/dataset-default.json.gz`` under the repository root (or
   the current directory);
4. a fresh :func:`~repro.study.runner.run_study` run, saved to (3).
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from ..core.algorithm1 import Analysis
from ..core.strategies import Strategy, build_strategies
from ..errors import DatasetError
from ..study.audit import DatasetAudit, audit_dataset
from ..study.dataset import DATASET_FORMAT, PerfDataset, peek_format
from ..study.runner import StudyConfig, run_study

__all__ = [
    "default_dataset",
    "default_analysis",
    "default_strategies",
    "default_audit",
    "coverage_footnote",
    "cache_path",
    "reset_cache",
]

_CACHE: Dict[str, object] = {}

_DATASET_ENV = "REPRO_DATASET"
_DEFAULT_RELATIVE = os.path.join(".cache", "dataset-default.json.gz")


def cache_path() -> str:
    """Where the default dataset artifact lives on disk."""
    env = os.environ.get(_DATASET_ENV)
    if env:
        return env
    # Prefer the repository root (two levels above this package's
    # ``src`` directory) when running from a source checkout.
    here = os.path.dirname(os.path.abspath(__file__))
    for base in (os.path.abspath(os.path.join(here, *[os.pardir] * 3)), os.getcwd()):
        candidate = os.path.join(base, _DEFAULT_RELATIVE)
        if os.path.exists(candidate) or os.path.isdir(os.path.dirname(candidate)):
            return candidate
    return os.path.join(os.getcwd(), _DEFAULT_RELATIVE)


def _load_audited(path: str, rebuildable: bool) -> Optional[DatasetAudit]:
    """Load and audit the artifact at ``path``; ``None`` forces a rebuild.

    ``rebuildable`` marks artifacts this module owns (the on-disk
    cache): those are rebuilt when they predate ``perf-dataset-v2``,
    fail to load, or contain quarantined cells.  An explicit
    ``$REPRO_DATASET`` is never silently replaced — a degraded dataset
    there is the point (partial analysis), so bad cells are quarantined
    and the cleaned dataset is used; only an unloadable file raises.
    """
    from ..store.columnar import COLUMNAR_FORMAT

    if rebuildable and peek_format(path) not in (
        DATASET_FORMAT,
        COLUMNAR_FORMAT,
    ):
        return None
    try:
        dataset = PerfDataset.load(path)
    except DatasetError:
        if rebuildable:
            return None
        raise
    audit = audit_dataset(dataset)
    if rebuildable and audit.quarantined:
        return None
    return audit


def default_dataset(rebuild: bool = False) -> PerfDataset:
    """The full-factorial study dataset (cached in process and on disk).

    Loaded artifacts are audited: bad cells are quarantined, and a
    cache artifact that fails the audit (or predates the current
    ``perf-dataset-v2`` format) is rebuilt rather than crashing a later
    analysis.  The audit is cached alongside the dataset — see
    :func:`default_audit` and :func:`coverage_footnote`.
    """
    if not rebuild and "dataset" in _CACHE:
        return _CACHE["dataset"]  # type: ignore[return-value]
    path = cache_path()
    explicit = bool(os.environ.get(_DATASET_ENV))
    audit = None
    if not rebuild and os.path.exists(path):
        audit = _load_audited(path, rebuildable=not explicit)
    if audit is None:
        dataset = run_study(StudyConfig())
        os.makedirs(os.path.dirname(path), exist_ok=True)
        dataset.save(path)
        audit = audit_dataset(dataset)
    _CACHE["dataset"] = audit.dataset
    _CACHE["audit"] = audit
    return audit.dataset


def default_audit() -> DatasetAudit:
    """The audit of the default dataset (cached with it)."""
    if "audit" not in _CACHE:
        default_dataset()
    return _CACHE["audit"]  # type: ignore[return-value]


def coverage_footnote(dataset: Optional[PerfDataset] = None) -> str:
    """A table/figure footnote for degraded datasets, else ``""``.

    With no argument, describes the default dataset's audit coverage.
    Given a dataset, computes its own-grid coverage.  Complete coverage
    yields the empty string, so full runs render byte-identically to
    the committed goldens.
    """
    coverage = (
        dataset.coverage() if dataset is not None else default_audit().coverage
    )
    if coverage.complete:
        return ""
    return f"\nnote: derived from {coverage.describe()}"


def default_analysis() -> Analysis:
    """Algorithm 1 over the default dataset (cached)."""
    if "analysis" not in _CACHE:
        _CACHE["analysis"] = Analysis(default_dataset())
    return _CACHE["analysis"]  # type: ignore[return-value]


def default_strategies() -> Dict[str, Strategy]:
    """All Table V strategies over the default dataset (cached)."""
    if "strategies" not in _CACHE:
        _CACHE["strategies"] = build_strategies(
            default_dataset(), default_analysis()
        )
    return _CACHE["strategies"]  # type: ignore[return-value]


def reset_cache() -> None:
    """Drop the in-process caches (tests use this)."""
    _CACHE.clear()
