"""CLI: regenerate every paper table and figure.

Usage::

    python -m repro.experiments.report            # all experiments
    python -m repro.experiments.report fig1 table9
    python -m repro.experiments.report --min-coverage 0.8 table2

Dataset-driven experiments refuse to run when the default dataset's
cell coverage is below ``--min-coverage`` (default 0.5); above the
floor, degraded datasets render with coverage footnotes.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..cli import metrics_parent, save_run_report
from ..errors import InsufficientCoverageError
from ..study.audit import DEFAULT_COVERAGE_FLOOR, require_coverage
from . import ALL_EXPERIMENTS, common

__all__ = ["main"]

#: Experiments that consume the performance dataset (the rest are
#: definitional and render regardless of coverage).
DATASET_DRIVEN = frozenset(
    {
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "table2",
        "table3",
        "table4",
        "table5",
        "table9",
        "nvidia-only",
        "ablation-sampling",
        "ablation-methodology",
        "portfolio",
        "budget",
    }
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.report",
        description="regenerate the paper's tables and figures",
        parents=[metrics_parent()],
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="NAME",
        help="experiments to run (default: all)",
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=DEFAULT_COVERAGE_FLOOR,
        metavar="FRACTION",
        help=(
            "refuse dataset-driven experiments below this cell-coverage "
            f"fraction (default {DEFAULT_COVERAGE_FLOOR})"
        ),
    )
    args = parser.parse_args(sys.argv[1:] if argv is None else list(argv))
    wanted = set(args.experiments)
    unknown = wanted - {name for name, _ in ALL_EXPERIMENTS}
    if unknown:
        print(f"unknown experiments: {', '.join(sorted(unknown))}", file=sys.stderr)
        print(
            "known: " + ", ".join(name for name, _ in ALL_EXPERIMENTS),
            file=sys.stderr,
        )
        return 2
    selected = [
        (name, module)
        for name, module in ALL_EXPERIMENTS
        if not wanted or name in wanted
    ]
    if any(name in DATASET_DRIVEN for name, _ in selected):
        try:
            require_coverage(common.default_audit().coverage, args.min_coverage)
        except InsufficientCoverageError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    from ..obs import NULL_RECORDER, Recorder, recording

    rec = Recorder() if args.metrics else NULL_RECORDER
    with recording(rec):
        for name, module in selected:
            started = time.time()
            with rec.span("report.experiment", experiment=name):
                output = module.run()
            rec.count("report.experiments.rendered")
            elapsed = time.time() - started
            print(f"==== {name} ({elapsed:.1f}s) " + "=" * 40)
            print(output)
            print()
    if args.metrics:
        save_run_report(
            rec,
            args.metrics,
            meta={"experiments": [name for name, _ in selected]},
        )
        print(f"wrote run report to {args.metrics}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
