"""CLI: regenerate every paper table and figure.

Usage::

    python -m repro.experiments.report            # all experiments
    python -m repro.experiments.report fig1 table9
"""

from __future__ import annotations

import sys
import time

from . import ALL_EXPERIMENTS

__all__ = ["main"]


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    wanted = set(argv)
    unknown = wanted - {name for name, _ in ALL_EXPERIMENTS}
    if unknown:
        print(f"unknown experiments: {', '.join(sorted(unknown))}", file=sys.stderr)
        print(
            "known: " + ", ".join(name for name, _ in ALL_EXPERIMENTS),
            file=sys.stderr,
        )
        return 2
    for name, module in ALL_EXPERIMENTS:
        if wanted and name not in wanted:
            continue
        started = time.time()
        output = module.run()
        elapsed = time.time() - started
        print(f"==== {name} ({elapsed:.1f}s) " + "=" * 40)
        print(output)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
