"""Figure 5: GPU utilisation vs kernel duration (launch overhead).

10 000 constant-time kernel launches interleaved with single-integer
device-to-host copies; utilisation is the fraction of wall time the
GPU spends in the kernels.  Nvidia chips stay near full utilisation
down to microsecond kernels — the reason their strategies disable
``oitergb`` — while the other chips collapse.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.reporting import render_table
from ..microbench.launch_overhead import (
    DEFAULT_KERNEL_TIMES_US,
    UtilisationPoint,
    launch_overhead_sweep,
)

__all__ = ["data", "run"]


def data(noisy: bool = True) -> Dict[str, List[UtilisationPoint]]:
    return launch_overhead_sweep(noisy=noisy)


def run(noisy: bool = True) -> str:
    sweep = data(noisy=noisy)
    rows = []
    for chip in sorted(sweep):
        rows.append(
            [chip] + [f"{p.utilisation:.2f}" for p in sweep[chip]]
        )
    headers = ["Chip"] + [f"{t:g}us" for t in DEFAULT_KERNEL_TIMES_US]
    return render_table(
        headers,
        rows,
        title="Fig 5: GPU utilisation vs kernel duration (10000 launches)",
    )
