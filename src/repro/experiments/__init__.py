"""One module per paper table/figure; each exposes ``data()`` and ``run()``.

``run()`` renders the experiment as text (the same rows/series the
paper reports); ``data()`` returns the structured results.  All
dataset-driven experiments accept an explicit
:class:`~repro.study.dataset.PerfDataset` and default to the cached
full-study dataset (see :mod:`repro.experiments.common`).

Run everything from the command line::

    python -m repro.experiments.report
"""

from . import (
    ablation_methodology,
    ablation_sampling,
    budget_curve,
    common,
    nvidia_only,
    fig1_heatmap,
    fig2_top_opts,
    fig3_outcomes,
    fig4_slowdown,
    fig5_launch_overhead,
    portfolio_curve,
    table1_chips,
    table2_envelope,
    table3_ranking,
    table4_bias,
    table5_strategies,
    table7_apps,
    table8_inputs,
    table9_chip_function,
    table10_microbench,
)

#: All experiments in paper order, as (identifier, module) pairs.
ALL_EXPERIMENTS = (
    ("table1", table1_chips),
    ("fig1", fig1_heatmap),
    ("table2", table2_envelope),
    ("table3", table3_ranking),
    ("table4", table4_bias),
    ("table5", table5_strategies),
    ("table7", table7_apps),
    ("table8", table8_inputs),
    ("fig2", fig2_top_opts),
    ("fig3", fig3_outcomes),
    ("fig4", fig4_slowdown),
    ("table9", table9_chip_function),
    ("fig5", fig5_launch_overhead),
    ("table10", table10_microbench),
    # Section II-B's Nvidia-only comparison (prose in the paper).
    ("nvidia-only", nvidia_only),
    # Beyond the paper: its Section IX future work and methodological
    # ablations of the analysis design.
    ("ablation-sampling", ablation_sampling),
    ("ablation-methodology", ablation_methodology),
    # PAPERS.md's "A Few Fit Most": K-vs-coverage portfolios.
    ("portfolio", portfolio_curve),
    # PAPERS.md's kernel-tuner benchmarking: budgeted lattice search.
    ("budget", budget_curve),
)

__all__ = [
    "ALL_EXPERIMENTS",
    "ablation_methodology",
    "ablation_sampling",
    "budget_curve",
    "common",
    "nvidia_only",
    "portfolio_curve",
    "table1_chips",
    "fig1_heatmap",
    "table2_envelope",
    "table3_ranking",
    "table4_bias",
    "table5_strategies",
    "table7_apps",
    "table8_inputs",
    "fig2_top_opts",
    "fig3_outcomes",
    "fig4_slowdown",
    "table9_chip_function",
    "fig5_launch_overhead",
    "table10_microbench",
]
