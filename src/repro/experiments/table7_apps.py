"""Table VII: the 17 applications over 7 problems."""

from __future__ import annotations

from typing import Dict, List

from ..apps.registry import table7_rows
from ..core.reporting import render_table

__all__ = ["data", "run"]


def data() -> List[Dict[str, str]]:
    return table7_rows()


def run() -> str:
    rows = [
        [r["problem"], r["application"], r["variant"], r["description"]]
        for r in data()
    ]
    return render_table(
        ["Problem", "Application", "Variant", "Description"],
        rows,
        title="Table VII: study applications ((*) marks the fastest variant)",
    )
