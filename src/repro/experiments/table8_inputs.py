"""Table VIII: the three graph inputs and their structural signature.

Renders the synthetic study inputs with the structural features that
drive the paper's performance phenomena: node/edge counts, degree
statistics (load imbalance) and estimated diameter (iteration counts).
"""

from __future__ import annotations

from typing import List, Optional

from ..graphs.inputs import study_inputs
from ..graphs.properties import GraphProperties, analyze
from ..core.reporting import render_table

__all__ = ["data", "run"]


def data(inputs: Optional[dict] = None) -> List[tuple]:
    """Rows: (name, class, properties)."""
    inputs = inputs or study_inputs()
    rows = []
    for inp in inputs.values():
        props: GraphProperties = analyze(inp.graph)
        rows.append((inp.name, inp.input_class, props))
    return rows


def run(inputs: Optional[dict] = None) -> str:
    rows = []
    for name, cls, p in data(inputs):
        rows.append(
            [
                name,
                cls,
                p.n_nodes,
                p.n_edges,
                f"{p.avg_degree:.1f}",
                p.max_degree,
                f"{p.degree_cv:.2f}",
                p.est_diameter,
            ]
        )
    return render_table(
        [
            "Input",
            "Class",
            "Nodes",
            "Edges",
            "AvgDeg",
            "MaxDeg",
            "DegCV",
            "Diameter",
        ],
        rows,
        title="Table VIII: study inputs (synthetic stand-ins, see DESIGN.md)",
    )
