"""Tables V and VI: the strategy functions and optimisation parameters.

Table V enumerates the optimisation-strategy functions — baseline, the
eight Algorithm 1 specialisations over {chip, application, input} and
the oracle.  Table VI lists, per optimisation, the architectural
performance parameters its profitability depends on.  Both are
definitional; this experiment renders them from the implementation so
the code and the paper stay in sync.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..compiler.options import OPT_NAMES, describe_optimisation
from ..core.reporting import render_table
from ..core.strategies import STRATEGY_DIMS, STRATEGY_ORDER, Strategy
from .common import default_strategies

__all__ = ["data", "run"]

_DESCRIPTIONS = {
    "baseline": "all optimisations disabled",
    "global": "one configuration for every (app, input, chip)",
    "chip": "specialised per chip; portable over apps and inputs",
    "app": "specialised per application; portable over inputs and chips",
    "input": "specialised per input; portable over apps and chips",
    "chip+app": "specialised per (chip, application); portable over inputs",
    "chip+input": "specialised per (chip, input); portable over apps",
    "app+input": "specialised per (application, input); portable over chips",
    "chip+app+input": "fully specialised via Algorithm 1",
    "oracle": "best configuration per test, queried exhaustively",
}


def data(
    strategies: Optional[Dict[str, Strategy]] = None,
) -> List[Tuple[str, str, int, str]]:
    """Rows: (strategy, specialised dimensions, #distinct configs,
    description)."""
    strategies = strategies or default_strategies()
    rows = []
    for name in STRATEGY_ORDER:
        dims = STRATEGY_DIMS.get(name, ())
        if name == "oracle":
            dims = ("chip", "app", "input")
        strategy = strategies[name]
        rows.append(
            (
                name,
                ", ".join(dims) or "-",
                len(strategy.distinct_configs),
                _DESCRIPTIONS[name],
            )
        )
    return rows


def run(strategies: Optional[Dict[str, Strategy]] = None) -> str:
    strategies = strategies or default_strategies()
    table5 = render_table(
        ["Strategy", "Specialised over", "#Configs", "Description"],
        data(strategies),
        title="Table V: optimisation strategy functions",
    )
    # Strategies carry the coverage of the dataset they were derived
    # from; footnote degraded derivations (empty at full coverage).
    coverage = strategies["global"].coverage
    if coverage is not None and not coverage.complete:
        table5 += f"\nnote: derived from {coverage.describe()}"
    table6 = render_table(
        ["Optimisation", "Performance parameters"],
        [(name, describe_optimisation(name)) for name in OPT_NAMES],
        title="Table VI: performance parameters per optimisation",
    )
    return table5 + "\n\n" + table6
