"""Beyond the paper: quality vs budget for lattice search strategies.

*Towards a Benchmarking Suite for Kernel Tuners* (PAPERS.md) reframes
the paper's exhaustive 96-configuration sweep as a search problem:
with a hard evaluation budget, how much of the exhaustively-tuned
(oracle) performance can a search recover?  This experiment replays
the strategies of :mod:`repro.core.search` against the measured
dataset via :mod:`repro.core.search_eval` — the dataset is the oracle,
nothing is re-simulated — and renders fraction-of-oracle at each
budget:

* one row per strategy (``random`` is the baseline every other row
  should dominate at equal budget);
* one column per budget, in full-fidelity evaluation units out of the
  96-configuration lattice — the last column is the exhaustive sweep,
  where every strategy recovers the oracle exactly.

Each cell is the geometric mean over every (app, input, chip) test and
``trials`` independently-seeded replays.  On a holed dataset the
replays treat missing cells as free, uninformative probes and the
table carries the usual coverage footnote.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.reporting import render_table
from ..core.search import SEARCH_STRATEGIES
from ..core.search_eval import DEFAULT_BUDGETS, budget_fractions
from ..study.dataset import PerfDataset
from .common import coverage_footnote, default_dataset

__all__ = ["data", "run"]


def data(
    dataset: Optional[PerfDataset] = None,
    strategies: Optional[Sequence[str]] = None,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    trials: int = 8,
    seed: int = 0,
) -> Dict[str, Dict[int, float]]:
    """Strategy -> budget -> geomean fraction-of-oracle."""
    if dataset is None:
        dataset = default_dataset()
    return budget_fractions(
        dataset,
        strategies=strategies,
        budgets=budgets,
        trials=trials,
        seed=seed,
    )


def run(
    dataset: Optional[PerfDataset] = None,
    strategies: Optional[Sequence[str]] = None,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    trials: int = 8,
    seed: int = 0,
) -> str:
    if dataset is None:
        dataset = default_dataset()
    results = data(
        dataset,
        strategies=strategies,
        budgets=budgets,
        trials=trials,
        seed=seed,
    )
    names = (
        list(strategies)
        if strategies is not None
        else sorted(SEARCH_STRATEGIES)
    )
    headers = ["Strategy"] + [f"B={b}" for b in budgets]
    rows = [
        [name] + [f"{results[name][b] * 100:.1f}%" for b in budgets]
        for name in names
    ]
    table = render_table(
        headers,
        rows,
        title=(
            "Budgeted autotuning: fraction of oracle performance at N "
            "evaluations\n(geomean over tests and "
            f"{trials} seeded replays; B={max(budgets)} is the "
            "exhaustive sweep)"
        ),
    )
    note = (
        "\nrandom is the baseline: a structured search earns its keep "
        "only where its row\nmeets or beats random at equal budget."
    )
    return table + note + coverage_footnote(dataset)
