"""Ablation: the analysis's own design choices.

Quantifies the two methodological pillars of the paper's Section III:

* rank-based vs magnitude-based decisions — where would a t-test on
  the same CI-filtered data disagree with the Mann-Whitney U?
* the 95 % significance filter — how stable are the per-chip
  recommendations as the confidence level moves?
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.ablation import (
    ConfidencePoint,
    MagnitudeComparison,
    confidence_ablation,
    magnitude_vs_rank,
)
from ..core.algorithm1 import Analysis
from ..core.reporting import render_table
from ..study.dataset import PerfDataset
from .common import default_analysis, default_dataset

__all__ = ["data", "run"]


def data(
    dataset: Optional[PerfDataset] = None,
    analysis: Optional[Analysis] = None,
) -> Tuple[List[MagnitudeComparison], List[ConfidencePoint]]:
    if dataset is None:
        dataset = default_dataset()
        analysis = analysis or default_analysis()
    comparisons = magnitude_vs_rank(dataset, dims=("chip",), analysis=analysis)
    confidences = confidence_ablation(dataset)
    return comparisons, confidences


def run(
    dataset: Optional[PerfDataset] = None,
    analysis: Optional[Analysis] = None,
) -> str:
    comparisons, confidences = data(dataset, analysis)

    divergent = [c for c in comparisons if c.diverges]
    rows = [
        [
            "/".join(map(str, c.partition)),
            c.opt,
            "+" if c.rank_enabled else "-",
            "+" if c.magnitude_enabled else "-",
        ]
        for c in divergent
    ]
    part1 = render_table(
        ["Partition", "Opt", "Rank (MWU)", "Magnitude (t-test)"],
        rows,
        title=(
            f"Rank vs magnitude decisions: {len(divergent)} of "
            f"{len(comparisons)} (partition, optimisation) verdicts diverge"
        ),
    )

    ref = next(p for p in confidences if abs(p.confidence - 0.95) < 1e-9)
    rows2 = [
        [f"{p.confidence:.2f}", f"{p.agreement_with(ref) * 100:.1f}%"]
        for p in confidences
    ]
    part2 = render_table(
        ["CI confidence", "Agreement with 0.95"],
        rows2,
        title="Stability of per-chip recommendations across CI levels",
    )
    return part1 + "\n\n" + part2
