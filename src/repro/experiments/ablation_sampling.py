"""Ablation: how much measurement can the analysis do without?

The paper's future-work question (Section IX): could smaller samples
of the configuration space yield the same recommendations as the
exhaustive sweep?  This experiment draws random configuration subsets
of increasing size, reruns Algorithm 1 per chip on each, and reports
decision agreement with the exhaustive analysis.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.algorithm1 import Analysis
from ..core.reporting import render_table
from ..core.sampling import AgreementPoint, sample_efficiency_curve
from ..study.dataset import PerfDataset
from .common import default_analysis, default_dataset

__all__ = ["data", "run", "DEFAULT_SIZES"]

DEFAULT_SIZES = (8, 16, 32, 48, 64, 96)


def data(
    dataset: Optional[PerfDataset] = None,
    analysis: Optional[Analysis] = None,
    sizes=DEFAULT_SIZES,
    trials: int = 3,
    seed: int = 0,
) -> List[AgreementPoint]:
    if dataset is None:
        dataset = default_dataset()
        analysis = analysis or default_analysis()
    return sample_efficiency_curve(
        dataset, sizes=sizes, trials=trials, analysis=analysis, seed=seed
    )


def run(
    dataset: Optional[PerfDataset] = None,
    analysis: Optional[Analysis] = None,
) -> str:
    points = data(dataset, analysis)
    rows = [
        [
            p.n_configs,
            f"{p.mean_agreement * 100:.1f}%",
            f"{p.min_agreement * 100:.1f}%",
            p.n_trials,
        ]
        for p in points
    ]
    return render_table(
        ["#Configs sampled", "Mean agreement", "Worst agreement", "Trials"],
        rows,
        title=(
            "Ablation (paper Section IX): per-chip decision agreement with "
            "the exhaustive analysis\nwhen only a random subset of "
            "configurations is measured"
        ),
    )
