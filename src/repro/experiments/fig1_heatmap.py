"""Figure 1: cross-chip portability heatmap.

Geomean slowdown (over all application × input pairs) when a chip runs
with the optimisation settings that are oracle-optimal for another
chip.  The diagonal is 1.00; the extra bottom row / right column hold
the per-column / per-row geomeans the paper annotates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.portability import cross_chip_heatmap
from ..core.reporting import render_heatmap
from ..study.dataset import PerfDataset
from ..util import geomean
from .common import coverage_footnote, default_dataset

__all__ = ["data", "run"]


def data(
    dataset: Optional[PerfDataset] = None,
) -> Tuple[List[str], Dict[Tuple[str, str], float]]:
    """(chip order, {(run_chip, opt_chip) -> geomean slowdown}),
    including the ``geomean`` summary row and column."""
    dataset = dataset or default_dataset()
    chips, heat = cross_chip_heatmap(dataset)
    full = dict(heat)
    for opt_chip in chips:
        full[("geomean", opt_chip)] = geomean(
            heat[(run, opt_chip)] for run in chips
        )
    for run_chip in chips:
        full[(run_chip, "geomean")] = geomean(
            heat[(run_chip, opt)] for opt in chips
        )
    return chips, full


def run(dataset: Optional[PerfDataset] = None) -> str:
    chips, full = data(dataset)
    return render_heatmap(
        chips + ["geomean"],
        chips + ["geomean"],
        full,
        title=(
            "Fig 1: geomean slowdown running each chip (rows) with the\n"
            "optimal optimisations of another chip (columns); higher is worse"
        ),
        corner="run\\opt",
    ) + coverage_footnote(dataset)
