"""Table IV: magnitude bias of the max-geomean pick vs the MWU pick.

The configuration with the best global geometric mean looks attractive
until split per chip: it is systematically biased towards the chips
most sensitive to optimisation, starving (or harming) the others.  The
rank-based Algorithm 1 pick avoids the bias.  This experiment prints
both configurations' per-chip records side by side.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..compiler.options import OptConfig
from ..core.algorithm1 import Analysis
from ..core.naive import ConfigRanking, max_geomean, per_chip_breakdown
from ..core.reporting import render_table
from ..study.dataset import PerfDataset
from .common import coverage_footnote, default_analysis, default_dataset

__all__ = ["data", "run"]


def data(
    dataset: Optional[PerfDataset] = None,
    analysis: Optional[Analysis] = None,
) -> Tuple[
    OptConfig,
    Dict[str, ConfigRanking],
    OptConfig,
    Dict[str, ConfigRanking],
]:
    """(max-geomean config, its per-chip records,
    MWU global config, its per-chip records)."""
    if dataset is None:
        dataset = default_dataset()
        analysis = analysis or default_analysis()
    if analysis is None:
        analysis = Analysis(dataset)
    geo_pick = max_geomean(dataset).config
    mwu_pick = analysis.config_for_partition(dataset.tests)
    return (
        geo_pick,
        per_chip_breakdown(dataset, geo_pick),
        mwu_pick,
        per_chip_breakdown(dataset, mwu_pick),
    )


def run(
    dataset: Optional[PerfDataset] = None,
    analysis: Optional[Analysis] = None,
) -> str:
    geo_pick, geo_rows, mwu_pick, mwu_rows = data(dataset, analysis)
    rows = []
    for chip in sorted(geo_rows):
        g, m = geo_rows[chip], mwu_rows[chip]
        rows.append(
            [
                chip,
                g.slowdowns,
                g.speedups,
                f"{g.max_speedup:.2f}",
                m.slowdowns,
                m.speedups,
                f"{m.max_speedup:.2f}",
            ]
        )
    return render_table(
        [
            "Chip",
            "geo:slow",
            "geo:fast",
            "geo:max-up",
            "mwu:slow",
            "mwu:fast",
            "mwu:max-up",
        ],
        rows,
        title=(
            "Table IV: per-chip record of the max-geomean pick "
            f"[{geo_pick.label()}]\nvs the rank-based MWU pick "
            f"[{mwu_pick.label()}]"
        ),
    ) + coverage_footnote(dataset)
