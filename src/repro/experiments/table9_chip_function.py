"""Table IX: the per-chip optimisation function with effect sizes.

Algorithm 1 partitioned per chip: for each (chip, optimisation) pair,
whether the analysis enables (+), disables (-) or cannot decide (?)
the optimisation, alongside the common-language effect size — the
probability a random (application, input) pair speeds up under the
optimisation on that chip.  This is the paper's tool for dissecting
performance-critical differences between GPUs (Section VIII).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..compiler.options import OPT_NAMES
from ..core.algorithm1 import Analysis, OptDecision
from ..core.reporting import render_table
from ..study.dataset import PerfDataset
from .common import coverage_footnote, default_analysis, default_dataset

__all__ = ["data", "run"]


def data(
    dataset: Optional[PerfDataset] = None,
    analysis: Optional[Analysis] = None,
) -> Dict[str, Dict[str, OptDecision]]:
    """{chip: {optimisation: decision}}."""
    if dataset is None:
        dataset = default_dataset()
        analysis = analysis or default_analysis()
    if analysis is None:
        analysis = Analysis(dataset)
    return {
        key[0]: decisions
        for key, decisions in analysis.specialise_decisions(("chip",)).items()
    }


def run(
    dataset: Optional[PerfDataset] = None,
    analysis: Optional[Analysis] = None,
) -> str:
    per_chip = data(dataset, analysis)
    rows = []
    for chip in sorted(per_chip):
        row = [chip]
        for opt in OPT_NAMES:
            d = per_chip[chip][opt]
            row.append(f"{d.mark()} (CL {d.effect_size:.2f})")
        rows.append(row)
    return render_table(
        ["Chip"] + list(OPT_NAMES),
        rows,
        title=(
            "Table IX: per-chip optimisation decisions with common-language "
            "effect sizes\n(+ enable, - disable, ? insufficient significant "
            "samples)"
        ),
    ) + coverage_footnote(dataset)
