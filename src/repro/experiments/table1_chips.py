"""Table I: the GPUs of the study."""

from __future__ import annotations

from typing import List, Tuple

from ..chips.database import all_chips
from ..core.reporting import render_table

__all__ = ["data", "run"]


def data() -> List[Tuple[str, str, int, int, str]]:
    """Rows: (vendor, chip, #CUs, subgroup size, short name)."""
    return [chip.summary_row() for chip in all_chips()]


def run() -> str:
    return render_table(
        ["Vendor", "Chip", "#CUs", "SG Size", "Short Name"],
        data(),
        title="Table I: GPUs of the study",
    )
