"""Table X: the two explanatory microbenchmarks.

``sg-cmb``: speedup of combining all subgroup atomics into one
(cooperative conversion's mechanism) — large on R9/IRIS, ≈ 1 where the
JIT already combines (Nvidia, HD5500) or where subgroups are trivial
(MALI).

``m-divg``: speedup from a gratuitous inner-loop workgroup barrier on
a strided-access kernel — modest everywhere except MALI, whose extreme
memory-divergence sensitivity explains why its strategy enables ``sg``
despite its subgroup size of 1.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..chips.database import CHIP_NAMES
from ..core.reporting import render_table
from ..microbench.m_divg import m_divg_table
from ..microbench.sg_cmb import sg_cmb_table

__all__ = ["data", "run"]


def data() -> Tuple[Dict[str, float], Dict[str, float]]:
    """({chip: sg-cmb speedup}, {chip: m-divg speedup})."""
    sg = {name: r.speedup for name, r in sg_cmb_table().items()}
    md = {name: r.speedup for name, r in m_divg_table().items()}
    return sg, md


def run() -> str:
    sg, md = data()
    rows = [
        ["sg-cmb"] + [f"{sg[chip]:.2f}" for chip in CHIP_NAMES],
        ["m-divg"] + [f"{md[chip]:.2f}" for chip in CHIP_NAMES],
    ]
    return render_table(
        ["Microbenchmark"] + list(CHIP_NAMES),
        rows,
        title="Table X: microbenchmark speedups per chip",
    )
