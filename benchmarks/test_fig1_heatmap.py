"""Bench: regenerate Fig 1 (cross-chip portability heatmap).

Paper shape: diagonal 1.00; every chip-specialised strategy costs at
least ~1.1x geomean on the other chips; intra-vendor porting is cheap
for the Intel pair; MALI is the portability outlier.
"""

from repro.experiments import fig1_heatmap
from repro.util import geomean


def test_fig1_heatmap(benchmark, dataset, publish):
    chips, full = benchmark.pedantic(
        fig1_heatmap.data, args=(dataset,), rounds=1, iterations=1
    )
    publish("fig1_heatmap", fig1_heatmap.run(dataset))

    for chip in chips:
        assert full[(chip, chip)] == 1.0
    # Chip-specialised settings do not port freely.
    off_diag = [full[(r, c)] for r in chips for c in chips if r != c]
    assert geomean(off_diag) > 1.1
    # The Intel pair ports almost freely (same architecture).
    assert full[("HD5500", "IRIS")] < 1.15
    assert full[("IRIS", "HD5500")] < 1.25
