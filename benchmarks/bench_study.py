#!/usr/bin/env python3
"""Benchmark the study sweep: scalar vs. vectorized vs. parallel.

Runs a reduced study (a few applications and chips, the full 96-way
configuration axis) three ways over the same precollected traces:

* ``scalar`` — the reference pricing path, one launch record at a time;
* ``batch``  — the vectorized engine (whole-array NumPy ops per trace,
  plan-keyed intermediate reuse, precomputed noise seeds);
* ``batch --jobs N`` — the batch engine sharded over worker processes.

All three must produce the *identical* dataset (exact float equality);
the harness asserts this before reporting.  Results go to
``BENCH_study.json`` at the repository root.

Run:  PYTHONPATH=src python benchmarks/bench_study.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import time

from repro.apps import get_application
from repro.chips import get_chip
from repro.compiler import enumerate_configs, plan_cache
from repro.core.search import SEARCH_STRATEGIES
from repro.core.search_eval import replay_search
from repro.graphs.inputs import study_inputs
from repro.study import StudyConfig, collect_traces, run_study

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DEFAULT_OUTPUT = os.path.join(_ROOT, "BENCH_study.json")


def _reduced_config(quick: bool) -> StudyConfig:
    """A study small enough to sweep three times, large enough to matter."""
    if quick:
        apps = ["bfs-wl", "pr-topo"]
        chips = ["GTX1080", "MALI"]
        scale = 0.1
    else:
        apps = ["bfs-wl", "sssp-nf", "pr-topo"]
        chips = ["GTX1080", "R9", "MALI"]
        scale = 0.25
    return StudyConfig(
        apps=[get_application(a) for a in apps],
        inputs=study_inputs(scale=scale),
        chips=[get_chip(c) for c in chips],
        configs=enumerate_configs(),
    )


def _time_sweep(config, traces, *, engine: str, jobs: int):
    """One timed pricing sweep over precollected traces."""
    plan_cache.clear()  # each sweep pays its own compilations
    for trace in traces.values():  # ... and its own SoA conversions
        trace.__dict__.pop("_arrays_cache", None)
    started = time.perf_counter()
    dataset = run_study(config, jobs=jobs, engine=engine, traces=traces)
    return dataset, time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweep for CI smoke runs"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, multiprocessing.cpu_count()),
        help="worker processes for the parallel sweep",
    )
    parser.add_argument("--output", default=_DEFAULT_OUTPUT)
    args = parser.parse_args()

    config = _reduced_config(args.quick)
    n_points = (
        len(config.chips) * len(config.configs) * config.repetitions
    )
    print(
        f"reduced study: {len(config.apps)} apps x {len(config.inputs)} inputs "
        f"x {len(config.chips)} chips x {len(config.configs)} configs"
    )

    started = time.perf_counter()
    traces = collect_traces(config)
    trace_s = time.perf_counter() - started
    launches = sum(t.n_launches for t in traces.values())
    print(f"collected {len(traces)} traces ({launches} launches) in {trace_s:.2f}s")

    scalar_ds, scalar_s = _time_sweep(config, traces, engine="scalar", jobs=1)
    print(f"scalar sweep:          {scalar_s:8.3f}s")
    batch_ds, batch_s = _time_sweep(config, traces, engine="batch", jobs=1)
    print(f"batch sweep:           {batch_s:8.3f}s  ({scalar_s / batch_s:.1f}x)")
    par_ds, par_s = _time_sweep(config, traces, engine="batch", jobs=args.jobs)
    print(
        f"batch --jobs {args.jobs}:        {par_s:8.3f}s  "
        f"({scalar_s / par_s:.1f}x)"
    )

    assert batch_ds == scalar_ds, "batch dataset differs from scalar reference"
    assert par_ds == scalar_ds, "parallel dataset differs from scalar reference"
    print(
        f"datasets identical across engines and job counts "
        f"({scalar_ds.n_measurements} measurements)"
    )

    # Budgeted-search replay throughput over the freshly swept dataset
    # (the repro search / report-budget hot loop: propose/observe against
    # the dataset-as-oracle, no re-simulation).
    budgets = (8, 32) if args.quick else (8, 32, 96)
    search_started = time.perf_counter()
    replays = 0
    for test in scalar_ds.tests:
        for name in sorted(SEARCH_STRATEGIES):
            for budget in budgets:
                replay_search(scalar_ds, test, name, budget)
                replays += 1
    search_s = time.perf_counter() - search_started
    print(
        f"search replays:        {search_s:8.3f}s  "
        f"({replays / search_s:.0f} replays/s over {replays})"
    )

    payload = {
        "benchmark": "study-sweep",
        "quick": args.quick,
        "scope": {
            "apps": [a.name for a in config.apps],
            "inputs": list(config.inputs),
            "chips": [c.short_name for c in config.chips],
            "n_configs": len(config.configs),
            "repetitions": config.repetitions,
            "n_traces": len(traces),
            "n_launches": launches,
            "n_measurements": scalar_ds.n_measurements,
        },
        "trace_collection_s": round(trace_s, 4),
        "sweeps": {
            "scalar": {"jobs": 1, "seconds": round(scalar_s, 4)},
            "batch": {
                "jobs": 1,
                "seconds": round(batch_s, 4),
                "speedup_vs_scalar": round(scalar_s / batch_s, 2),
            },
            "batch_parallel": {
                "jobs": args.jobs,
                "seconds": round(par_s, 4),
                "speedup_vs_scalar": round(scalar_s / par_s, 2),
            },
        },
        "points_per_second": {
            "scalar": round(n_points * len(traces) / scalar_s, 1),
            "batch": round(n_points * len(traces) / batch_s, 1),
        },
        "search": {
            "budgets": list(budgets),
            "replays": replays,
            "seconds": round(search_s, 4),
            "replays_per_s": round(replays / search_s, 1),
        },
        "identical_datasets": True,
    }
    with open(args.output, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output}")

    speedup = scalar_s / batch_s
    if speedup < 5.0:
        print(f"WARNING: batch speedup {speedup:.1f}x below the 5x target")
        # Only the full bench enforces the target; --quick stays a
        # correctness smoke test (tiny traces on noisy CI runners).
        return 0 if args.quick else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
