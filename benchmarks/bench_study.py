#!/usr/bin/env python3
"""Benchmark the study sweep: scalar vs. vectorized vs. parallel.

Runs a reduced study (a few applications and chips, the full 96-way
configuration axis) three ways over the same precollected traces:

* ``scalar`` — the reference pricing path, one launch record at a time;
* ``batch``  — the vectorized engine (whole-array NumPy ops per trace,
  plan-keyed intermediate reuse, precomputed noise seeds);
* ``batch --jobs N`` — the batch engine sharded over worker processes.

All must produce the *identical* dataset (exact float equality); the
harness asserts this before reporting.

Every mode then measures the dataset *store* backends: the swept
dataset is saved as both checksummed JSON (``perf-dataset-v2``) and
binary columnar (``perf-dataset-v3``), and each is loaded in a fresh
subprocess — wall time, peak RSS, and coverage-touch cost — yielding
``columnar_load_speedup``, the floor bench_guard enforces.

``--scope 10x`` sweeps the full 17-application registry across all six
chips (~29k cells, ~10x the full scope) with the batch engine only
(the scalar reference would take minutes for no extra signal), plus a
``--jobs`` sweep through the columnar spill/merge path.  It is gated
behind the explicit flag so ``--quick`` and the tier-1 tests stay
fast.

Results go to ``BENCH_study.json`` at the repository root.

Run:  PYTHONPATH=src python benchmarks/bench_study.py [--quick]
      PYTHONPATH=src python benchmarks/bench_study.py --scope 10x
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import subprocess
import sys
import tempfile
import time

from repro.apps import all_applications, get_application
from repro.chips import all_chips, get_chip
from repro.compiler import enumerate_configs, plan_cache
from repro.core.search import SEARCH_STRATEGIES
from repro.core.search_eval import replay_search
from repro.graphs.inputs import study_inputs
from repro.study import StudyConfig, collect_traces, run_study

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DEFAULT_OUTPUT = os.path.join(_ROOT, "BENCH_study.json")

SCOPES = ("quick", "full", "10x")


def _reduced_config(scope: str) -> StudyConfig:
    """A study small enough to sweep repeatedly, large enough to matter."""
    if scope == "quick":
        apps = [get_application(a) for a in ("bfs-wl", "pr-topo")]
        chips = [get_chip(c) for c in ("GTX1080", "MALI")]
        scale = 0.1
    elif scope == "full":
        apps = [get_application(a) for a in ("bfs-wl", "sssp-nf", "pr-topo")]
        chips = [get_chip(c) for c in ("GTX1080", "R9", "MALI")]
        scale = 0.25
    else:  # 10x: the whole registry across every chip
        apps = all_applications()
        chips = all_chips()
        scale = 0.1
    return StudyConfig(
        apps=apps,
        inputs=study_inputs(scale=scale),
        chips=chips,
        configs=enumerate_configs(),
    )


_LOAD_SNIPPET = """\
import json, resource, sys, time
from repro.study.dataset import PerfDataset
path = sys.argv[1]
started = time.perf_counter()
ds = PerfDataset.load(path)
n = ds.n_measurements
fraction = ds.coverage().fraction
elapsed = time.perf_counter() - started
print(json.dumps({
    "load_seconds": elapsed,
    "n_measurements": n,
    "coverage_fraction": fraction,
    "max_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def _measure_load(path: str) -> dict:
    """Load ``path`` in a fresh interpreter; time + peak RSS.

    A subprocess isolates the measurement from this process's already-
    allocated heap, so ``ru_maxrss`` reflects what the load itself
    costs — the number that distinguishes an mmap from a full parse.
    """
    proc = subprocess.run(
        [sys.executable, "-c", _LOAD_SNIPPET, path],
        capture_output=True,
        text=True,
        check=True,
    )
    result = json.loads(proc.stdout)
    result["bytes"] = os.path.getsize(path)
    return result


def _measure_store(dataset) -> dict:
    """Save the dataset both ways; measure each backend's load."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        json_path = os.path.join(tmp, "bench.json.gz")
        v3_path = os.path.join(tmp, "bench.v3")
        dataset.save(json_path)
        dataset.save(v3_path)
        json_load = _measure_load(json_path)
        v3_load = _measure_load(v3_path)
    assert json_load["n_measurements"] == v3_load["n_measurements"]
    assert json_load["coverage_fraction"] == v3_load["coverage_fraction"]
    speedup = json_load["load_seconds"] / v3_load["load_seconds"]
    return {
        "json": json_load,
        "v3": v3_load,
        "columnar_load_speedup": round(speedup, 2),
        "rss_ratio_v3_vs_json": round(
            v3_load["max_rss_kb"] / json_load["max_rss_kb"], 3
        ),
    }


def _time_sweep(config, traces, *, engine: str, jobs: int):
    """One timed pricing sweep over precollected traces."""
    plan_cache.clear()  # each sweep pays its own compilations
    for trace in traces.values():  # ... and its own SoA conversions
        trace.__dict__.pop("_arrays_cache", None)
    started = time.perf_counter()
    dataset = run_study(config, jobs=jobs, engine=engine, traces=traces)
    return dataset, time.perf_counter() - started


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweep for CI smoke runs"
    )
    parser.add_argument(
        "--scope",
        choices=SCOPES,
        default=None,
        help="sweep scope (default: full, or quick with --quick); 10x "
        "sweeps every app on every chip, batch engine only",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=min(4, multiprocessing.cpu_count()),
        help="worker processes for the parallel sweep",
    )
    parser.add_argument("--output", default=_DEFAULT_OUTPUT)
    args = parser.parse_args()

    scope = args.scope or ("quick" if args.quick else "full")
    config = _reduced_config(scope)
    n_points = (
        len(config.chips) * len(config.configs) * config.repetitions
    )
    print(
        f"reduced study: {len(config.apps)} apps x {len(config.inputs)} inputs "
        f"x {len(config.chips)} chips x {len(config.configs)} configs"
    )

    started = time.perf_counter()
    traces = collect_traces(config)
    trace_s = time.perf_counter() - started
    launches = sum(t.n_launches for t in traces.values())
    print(f"collected {len(traces)} traces ({launches} launches) in {trace_s:.2f}s")

    if scope == "10x":
        # The scalar reference would take minutes at this scope for no
        # extra signal; the batch serial sweep is the reference instead.
        batch_ds, batch_s = _time_sweep(
            config, traces, engine="batch", jobs=1
        )
        print(f"batch sweep:           {batch_s:8.3f}s")
        scalar_ds, scalar_s = batch_ds, None
        par_ds, par_s = _time_sweep(
            config, traces, engine="batch", jobs=args.jobs
        )
        print(f"batch --jobs {args.jobs}:        {par_s:8.3f}s")
    else:
        scalar_ds, scalar_s = _time_sweep(
            config, traces, engine="scalar", jobs=1
        )
        print(f"scalar sweep:          {scalar_s:8.3f}s")
        batch_ds, batch_s = _time_sweep(config, traces, engine="batch", jobs=1)
        print(
            f"batch sweep:           {batch_s:8.3f}s  "
            f"({scalar_s / batch_s:.1f}x)"
        )
        par_ds, par_s = _time_sweep(
            config, traces, engine="batch", jobs=args.jobs
        )
        print(
            f"batch --jobs {args.jobs}:        {par_s:8.3f}s  "
            f"({scalar_s / par_s:.1f}x)"
        )

    assert batch_ds == scalar_ds, "batch dataset differs from scalar reference"
    assert par_ds == scalar_ds, "parallel dataset differs from scalar reference"
    print(
        f"datasets identical across engines and job counts "
        f"({scalar_ds.n_measurements} measurements)"
    )

    # Store backends: the same dataset saved as JSON and columnar, each
    # loaded (and coverage-touched) in a fresh interpreter.
    store = _measure_store(batch_ds)
    print(
        f"store: json load {store['json']['load_seconds'] * 1000:8.1f}ms "
        f"({store['json']['bytes']} bytes, "
        f"{store['json']['max_rss_kb']} kB peak)"
    )
    print(
        f"store: v3 load   {store['v3']['load_seconds'] * 1000:8.1f}ms "
        f"({store['v3']['bytes']} bytes, "
        f"{store['v3']['max_rss_kb']} kB peak)  "
        f"{store['columnar_load_speedup']:.1f}x"
    )

    # Budgeted-search replay throughput over the freshly swept dataset
    # (the repro search / report-budget hot loop: propose/observe against
    # the dataset-as-oracle, no re-simulation).  At 10x scope a fixed
    # sample of tests keeps the replay phase proportionate.
    budgets = (8, 32) if scope == "quick" else (8, 32, 96)
    search_tests = (
        scalar_ds.tests[:24] if scope == "10x" else scalar_ds.tests
    )
    if len(search_tests) < len(scalar_ds.tests):
        print(
            f"search: sampling {len(search_tests)}/{len(scalar_ds.tests)} "
            f"tests at 10x scope"
        )
    search_started = time.perf_counter()
    replays = 0
    for test in search_tests:
        for name in sorted(SEARCH_STRATEGIES):
            for budget in budgets:
                replay_search(scalar_ds, test, name, budget)
                replays += 1
    search_s = time.perf_counter() - search_started
    print(
        f"search replays:        {search_s:8.3f}s  "
        f"({replays / search_s:.0f} replays/s over {replays})"
    )

    payload = {
        "benchmark": "study-sweep",
        "quick": scope == "quick",
        "scope_mode": scope,
        "scope": {
            "apps": [a.name for a in config.apps],
            "inputs": list(config.inputs),
            "chips": [c.short_name for c in config.chips],
            "n_configs": len(config.configs),
            "repetitions": config.repetitions,
            "n_traces": len(traces),
            "n_launches": launches,
            "n_measurements": scalar_ds.n_measurements,
        },
        "trace_collection_s": round(trace_s, 4),
        "sweeps": {
            "batch": {
                "jobs": 1,
                "seconds": round(batch_s, 4),
            },
            "batch_parallel": {
                "jobs": args.jobs,
                "seconds": round(par_s, 4),
            },
        },
        "points_per_second": {
            "batch": round(n_points * len(traces) / batch_s, 1),
        },
        "study_rows_per_s": round(batch_ds.n_measurements / batch_s, 1),
        "store": store,
        "search": {
            "budgets": list(budgets),
            "replays": replays,
            "seconds": round(search_s, 4),
            "replays_per_s": round(replays / search_s, 1),
        },
        "identical_datasets": True,
    }
    if scalar_s is not None:
        payload["sweeps"]["scalar"] = {
            "jobs": 1,
            "seconds": round(scalar_s, 4),
        }
        payload["sweeps"]["batch"]["speedup_vs_scalar"] = round(
            scalar_s / batch_s, 2
        )
        payload["sweeps"]["batch_parallel"]["speedup_vs_scalar"] = round(
            scalar_s / par_s, 2
        )
        payload["points_per_second"]["scalar"] = round(
            n_points * len(traces) / scalar_s, 1
        )
    with open(args.output, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output}")

    if scalar_s is not None:
        speedup = scalar_s / batch_s
        if speedup < 5.0:
            print(f"WARNING: batch speedup {speedup:.1f}x below the 5x target")
            # Only the full bench enforces the target; --quick stays a
            # correctness smoke test (tiny traces on noisy CI runners).
            return 0 if scope == "quick" else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
