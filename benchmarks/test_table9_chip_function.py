"""Bench: regenerate Table IX (the per-chip optimisation function).

Paper shape (Section VIII): coop-cv enabled only on R9 and IRIS (the
Nvidia and HD5500 JITs already combine; MALI has no subgroups); sg
enabled on every chip — including MALI, whose benefit is divergence
relief, not load balancing; fg8 widely enabled with high effect sizes
on Nvidia/AMD; oitergb enabled everywhere except Nvidia; wg disabled
everywhere but with a non-zero effect size.
"""

from repro.experiments import table9_chip_function


def test_table9_chip_function(benchmark, dataset, analysis, publish):
    per_chip = benchmark.pedantic(
        table9_chip_function.data, args=(dataset, analysis), rounds=1, iterations=1
    )
    publish("table9_chip_function", table9_chip_function.run(dataset, analysis))

    # coop-cv: only the chips whose runtime does not already combine.
    for chip, expect in {
        "M4000": False, "GTX1080": False, "HD5500": False,
        "IRIS": True, "R9": True, "MALI": False,
    }.items():
        assert per_chip[chip]["coop-cv"].enabled == expect, chip

    # oitergb: everywhere except Nvidia.
    for chip in ("HD5500", "IRIS", "R9", "MALI"):
        assert per_chip[chip]["oitergb"].enabled
    for chip in ("M4000", "GTX1080"):
        assert not per_chip[chip]["oitergb"].enabled

    # sg enabled on every chip (MALI via divergence relief).
    for chip in per_chip:
        assert per_chip[chip]["sg"].enabled

    # fg8 broadly enabled; strongest on Nvidia/AMD.
    for chip in per_chip:
        assert per_chip[chip]["fg8"].enabled
        assert per_chip[chip]["fg8"].effect_size > 0.8

    # wg never chosen, but its effect size is non-zero.
    for chip in per_chip:
        assert not per_chip[chip]["wg"].enabled
        assert per_chip[chip]["wg"].effect_size > 0.0
