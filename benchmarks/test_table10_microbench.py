"""Bench: regenerate Table X (sg-cmb and m-divg microbenchmarks).

Paper numbers: sg-cmb ~22x on R9, ~8x on IRIS, ~1x (slight slowdown)
on the JIT-combining chips and MALI; m-divg modest everywhere except
MALI's ~6.45x.
"""

import pytest

from repro.experiments import table10_microbench


def test_table10_microbench(benchmark, publish):
    sg, md = benchmark.pedantic(table10_microbench.data, rounds=3, iterations=1)
    publish("table10_microbench", table10_microbench.run())

    # sg-cmb row.
    assert sg["R9"] == pytest.approx(22.0, rel=0.25)
    assert sg["IRIS"] == pytest.approx(8.0, rel=0.25)
    for chip in ("M4000", "GTX1080", "HD5500", "MALI"):
        assert 0.6 <= sg[chip] <= 1.1
    # m-divg row.
    assert md["MALI"] == pytest.approx(6.45, rel=0.15)
    for chip in ("M4000", "GTX1080", "HD5500", "IRIS", "R9"):
        assert 1.0 <= md[chip] <= 1.6
