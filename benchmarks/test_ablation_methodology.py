"""Bench (beyond the paper): ablating the analysis's design choices.

Expectation: the per-chip recommendations are stable across reasonable
CI confidence levels (the filter is not doing the deciding), and the
rank-based and magnitude-based decision rules agree on most clean
verdicts while any divergences are reported for inspection.
"""

from repro.experiments import ablation_methodology


def test_ablation_methodology(benchmark, dataset, analysis, publish):
    comparisons, confidences = benchmark.pedantic(
        ablation_methodology.data, args=(dataset, analysis), rounds=1, iterations=1
    )
    publish(
        "ablation_methodology", ablation_methodology.run(dataset, analysis)
    )

    # Rank and magnitude rules mostly agree at the per-decision level
    # (the magnitude *bias* is a configuration-selection phenomenon,
    # quantified by Table IV).
    divergent = [c for c in comparisons if c.diverges]
    assert len(divergent) <= len(comparisons) // 4

    # Recommendations are stable across CI levels.
    ref = next(p for p in confidences if abs(p.confidence - 0.95) < 1e-9)
    for p in confidences:
        assert p.agreement_with(ref) >= 0.85
