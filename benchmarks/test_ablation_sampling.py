"""Bench (beyond the paper): sample efficiency of Algorithm 1.

The paper's Section IX asks whether smaller samples of the test domain
could replace the exhaustive sweep.  Expectation: agreement with the
exhaustive per-chip decisions grows with the sampled configuration
count and is already high well below the full 96 configurations.
"""

from repro.experiments import ablation_sampling


def test_ablation_sampling(benchmark, dataset, analysis, publish):
    points = benchmark.pedantic(
        ablation_sampling.data,
        args=(dataset, analysis),
        kwargs={"sizes": (16, 48, 96), "trials": 2},
        rounds=1,
        iterations=1,
    )
    publish("ablation_sampling", ablation_sampling.run(dataset, analysis))

    by_size = {p.n_configs: p for p in points}
    # The exhaustive sample reproduces itself.
    assert by_size[96].mean_agreement == 1.0
    # Agreement grows with sample size.
    assert (
        by_size[16].mean_agreement
        <= by_size[48].mean_agreement
        <= by_size[96].mean_agreement
    )
    # Half the sweep already decides most optimisations correctly.
    assert by_size[48].mean_agreement > 0.8
