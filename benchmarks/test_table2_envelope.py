"""Bench: regenerate Table II (per-chip performance envelope).

Paper shape: despite a modest oracle geomean, individual tests see
order-of-magnitude speedups and slowdowns, with the extremes living on
the road input; the cross-vendor envelope (here up to ~15-20x) exceeds
the Nvidia-only one (paper: 16x/22x vs 5x/10x).
"""

from repro.experiments import table2_envelope


def test_table2_envelope(benchmark, dataset, publish):
    env = benchmark.pedantic(
        table2_envelope.data, args=(dataset,), rounds=1, iterations=1
    )
    publish("table2_envelope", table2_envelope.run(dataset))

    best_speedup = max(best.factor for best, _ in env.values())
    worst_slowdown = max(worst.factor for _, worst in env.values())
    assert best_speedup > 8.0
    assert worst_slowdown > 2.0

    # The cross-vendor envelope exceeds the Nvidia-only envelope.
    nvidia_best = max(env[c][0].factor for c in ("M4000", "GTX1080"))
    assert best_speedup > nvidia_best

    # Extremes concentrate on the structured inputs: several chips'
    # extreme entries (either direction) fall on the high-diameter road
    # input.  (The paper found *all* extremes on usa.ny; here part of
    # the speedup envelope comes from the power-law input instead —
    # see EXPERIMENTS.md.)
    road_extremes = sum(
        1
        for best, worst in env.values()
        for e in (best, worst)
        if e.graph == "usa-ny-sim"
    )
    assert road_extremes >= 3
