"""Bench: regenerate Fig 5 (utilisation vs kernel duration).

Paper shape: Nvidia chips reach high utilisation at much smaller
kernel durations than the others (their launch + copy latency is
lowest), which is why their strategies do not need oitergb; MALI sits
at the bottom of the chart.
"""

from repro.experiments import fig5_launch_overhead


def test_fig5_launch_overhead(benchmark, publish):
    sweep = benchmark.pedantic(
        fig5_launch_overhead.data,
        kwargs={"noisy": False},
        rounds=1,
        iterations=1,
    )
    publish("fig5_launch_overhead", fig5_launch_overhead.run())

    # Nvidia dominates the small-kernel regime.
    for idx in range(4):
        nvidia = min(
            sweep["M4000"][idx].utilisation, sweep["GTX1080"][idx].utilisation
        )
        assert all(
            nvidia > sweep[c][idx].utilisation
            for c in sweep
            if c not in ("M4000", "GTX1080")
        )
        assert sweep["MALI"][idx].utilisation == min(
            sweep[c][idx].utilisation for c in sweep
        )
    # All chips converge towards full utilisation for long kernels.
    assert all(points[-1].utilisation > 0.85 for points in sweep.values())
