"""Bench: regenerate Table IV (max-geomean pick vs the MWU pick).

Paper shape: the two global picks differ; the rank-based MWU pick is
the paper's rank-26 configuration (sg, fg8, oitergb) and delivers
speedups on every chip, while the magnitude-based pick chases the
highest geometric mean.  (The paper's starkest bias symptom — zero
speedups on GTX1080 under the geomean pick — is weaker here; see
EXPERIMENTS.md.)
"""

from repro.compiler import OptConfig
from repro.experiments import table4_bias


def test_table4_bias(benchmark, dataset, analysis, publish):
    geo_pick, geo_rows, mwu_pick, mwu_rows = benchmark.pedantic(
        table4_bias.data, args=(dataset, analysis), rounds=1, iterations=1
    )
    publish("table4_bias", table4_bias.run(dataset, analysis))

    # The two selection methods disagree.
    assert geo_pick != mwu_pick
    # The rank-based pick reproduces the paper's rank-26 configuration.
    assert mwu_pick == OptConfig.from_names({"sg", "fg8", "oitergb"})
    # It is magnitude-agnostic: it never wins the geomean contest...
    from repro.core.naive import rank_configurations

    by_key = {r.config.key(): r for r in rank_configurations(dataset)}
    assert (
        by_key[mwu_pick.key()].geomean_speedup
        <= by_key[geo_pick.key()].geomean_speedup
    )
    # ...but it still provides speedups on every chip.
    assert all(r.speedups > 0 for r in mwu_rows.values())
    assert all(r.max_speedup > 2.0 for r in mwu_rows.values())
