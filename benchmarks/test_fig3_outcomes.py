"""Bench: regenerate Fig 3 (outcome shares per strategy).

Paper shape: the fully portable strategy speeds up a majority of tests
while harming a minority (paper: 62% up / 18% down); adding a
specialisation dimension cuts the slowdown share sharply; baseline and
oracle bracket the spectrum (0% and 100% speedups).
"""

from repro.experiments import fig3_outcomes


def test_fig3_outcomes(benchmark, dataset, strategies, publish):
    outcomes = benchmark.pedantic(
        fig3_outcomes.data, args=(dataset, strategies), rounds=1, iterations=1
    )
    publish("fig3_outcomes", fig3_outcomes.run(dataset, strategies))

    assert outcomes["baseline"].pct_no_change == 100.0
    assert outcomes["oracle"].pct_speedup == 100.0

    glob = outcomes["global"]
    assert glob.pct_speedup > 50.0
    assert 0.0 < glob.pct_slowdown < 30.0

    # Specialising on any dimension reduces slowdowns vs global.
    for name in ("chip", "app", "input"):
        assert outcomes[name].slowdowns <= glob.slowdowns
    # Two dimensions reduce them further.
    for name in ("chip+app", "chip+input", "app+input"):
        assert outcomes[name].slowdowns <= min(
            outcomes["chip"].slowdowns + outcomes["app"].slowdowns,
            glob.slowdowns,
        )
