"""Bench: regenerate Tables V and VI (strategies and opt parameters)."""

from repro.compiler import BASELINE
from repro.core.strategies import STRATEGY_ORDER
from repro.experiments import table5_strategies


def test_table5_strategies(benchmark, strategies, publish):
    rows = benchmark.pedantic(
        table5_strategies.data, args=(strategies,), rounds=1, iterations=1
    )
    publish("table5_strategies", table5_strategies.run(strategies))

    assert [r[0] for r in rows] == list(STRATEGY_ORDER)
    by_name = {r[0]: r for r in rows}
    # Distinct-config counts grow along the specialisation spectrum.
    assert by_name["baseline"][2] == 1
    assert by_name["global"][2] == 1
    assert by_name["chip"][2] >= 2
    assert by_name["oracle"][2] >= by_name["chip+app+input"][2]
