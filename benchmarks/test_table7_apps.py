"""Bench: regenerate Table VII (the 17-application suite)."""

from repro.experiments import table7_apps


def test_table7_apps(benchmark, publish):
    rows = benchmark.pedantic(table7_apps.data, rounds=3, iterations=1)
    publish("table7_apps", table7_apps.run())

    assert len(rows) == 17
    problems = {r["problem"] for r in rows}
    assert problems == {"BFS", "CC", "MIS", "MST", "PR", "SSSP", "TRI"}
    starred = [r for r in rows if "(*)" in r["variant"]]
    assert len(starred) == 7  # one fastest variant per problem
