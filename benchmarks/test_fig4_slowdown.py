"""Bench: regenerate Fig 4 (geomean slowdown vs oracle per strategy).

Paper shape: baseline worst, oracle exactly 1; every Algorithm 1
strategy lands in between, with the portable (global) strategy already
recovering a large share of the oracle's headroom and semi-specialised
strategies recovering more.
"""

from repro.core.strategies import STRATEGY_ORDER
from repro.experiments import fig4_slowdown


def test_fig4_slowdown(benchmark, dataset, strategies, publish):
    series = benchmark.pedantic(
        fig4_slowdown.data, args=(dataset, strategies), rounds=1, iterations=1
    )
    publish("fig4_slowdown", fig4_slowdown.run(dataset, strategies))

    assert series["oracle"] == 1.0
    assert series["baseline"] == max(series.values())
    for name in STRATEGY_ORDER:
        assert 1.0 <= series[name] <= series["baseline"] + 1e-9
    # The portable strategy closes a real share of the baseline gap...
    assert series["global"] < series["baseline"] * 0.8
    # ...and the best two-dimensional strategy improves on it again.
    best_two_dim = min(
        series["chip+app"], series["chip+input"], series["app+input"]
    )
    assert best_two_dim < series["global"]
