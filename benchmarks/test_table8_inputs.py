"""Bench: regenerate Table VIII (the 3 study inputs).

Asserts the synthetic inputs carry the structural signatures of their
paper classes: road = high diameter / narrow degrees; social =
power-law degrees / tiny diameter; random = narrow degrees / tiny
diameter.
"""

from repro.experiments import table8_inputs


def test_table8_inputs(benchmark, publish):
    rows = benchmark.pedantic(table8_inputs.data, rounds=1, iterations=1)
    publish("table8_inputs", table8_inputs.run())

    by_class = {cls: props for _, cls, props in rows}
    assert set(by_class) == {"road", "social", "random"}
    road, social, random_ = by_class["road"], by_class["social"], by_class["random"]
    assert road.est_diameter > 10 * social.est_diameter
    assert road.est_diameter > 10 * random_.est_diameter
    assert social.degree_cv > 1.0
    assert road.degree_cv < 0.5 and random_.degree_cv < 0.6
    assert social.max_degree > 50 * social.avg_degree
