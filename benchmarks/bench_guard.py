#!/usr/bin/env python3
"""Benchmark regression guard for the study sweep and serving layer.

Checks committed floors in ``benchmarks/bench_floor.json`` against:

* ``BENCH_study.json`` (written by ``bench_study.py``) — the
  batch-vs-scalar speedup of the vectorized pricing engine;
* ``BENCH_serve.json`` (written by ``bench_serve.py``) — the strategy
  server's closed-loop throughput, plus its sustained-load p99 latency
  against the ``serve_p99_ms`` SLO ceiling;
* ``BENCH_serve_chaos.json`` (written by ``bench_serve.py --chaos``,
  checked when present, or required by ``--chaos-only``) — the
  self-healing fleet's throughput floor under fault injection, zero
  malformed responses, and exact metrics reconciliation.

The floors are set far under locally measured values so ordinary
CI-runner noise passes; a breach indicates a structural regression
(the batch engine silently falling back to per-launch pricing, new
per-request overhead in the server's hot path).  Serve results are
checked only when present, unless ``--serve-only`` inverts that: then
the study results become optional (for the serve smoke job, which
never runs the study bench).

Run:  PYTHONPATH=src python benchmarks/bench_guard.py [BENCH_study.json]
      PYTHONPATH=src python benchmarks/bench_guard.py --serve-only
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
_DEFAULT_RESULTS = os.path.join(_ROOT, "BENCH_study.json")
_DEFAULT_SERVE_RESULTS = os.path.join(_ROOT, "BENCH_serve.json")
_FLOOR_FILE = os.path.join(_HERE, "bench_floor.json")


def _load(path: str):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[bench-guard] cannot read {path}: {exc}")
        return None


def _check_study(results: dict, floors: dict) -> int:
    mode = results.get("scope_mode") or (
        "quick" if results.get("quick") else "full"
    )
    if not results.get("identical_datasets"):
        print("[bench-guard] FAIL: engines no longer produce identical datasets")
        return 1
    speedup = results["sweeps"]["batch"].get("speedup_vs_scalar")
    floor = floors["speedup_vs_scalar"].get(mode)
    if speedup is not None and floor is not None:
        print(
            f"[bench-guard] study mode={mode}: batch speedup {speedup:.2f}x "
            f"(floor {floor:.2f}x)"
        )
        if speedup < floor:
            print(
                f"[bench-guard] FAIL: batch-vs-scalar speedup {speedup:.2f}x "
                f"fell below the committed floor {floor:.2f}x — the "
                f"vectorized engine has regressed (or new overhead entered "
                f"the pricing loop); investigate before raising the floor"
            )
            return 1
    else:
        print(
            f"[bench-guard] study mode={mode}: no scalar reference sweep "
            f"(10x scope); speedup floor not applicable"
        )
    store = results.get("store")
    store_floor = floors.get("columnar_load_speedup", {}).get(mode)
    if store is not None and store_floor is not None:
        load_speedup = store["columnar_load_speedup"]
        print(
            f"[bench-guard] store mode={mode}: columnar load "
            f"{load_speedup:.2f}x vs JSON (floor {store_floor:.2f}x), "
            f"RSS ratio {store.get('rss_ratio_v3_vs_json', '?')}"
        )
        if load_speedup < store_floor:
            print(
                f"[bench-guard] FAIL: columnar load speedup "
                f"{load_speedup:.2f}x fell below the committed floor "
                f"{store_floor:.2f}x — the v3 load path grew parse work "
                f"(eager column materialisation, checksum over the timing "
                f"column at load, a lost mmap); investigate before "
                f"raising the floor"
            )
            return 1
        rss_ratio = store.get("rss_ratio_v3_vs_json")
        if mode == "10x" and rss_ratio is not None and rss_ratio > 1.2:
            print(
                f"[bench-guard] FAIL: columnar peak RSS is {rss_ratio:.2f}x "
                f"the JSON parse's at 10x scope — the mmap stopped "
                f"bounding memory (something materialises the whole "
                f"timing column on load)"
            )
            return 1
    rows_rate = results.get("study_rows_per_s")
    rows_floor = floors.get("study_rows_per_s", {}).get(mode)
    if rows_rate is not None and rows_floor is not None:
        print(
            f"[bench-guard] sweep mode={mode}: {rows_rate:.0f} rows/s "
            f"(floor {rows_floor:.0f} rows/s)"
        )
        if rows_rate < rows_floor:
            print(
                f"[bench-guard] FAIL: study sweep throughput "
                f"{rows_rate:.0f} rows/s fell below the committed floor "
                f"{rows_floor:.0f} rows/s — the pricing loop or the "
                f"result store grew per-cell overhead; investigate "
                f"before raising the floor"
            )
            return 1
    search = results.get("search")
    search_floor = floors.get("search_replays_per_s", {}).get(mode)
    if search is not None and search_floor is not None:
        rate = search["replays_per_s"]
        print(
            f"[bench-guard] search mode={mode}: {rate:.0f} replays/s "
            f"over {search['replays']} replays "
            f"(floor {search_floor:.0f} replays/s)"
        )
        if rate < search_floor:
            print(
                f"[bench-guard] FAIL: search replay throughput "
                f"{rate:.0f} replays/s fell below the committed floor "
                f"{search_floor:.0f} replays/s — the propose/observe "
                f"loop or the dataset-as-oracle lookup grew per-replay "
                f"overhead; investigate before raising the floor"
            )
            return 1
    return 0


def _check_chaos(results: dict, floors: dict) -> int:
    mode = "quick" if results.get("quick") else "full"
    floor = floors["serve_chaos_throughput_rps"][mode]
    throughput = results["throughput_rps"]
    print(
        f"[bench-guard] chaos mode={mode}: {throughput:.0f} req/s "
        f"(floor {floor:.0f} req/s), {results.get('resets', 0)} resets, "
        f"{results.get('malformed', 0)} malformed"
    )
    if results.get("malformed"):
        print(
            f"[bench-guard] FAIL: {results['malformed']} malformed "
            f"responses under chaos — a failure leaked to a client as "
            f"something other than a well-formed 200/429/503"
        )
        return 1
    if not results.get("report_reconciled"):
        print(
            "[bench-guard] FAIL: the chaos run's merged metrics report "
            "did not reconcile — worker deltas were lost or "
            "double-counted in the fleet merge"
        )
        return 1
    if throughput < floor:
        print(
            f"[bench-guard] FAIL: chaos throughput {throughput:.0f} "
            f"req/s fell below the committed floor {floor:.0f} req/s — "
            f"the fleet heals too slowly (respawn backoff regression) "
            f"or sheds too much; investigate before raising the floor"
        )
        return 1
    return 0


def _check_serve(results: dict, floors: dict) -> int:
    mode = "quick" if results.get("quick") else "full"
    floor = floors["serve_throughput_rps"][mode]
    throughput = results["throughput_rps"]
    p99 = results["p99_ms"]
    ceiling = floors.get("serve_p99_ms", {}).get(mode)
    print(
        f"[bench-guard] serve mode={mode}: {throughput:.0f} req/s "
        f"(floor {floor:.0f} req/s), p50 {results['p50_ms']:.2f}ms, "
        f"p99 {p99:.2f}ms"
        + (f" (SLO {ceiling:.0f}ms)" if ceiling is not None else "")
    )
    if results.get("errors"):
        print(f"[bench-guard] FAIL: {results['errors']} failed requests")
        return 1
    if throughput < floor:
        print(
            f"[bench-guard] FAIL: serve throughput {throughput:.0f} req/s "
            f"fell below the committed floor {floor:.0f} req/s — new "
            f"per-request overhead entered the server's hot path; "
            f"investigate before raising the floor"
        )
        return 1
    if ceiling is not None and p99 > ceiling:
        print(
            f"[bench-guard] FAIL: sustained-load p99 {p99:.2f}ms exceeds "
            f"the {ceiling:.0f}ms SLO ceiling — tail latency regressed "
            f"(a blocking call on the event loop, lost pre-serialization, "
            f"or head-of-line contention); investigate before relaxing "
            f"the SLO"
        )
        return 1
    portfolio = results.get("portfolio")
    p_ceiling = floors.get("serve_portfolio_p99_ms", {}).get(mode)
    if portfolio is not None and p_ceiling is not None:
        p_p99 = portfolio["p99_ms"]
        print(
            f"[bench-guard] serve portfolio: p99 {p_p99:.2f}ms over "
            f"{portfolio['requests']} requests (SLO {p_ceiling:.0f}ms)"
        )
        if p_p99 > p_ceiling:
            print(
                f"[bench-guard] FAIL: portfolio p99 {p_p99:.2f}ms exceeds "
                f"the {p_ceiling:.0f}ms SLO ceiling — the /v1/portfolio "
                f"hot path regressed (lost pre-serialization of default "
                f"answers, or curve encoding entered the request path); "
                f"investigate before relaxing the SLO"
            )
            return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "results",
        nargs="?",
        default=_DEFAULT_RESULTS,
        help="bench_study.py output (default: BENCH_study.json)",
    )
    parser.add_argument(
        "--serve-results",
        default=_DEFAULT_SERVE_RESULTS,
        help="bench_serve.py output (default: BENCH_serve.json)",
    )
    parser.add_argument(
        "--serve-only",
        action="store_true",
        help="require serve results and skip the study check (the serve "
        "smoke job never runs the study bench)",
    )
    parser.add_argument(
        "--chaos-results",
        default=os.path.join(_ROOT, "BENCH_serve_chaos.json"),
        help="bench_serve.py --chaos output, checked when present "
        "(default: BENCH_serve_chaos.json)",
    )
    parser.add_argument(
        "--chaos-only",
        action="store_true",
        help="require chaos results and skip the study/serve checks "
        "(the chaos smoke job runs only the chaos harness)",
    )
    parser.add_argument(
        "--floor-file",
        default=_FLOOR_FILE,
        help="committed floors (default: benchmarks/bench_floor.json)",
    )
    args = parser.parse_args(argv)

    with open(args.floor_file) as f:
        floors = json.load(f)

    failures = 0
    if args.chaos_only:
        chaos = _load(args.chaos_results)
        if chaos is None:
            return 2
        failures += _check_chaos(chaos, floors)
    elif not args.serve_only:
        study = _load(args.results)
        if study is None:
            return 2
        failures += _check_study(study, floors)
        serve = _load(args.serve_results) if os.path.exists(
            args.serve_results
        ) else None
        if serve is not None:
            failures += _check_serve(serve, floors)
    else:
        serve = _load(args.serve_results)
        if serve is None:
            return 2
        failures += _check_serve(serve, floors)

    if not args.chaos_only and os.path.exists(args.chaos_results):
        chaos = _load(args.chaos_results)
        if chaos is None:
            return 2
        failures += _check_chaos(chaos, floors)

    if failures:
        return 1
    print("[bench-guard] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
