#!/usr/bin/env python3
"""Benchmark regression guard for the study sweep.

Compares the batch-vs-scalar speedup recorded in ``BENCH_study.json``
(written by ``bench_study.py``) against the committed floor in
``benchmarks/bench_floor.json`` and fails when the vectorized engine
has regressed below it.  The floors are set far under locally measured
speedups so ordinary CI-runner noise passes; a breach indicates a
structural regression (e.g. the batch engine silently falling back to
per-launch pricing, or new per-launch overhead in the hot loop).

Run:  PYTHONPATH=src python benchmarks/bench_guard.py [BENCH_study.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
_DEFAULT_RESULTS = os.path.join(_ROOT, "BENCH_study.json")
_FLOOR_FILE = os.path.join(_HERE, "bench_floor.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "results",
        nargs="?",
        default=_DEFAULT_RESULTS,
        help="bench_study.py output (default: BENCH_study.json)",
    )
    parser.add_argument(
        "--floor-file",
        default=_FLOOR_FILE,
        help="committed speedup floors (default: benchmarks/bench_floor.json)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.results) as f:
            results = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"[bench-guard] cannot read {args.results}: {exc}")
        return 2
    with open(args.floor_file) as f:
        floors = json.load(f)["speedup_vs_scalar"]

    mode = "quick" if results.get("quick") else "full"
    floor = floors[mode]
    speedup = results["sweeps"]["batch"]["speedup_vs_scalar"]

    print(
        f"[bench-guard] mode={mode}: batch speedup {speedup:.2f}x "
        f"(floor {floor:.2f}x)"
    )
    if not results.get("identical_datasets"):
        print("[bench-guard] FAIL: engines no longer produce identical datasets")
        return 1
    if speedup < floor:
        print(
            f"[bench-guard] FAIL: batch-vs-scalar speedup {speedup:.2f}x "
            f"fell below the committed floor {floor:.2f}x — the vectorized "
            f"engine has regressed (or new overhead entered the pricing "
            f"loop); investigate before raising the floor"
        )
        return 1
    print("[bench-guard] OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
