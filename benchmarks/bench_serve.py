#!/usr/bin/env python3
"""Benchmark the strategy-advisor serving layer under closed-loop load.

Builds a strategy index from the committed mini dataset (no study run
needed), starts the asyncio server on a free port, and drives it with
``--concurrency`` closed-loop worker threads — each holding one
persistent keep-alive connection and issuing ``GET /v1/strategy``
queries back-to-back over a seeded cycle of the index's coordinates (a
mix of exact and degraded queries).  Reports p50/p99 latency and total
throughput to ``BENCH_serve.json`` at the repository root; the p99 is
a sustained-load SLO that ``bench_guard.py`` checks against the
``serve_p99_ms`` ceiling in ``bench_floor.json``.

With ``--workers N`` (N > 1) the bench instead launches the real
``python -m repro serve --workers N`` CLI as a subprocess, so the
measured path includes SO_REUSEPORT kernel load balancing across the
forked workers — the closest thing to production deployment this
repository can measure.

Run:  PYTHONPATH=src python benchmarks/bench_serve.py [--quick]
      PYTHONPATH=src python benchmarks/bench_serve.py --workers 2
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.serve import StrategyServer, build_index
from repro.study.dataset import PerfDataset

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_DEFAULT_OUTPUT = os.path.join(_ROOT, "BENCH_serve.json")
_MINI_DATASET = os.path.join(_ROOT, "tests", "goldens", "mini-dataset.json.gz")


def _query_cycle(dataset: PerfDataset, seed: int = 7):
    """A seeded, repeatable mix of strategy and portfolio queries."""
    rng = random.Random(seed)
    apps, inputs, chips = dataset.apps, dataset.graphs, dataset.chips
    queries = []
    for chip in chips:
        for app in apps:
            for inp in inputs:
                queries.append(f"/v1/strategy?chip={chip}&app={app}&input={inp}")
    for chip in chips:  # partial queries exercise shorter lattice walks
        queries.append(f"/v1/strategy?chip={chip}")
    for app in apps:
        queries.append(f"/v1/strategy?app={app}")
    # Unknown coordinates force full fallback walks to the global level.
    queries.append("/v1/strategy?chip=UNKNOWN&app=UNKNOWN&input=UNKNOWN")
    # Portfolio queries: pre-serialized defaults for every chip, the
    # explicit-k/target cache path, and a degraded fallback walk.
    for chip in chips:
        queries.append(f"/v1/portfolio?chip={chip}&app={apps[0]}&input={inputs[0]}")
        queries.append(f"/v1/portfolio?chip={chip}&k=2")
    queries.append(f"/v1/portfolio?app={apps[0]}&target=0.99")
    queries.append("/v1/portfolio?chip=UNKNOWN&app=UNKNOWN")
    rng.shuffle(queries)
    return queries


def _worker(
    host: str,
    port: int,
    queries,
    n_requests: int,
    offset: int,
    latencies,
    errors,
) -> None:
    """One closed-loop client: a persistent connection, no think time."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        for i in range(n_requests):
            path = queries[(offset + i) % len(queries)]
            started = time.perf_counter()
            conn.request("GET", path)
            resp = conn.getresponse()
            body = resp.read()
            latencies.append((path, (time.perf_counter() - started) * 1000.0))
            if resp.status != 200 or not body:
                errors.append((path, resp.status))
    finally:
        conn.close()


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return float("nan")
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


class _InProcessServer:
    """Single-worker target: the asyncio server on a thread, no fork."""

    def __init__(self, index) -> None:
        self._loop = asyncio.new_event_loop()
        self._server = StrategyServer(index, predictor=None)
        self._loop.run_until_complete(self._server.start())
        self._runner = threading.Thread(
            target=self._loop.run_until_complete,
            args=(self._server.serve_until_stopped(),),
            daemon=True,
        )
        self._runner.start()
        self.host = self._server.host
        self.port = self._server.port

    def stop(self) -> None:
        self._loop.call_soon_threadsafe(self._server.request_shutdown)
        self._runner.join(timeout=30)
        self._loop.close()


class _SubprocessServer:
    """Multi-worker target: the real ``repro serve --workers N`` CLI."""

    def __init__(self, index, workers: int) -> None:
        self._tmp = tempfile.TemporaryDirectory(prefix="bench-serve-")
        index_path = os.path.join(self._tmp.name, "index.json")
        index.save(index_path)
        self._proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", index_path,
                "--port", "0", "--workers", str(workers), "--no-predict",
            ],
            cwd=_ROOT,
            env=dict(os.environ, PYTHONPATH=os.path.join(_ROOT, "src")),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        line = self._proc.stderr.readline()
        if "listening on http://" not in line:
            rest = self._proc.stderr.read()
            raise RuntimeError(f"server did not start: {line!r} {rest!r}")
        addr = line.split("http://", 1)[1].split()[0]
        self.host, port = addr.rsplit(":", 1)
        self.port = int(port)

    def stop(self) -> None:
        try:
            self._proc.send_signal(signal.SIGTERM)
            code = self._proc.wait(timeout=30)
            if code != 0:
                raise RuntimeError(
                    f"serve exited {code}: {self._proc.stderr.read()!r}"
                )
        finally:
            if self._proc.poll() is None:
                self._proc.kill()
                self._proc.wait()
            self._proc.stdout.close()
            self._proc.stderr.close()
            self._tmp.cleanup()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller load for CI smoke runs"
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="closed-loop client threads (default: 4 quick, 8 full)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="requests per client (default: 75 quick, 500 full)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="serve workers; >1 benchmarks the real CLI as a subprocess "
        "with SO_REUSEPORT sharing (default: 1, in-process)",
    )
    parser.add_argument("--output", default=_DEFAULT_OUTPUT)
    args = parser.parse_args()

    concurrency = args.concurrency or (4 if args.quick else 8)
    per_client = args.requests or (75 if args.quick else 500)

    dataset = PerfDataset.load(_MINI_DATASET)
    index = build_index(dataset, portfolios=True)
    queries = _query_cycle(dataset)
    print(
        f"index: {index.n_entries} entries, {index.n_answers} pre-serialized "
        f"answers, {index.n_portfolio_answers} portfolio answers; "
        f"{len(queries)} distinct queries; "
        f"{concurrency} clients x {per_client} requests; "
        f"{args.workers} worker(s)"
    )

    if args.workers > 1:
        server = _SubprocessServer(index, args.workers)
    else:
        server = _InProcessServer(index)

    latencies: list = []
    errors: list = []
    threads = [
        threading.Thread(
            target=_worker,
            args=(
                server.host,
                server.port,
                queries,
                per_client,
                w * 17,  # staggered offsets: clients do not march in step
                latencies,
                errors,
            ),
        )
        for w in range(concurrency)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started

    server.stop()

    if errors:
        print(f"FAIL: {len(errors)} non-200 responses, e.g. {errors[:3]}")
        return 1

    total = concurrency * per_client
    ordered = sorted(ms for _, ms in latencies)
    portfolio = sorted(
        ms for path, ms in latencies if path.startswith("/v1/portfolio")
    )
    p50 = _percentile(ordered, 0.50)
    p99 = _percentile(ordered, 0.99)
    throughput = total / elapsed
    print(
        f"served {total} requests in {elapsed:.2f}s: "
        f"{throughput:.0f} req/s, p50 {p50:.2f}ms, p99 {p99:.2f}ms; "
        f"portfolio p99 {_percentile(portfolio, 0.99):.2f}ms "
        f"({len(portfolio)} requests)"
    )

    payload = {
        "benchmark": "serve-load",
        "quick": args.quick,
        "concurrency": concurrency,
        "workers": args.workers,
        "requests": total,
        "seconds": round(elapsed, 4),
        "throughput_rps": round(throughput, 1),
        "p50_ms": round(p50, 3),
        "p99_ms": round(p99, 3),
        "max_ms": round(ordered[-1], 3),
        "errors": 0,
        "portfolio": {
            "requests": len(portfolio),
            "p50_ms": round(_percentile(portfolio, 0.50), 3),
            "p99_ms": round(_percentile(portfolio, 0.99), 3),
        },
    }
    with open(args.output, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
