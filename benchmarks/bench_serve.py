#!/usr/bin/env python3
"""Benchmark the strategy-advisor serving layer under closed-loop load.

Builds a strategy index from the committed mini dataset (no study run
needed), starts the asyncio server on a free port, and drives it with
``--concurrency`` closed-loop worker threads — each holding one
persistent keep-alive connection and issuing ``GET /v1/strategy``
queries back-to-back over a seeded cycle of the index's coordinates (a
mix of exact and degraded queries).  Reports p50/p99 latency and total
throughput to ``BENCH_serve.json`` at the repository root; the p99 is
a sustained-load SLO that ``bench_guard.py`` checks against the
``serve_p99_ms`` ceiling in ``bench_floor.json``.

With ``--workers N`` (N > 1) the bench instead launches the real
``python -m repro serve --workers N`` CLI as a subprocess, so the
measured path includes SO_REUSEPORT kernel load balancing across the
forked workers — the closest thing to production deployment this
repository can measure.

With ``--chaos`` the bench becomes a serve-path chaos harness: it
launches a fleet (at least 2 workers) with a deterministic fault
schedule armed — worker crashes mid-dispatch, stalled handlers, and a
corrupted hot-reload candidate — then drives load through the failures
while firing SIGHUP reloads at the parent.  Clients reconnect through
connection resets (a killed worker drops its connections; that is the
contract, not a failure) but every *received* response must be
well-formed: status 200/429/503 with a parseable JSON body.  The run
fails on any malformed response, on throughput under the committed
chaos floor, or when the merged ``--metrics`` run report does not
reconcile under ``repro doctor``'s run-report rules.

Run:  PYTHONPATH=src python benchmarks/bench_serve.py [--quick]
      PYTHONPATH=src python benchmarks/bench_serve.py --workers 2
      PYTHONPATH=src python benchmarks/bench_serve.py --chaos --quick
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.faults import (
    FaultPlan,
    SERVE_HANDLER_SLOW,
    SERVE_RELOAD_CORRUPT,
    SERVE_WORKER_CRASH,
)
from repro.serve import StrategyServer, build_index
from repro.study.dataset import PerfDataset
from repro.study.doctor import diagnose_run_report

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
_DEFAULT_OUTPUT = os.path.join(_ROOT, "BENCH_serve.json")
_DEFAULT_CHAOS_OUTPUT = os.path.join(_ROOT, "BENCH_serve_chaos.json")
_MINI_DATASET = os.path.join(_ROOT, "tests", "goldens", "mini-dataset.json.gz")


def _query_cycle(dataset: PerfDataset, seed: int = 7):
    """A seeded, repeatable mix of strategy and portfolio queries."""
    rng = random.Random(seed)
    apps, inputs, chips = dataset.apps, dataset.graphs, dataset.chips
    queries = []
    for chip in chips:
        for app in apps:
            for inp in inputs:
                queries.append(f"/v1/strategy?chip={chip}&app={app}&input={inp}")
    for chip in chips:  # partial queries exercise shorter lattice walks
        queries.append(f"/v1/strategy?chip={chip}")
    for app in apps:
        queries.append(f"/v1/strategy?app={app}")
    # Unknown coordinates force full fallback walks to the global level.
    queries.append("/v1/strategy?chip=UNKNOWN&app=UNKNOWN&input=UNKNOWN")
    # Portfolio queries: pre-serialized defaults for every chip, the
    # explicit-k/target cache path, and a degraded fallback walk.
    for chip in chips:
        queries.append(f"/v1/portfolio?chip={chip}&app={apps[0]}&input={inputs[0]}")
        queries.append(f"/v1/portfolio?chip={chip}&k=2")
    queries.append(f"/v1/portfolio?app={apps[0]}&target=0.99")
    queries.append("/v1/portfolio?chip=UNKNOWN&app=UNKNOWN")
    rng.shuffle(queries)
    return queries


def _worker(
    host: str,
    port: int,
    queries,
    n_requests: int,
    offset: int,
    latencies,
    errors,
) -> None:
    """One closed-loop client: a persistent connection, no think time."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        for i in range(n_requests):
            path = queries[(offset + i) % len(queries)]
            started = time.perf_counter()
            conn.request("GET", path)
            resp = conn.getresponse()
            body = resp.read()
            latencies.append((path, (time.perf_counter() - started) * 1000.0))
            if resp.status != 200 or not body:
                errors.append((path, resp.status))
    finally:
        conn.close()


#: Statuses a chaos client may legitimately receive: success, shed
#: (429 + Retry-After) and overload/breaker fast-fail (503).
_CHAOS_OK_STATUSES = frozenset({200, 429, 503})


def _chaos_worker(
    host: str,
    port: int,
    queries,
    n_requests: int,
    offset: int,
    latencies,
    malformed,
    resets,
) -> None:
    """A closed-loop client that survives worker kills.

    A crashed SO_REUSEPORT worker drops its connections — the client's
    contract is to reconnect and retry, so connection-level failures
    count as ``resets``, not errors.  What is *never* acceptable is a
    malformed received response: a status outside
    :data:`_CHAOS_OK_STATUSES`, or a 200 whose body is not valid JSON.
    """
    conn = http.client.HTTPConnection(host, port, timeout=30)
    i = 0
    while i < n_requests:
        path = queries[(offset + i) % len(queries)]
        started = time.perf_counter()
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            body = resp.read()
        except (http.client.HTTPException, OSError):
            resets.append(path)
            conn.close()
            conn = http.client.HTTPConnection(host, port, timeout=30)
            time.sleep(0.05)  # give the supervisor a beat to respawn
            continue
        latencies.append((path, (time.perf_counter() - started) * 1000.0))
        i += 1
        if resp.status not in _CHAOS_OK_STATUSES:
            malformed.append((path, resp.status, b"unexpected status"))
            continue
        try:
            json.loads(body)
        except (ValueError, UnicodeDecodeError):
            malformed.append((path, resp.status, body[:80]))
    conn.close()


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return float("nan")
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


class _InProcessServer:
    """Single-worker target: the asyncio server on a thread, no fork."""

    def __init__(self, index) -> None:
        self._loop = asyncio.new_event_loop()
        self._server = StrategyServer(index, predictor=None)
        self._loop.run_until_complete(self._server.start())
        self._runner = threading.Thread(
            target=self._loop.run_until_complete,
            args=(self._server.serve_until_stopped(),),
            daemon=True,
        )
        self._runner.start()
        self.host = self._server.host
        self.port = self._server.port

    def stop(self) -> None:
        self._loop.call_soon_threadsafe(self._server.request_shutdown)
        self._runner.join(timeout=30)
        self._loop.close()


class _SubprocessServer:
    """Multi-worker target: the real ``repro serve --workers N`` CLI."""

    def __init__(self, index, workers: int, extra_args=None) -> None:
        self._tmp = tempfile.TemporaryDirectory(prefix="bench-serve-")
        index_path = os.path.join(self._tmp.name, "index.json")
        index.save(index_path)
        self._proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", index_path,
                "--port", "0", "--workers", str(workers), "--no-predict",
            ]
            + list(extra_args or []),
            cwd=_ROOT,
            env=dict(os.environ, PYTHONPATH=os.path.join(_ROOT, "src")),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        line = self._proc.stderr.readline()
        if "listening on http://" not in line:
            rest = self._proc.stderr.read()
            raise RuntimeError(f"server did not start: {line!r} {rest!r}")
        addr = line.split("http://", 1)[1].split()[0]
        self.host, port = addr.rsplit(":", 1)
        self.port = int(port)

    def signal(self, sig) -> None:
        self._proc.send_signal(sig)

    def stop(self) -> None:
        try:
            self._proc.send_signal(signal.SIGTERM)
            code = self._proc.wait(timeout=30)
            if code != 0:
                raise RuntimeError(
                    f"serve exited {code}: {self._proc.stderr.read()!r}"
                )
        finally:
            if self._proc.poll() is None:
                self._proc.kill()
                self._proc.wait()
            self._proc.stdout.close()
            self._proc.stderr.close()
            self._tmp.cleanup()


def _run_chaos(
    index, queries, concurrency: int, per_client: int, quick: bool,
    output: str,
) -> int:
    """The ``--chaos`` harness: load a fleet through a fault schedule."""
    with open(os.path.join(_HERE, "bench_floor.json")) as f:
        floors = json.load(f)
    floor = floors["serve_chaos_throughput_rps"]["quick" if quick else "full"]

    with tempfile.TemporaryDirectory(prefix="bench-chaos-") as tmp:
        spool = os.path.join(tmp, "faults")
        plan = FaultPlan(spool)
        # The deterministic failure schedule: two worker kills
        # mid-dispatch, four stalled handlers, and one corrupted
        # hot-reload candidate (the first SIGHUP's loser rolls back).
        plan.arm("crash", SERVE_WORKER_CRASH, count=2)
        plan.arm("slow", SERVE_HANDLER_SLOW, count=4, param=0.05)
        plan.arm("corrupt", SERVE_RELOAD_CORRUPT, count=1)
        report_path = os.path.join(tmp, "report.json")
        server = _SubprocessServer(
            index,
            workers=2,
            extra_args=[
                "--faults", spool,
                "--max-restarts", "10",
                "--restart-backoff", "0.1",
                "--heartbeat-interval", "0.5",
                "--metrics", report_path,
            ],
        )

        latencies: list = []
        malformed: list = []
        resets: list = []
        threads = [
            threading.Thread(
                target=_chaos_worker,
                args=(
                    server.host,
                    server.port,
                    queries,
                    per_client,
                    w * 17,
                    latencies,
                    malformed,
                    resets,
                ),
            )
            for w in range(concurrency)
        ]
        started = time.perf_counter()
        for t in threads:
            t.start()
        # Hot-reload the fleet twice while it is under fire: the first
        # SIGHUP spends the corrupt token (one worker validates the
        # garbled candidate, rejects it and keeps serving the old
        # index); the second reloads everywhere cleanly.
        time.sleep(0.75)
        server.signal(signal.SIGHUP)
        time.sleep(0.75)
        server.signal(signal.SIGHUP)
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - started
        server.stop()  # raises unless the fleet exits 0

        diag = diagnose_run_report(report_path)
        print(diag.render())
        reconciled = diag.ok and not any(
            f.severity == "warning" for f in diag.findings
        )

    total = concurrency * per_client
    ordered = sorted(ms for _, ms in latencies)
    throughput = total / elapsed
    print(
        f"chaos: served {total} requests in {elapsed:.2f}s through "
        f"2 kills, 4 stalls and 2 reloads (1 corrupt): "
        f"{throughput:.0f} req/s (floor {floor:.0f}), "
        f"p99 {_percentile(ordered, 0.99):.2f}ms, "
        f"{len(resets)} connection resets, "
        f"{len(malformed)} malformed responses"
    )

    failed = False
    if malformed:
        print(f"FAIL: malformed responses, e.g. {malformed[:3]}")
        failed = True
    if throughput < floor:
        print(
            f"FAIL: chaos throughput {throughput:.0f} req/s fell below "
            f"the committed floor {floor:.0f} req/s — the fleet is not "
            f"healing fast enough (or shedding everything)"
        )
        failed = True
    if not reconciled:
        print(
            "FAIL: the merged run report does not reconcile under the "
            "doctor's run-report rules (a worker's final delta was "
            "dropped, or the merge regressed)"
        )
        failed = True

    payload = {
        "benchmark": "serve-chaos",
        "quick": quick,
        "concurrency": concurrency,
        "workers": 2,
        "requests": total,
        "seconds": round(elapsed, 4),
        "throughput_rps": round(throughput, 1),
        "p50_ms": round(_percentile(ordered, 0.50), 3),
        "p99_ms": round(_percentile(ordered, 0.99), 3),
        "resets": len(resets),
        "malformed": len(malformed),
        "report_reconciled": reconciled,
    }
    with open(output, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {output}")
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller load for CI smoke runs"
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run the serve-path chaos harness instead of the clean "
        "benchmark: a 2-worker fleet with worker kills, stalled "
        "handlers and a corrupted hot-reload armed",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help="closed-loop client threads (default: 4 quick, 8 full)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="requests per client (default: 75 quick, 500 full)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="serve workers; >1 benchmarks the real CLI as a subprocess "
        "with SO_REUSEPORT sharing (default: 1, in-process)",
    )
    parser.add_argument("--output", default=None)
    args = parser.parse_args()

    output = args.output or (
        _DEFAULT_CHAOS_OUTPUT if args.chaos else _DEFAULT_OUTPUT
    )
    concurrency = args.concurrency or (4 if args.quick else 8)
    per_client = args.requests or (75 if args.quick else 500)

    dataset = PerfDataset.load(_MINI_DATASET)
    index = build_index(dataset, portfolios=True)
    queries = _query_cycle(dataset)
    if args.chaos:
        return _run_chaos(
            index, queries, concurrency, per_client, args.quick, output
        )
    print(
        f"index: {index.n_entries} entries, {index.n_answers} pre-serialized "
        f"answers, {index.n_portfolio_answers} portfolio answers; "
        f"{len(queries)} distinct queries; "
        f"{concurrency} clients x {per_client} requests; "
        f"{args.workers} worker(s)"
    )

    if args.workers > 1:
        server = _SubprocessServer(index, args.workers)
    else:
        server = _InProcessServer(index)

    latencies: list = []
    errors: list = []
    threads = [
        threading.Thread(
            target=_worker,
            args=(
                server.host,
                server.port,
                queries,
                per_client,
                w * 17,  # staggered offsets: clients do not march in step
                latencies,
                errors,
            ),
        )
        for w in range(concurrency)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started

    server.stop()

    if errors:
        print(f"FAIL: {len(errors)} non-200 responses, e.g. {errors[:3]}")
        return 1

    total = concurrency * per_client
    ordered = sorted(ms for _, ms in latencies)
    portfolio = sorted(
        ms for path, ms in latencies if path.startswith("/v1/portfolio")
    )
    p50 = _percentile(ordered, 0.50)
    p99 = _percentile(ordered, 0.99)
    throughput = total / elapsed
    print(
        f"served {total} requests in {elapsed:.2f}s: "
        f"{throughput:.0f} req/s, p50 {p50:.2f}ms, p99 {p99:.2f}ms; "
        f"portfolio p99 {_percentile(portfolio, 0.99):.2f}ms "
        f"({len(portfolio)} requests)"
    )

    payload = {
        "benchmark": "serve-load",
        "quick": args.quick,
        "concurrency": concurrency,
        "workers": args.workers,
        "requests": total,
        "seconds": round(elapsed, 4),
        "throughput_rps": round(throughput, 1),
        "p50_ms": round(p50, 3),
        "p99_ms": round(p99, 3),
        "max_ms": round(ordered[-1], 3),
        "errors": 0,
        "portfolio": {
            "requests": len(portfolio),
            "p50_ms": round(_percentile(portfolio, 0.50), 3),
            "p99_ms": round(_percentile(portfolio, 0.99), 3),
        },
    }
    with open(output, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
