"""Bench: regenerate Table III (global ranking of all 95 combinations).

Paper shape: even the fewest-slowdowns combination still harms some
tests (do-no-harm degenerates to the baseline); the bottom of the
table is dominated by sz256-bearing combinations with geomeans below
1; the max-geomean pick sits away from rank 0.
"""

from repro.compiler import BASELINE
from repro.core.naive import do_no_harm, max_geomean
from repro.experiments import table3_ranking


def test_table3_ranking(benchmark, dataset, publish):
    rankings = benchmark.pedantic(
        table3_ranking.data, args=(dataset,), rounds=1, iterations=1
    )
    publish("table3_ranking", table3_ranking.run(dataset))

    assert len(rankings) == 95
    # Do no harm: every combination causes some slowdown.
    assert rankings[0].slowdowns > 0
    assert do_no_harm(dataset) == BASELINE
    # The bottom rows are dominated by sz256 combinations.
    bottom = rankings[-5:]
    assert sum(1 for r in bottom if r.config.has("sz256")) >= 3
    assert any(r.geomean_speedup < 1.0 for r in bottom)
    # The max-geomean pick is not the fewest-slowdowns pick.
    assert max_geomean(dataset).config != rankings[0].config
