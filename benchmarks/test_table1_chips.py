"""Bench: regenerate Table I (the chip inventory)."""

from repro.experiments import table1_chips


def test_table1_chips(benchmark, publish):
    text = benchmark.pedantic(table1_chips.run, rounds=3, iterations=1)
    publish("table1_chips", text)
    assert "M4000" in text and "MALI" in text
