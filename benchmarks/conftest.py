"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper table/figure from the default
full-factorial study dataset (built once and cached under
``.cache/dataset-default.json.gz``; delete it or set ``REPRO_DATASET``
to rebuild), times the analysis that produces it, prints the rendered
rows/series, and writes them under ``results/``.
"""

from __future__ import annotations

import os

import pytest

from repro.core import Analysis, build_strategies
from repro.experiments.common import default_analysis, default_dataset, default_strategies

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


@pytest.fixture(scope="session")
def dataset():
    """The full study dataset (17 apps x 3 inputs x 6 chips x 96 configs)."""
    return default_dataset()


@pytest.fixture(scope="session")
def analysis(dataset) -> Analysis:
    return default_analysis()


@pytest.fixture(scope="session")
def strategies(dataset, analysis):
    return default_strategies()


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def publish(results_dir):
    """Print a rendered experiment and persist it under results/."""

    def _publish(name: str, text: str) -> None:
        print()
        print(text)
        with open(os.path.join(results_dir, f"{name}.txt"), "w") as f:
            f.write(text + "\n")

    return _publish
