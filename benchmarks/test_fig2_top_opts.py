"""Bench: regenerate Fig 2 (optimisations behind each chip's top speedups).

Paper shape: oitergb dominates the oracle configurations of the
non-Nvidia chips and appears for far fewer tests on Nvidia; sg is
needed on MALI more than anywhere else in relative terms.
"""

from repro.experiments import fig2_top_opts


def test_fig2_top_opts(benchmark, dataset, publish):
    counts = benchmark.pedantic(
        fig2_top_opts.data, args=(dataset,), rounds=1, iterations=1
    )
    publish("fig2_top_opts", fig2_top_opts.run(dataset))

    nvidia_oitergb = max(counts["M4000"]["oitergb"], counts["GTX1080"]["oitergb"])
    for chip in ("HD5500", "IRIS", "R9", "MALI"):
        assert counts[chip]["oitergb"] > nvidia_oitergb
    # Every optimisation is needed by at least one chip somewhere:
    # "one size doesn't fit all".
    for opt in ("coop-cv", "sg", "fg8", "oitergb", "sz256", "wg"):
        assert any(counts[chip][opt] > 0 for chip in counts)
