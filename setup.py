"""Setup shim for environments without PEP 660 editable-install support."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'One Size Doesn't Fit All: Quantifying Performance "
        "Portability of Graph Applications on GPUs' (IISWC 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.20", "scipy>=1.7"],
)
