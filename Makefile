# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench report validate study clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro report

validate:
	$(PYTHON) -m repro validate

study:
	$(PYTHON) -m repro study .cache/dataset-default.json.gz

clean:
	rm -rf .cache benchmarks/results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
