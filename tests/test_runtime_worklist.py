"""Tests for the double-buffered worklist."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.runtime import Worklist


class TestWorklist:
    def test_initial_items(self):
        wl = Worklist(np.array([3, 1]))
        assert wl.size == 2
        assert wl.items().tolist() == [3, 1]

    def test_empty_start(self):
        wl = Worklist()
        assert wl.is_empty

    def test_push_goes_to_next_buffer(self):
        wl = Worklist(np.array([0]))
        wl.push(np.array([5, 6]))
        assert wl.items().tolist() == [0]  # current unchanged
        wl.swap()
        assert wl.items().tolist() == [5, 6]

    def test_swap_returns_push_count(self):
        wl = Worklist()
        wl.push(np.array([1, 1, 2]))
        wl.push(np.array([3]))
        assert wl.swap() == 4

    def test_deduplicated_push_counts_unique(self):
        wl = Worklist()
        n = wl.push(np.array([1, 1, 2]), deduplicate=True)
        assert n == 2
        wl.swap()
        assert wl.items().tolist() == [1, 2]

    def test_total_pushes_accumulates(self):
        wl = Worklist()
        wl.push(np.array([1]))
        wl.swap()
        wl.push(np.array([2, 3]))
        wl.swap()
        assert wl.total_pushes == 3

    def test_swap_clears_iteration_counter(self):
        wl = Worklist()
        wl.push(np.array([1]))
        wl.swap()
        assert wl.swap() == 0

    def test_checked_nonempty(self):
        wl = Worklist()
        with pytest.raises(ExecutionError):
            wl.checked_nonempty()
        wl.push(np.array([4]))
        wl.swap()
        assert wl.checked_nonempty().tolist() == [4]

    def test_push_empty_array(self):
        wl = Worklist()
        assert wl.push(np.empty(0, dtype=np.int64)) == 0
        wl.swap()
        assert wl.is_empty
